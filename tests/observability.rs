//! Span-tree invariants for the query-lifecycle tracer, across serial and
//! morsel-parallel execution, plus the session-level explain path.
//!
//! The invariants (checked property-style over random tables, block
//! capacities, and thread counts):
//!
//! * every span that opens also closes — `open_span_count()` returns to
//!   zero after each traced execution;
//! * every child span nests strictly inside its parent's time window
//!   (same process-wide monotonic epoch on every thread);
//! * within any one thread, a parent's children run sequentially, so the
//!   per-(parent, thread) sum of child durations never exceeds the
//!   parent's duration (cross-thread sums legitimately can, under
//!   parallelism — that is what worker utilization measures);
//! * instrumentation never perturbs results: traced output equals
//!   untraced output bit-for-bit.

use std::collections::HashMap;

use proptest::prelude::*;

use aqp_core::{AqpSession, ErrorSpec};
use aqp_engine::{execute_with, AggExpr, ExecOptions, Query};
use aqp_expr::{col, lit};
use aqp_obs::SpanRecord;
use aqp_storage::{Catalog, DataType, Field, Schema, TableBuilder, Value};

const THREADS: [usize; 3] = [1, 2, 4];

/// Fact table `fact(k, v)` mirroring the parallel_equivalence harness.
fn catalog_from(xs: &[i64], block_cap: usize, keys: i64) -> Catalog {
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int64),
        Field::new("v", DataType::Float64),
    ]);
    let mut fact = TableBuilder::with_block_capacity("fact", schema, block_cap);
    for &x in xs {
        fact.push_row(&[Value::Int64(x.rem_euclid(keys)), Value::Float64(x as f64)])
            .unwrap();
    }
    let c = Catalog::new();
    c.register(fact.finish()).unwrap();
    c
}

/// Flattens an assembled span tree back into records — the session path
/// drains its own trace into `report.trace`, so captured buffers come
/// back empty and the tree is the record of truth.
fn flatten(node: &aqp_obs::SpanNode, out: &mut Vec<SpanRecord>) {
    out.push(node.record.clone());
    for c in &node.children {
        flatten(c, out);
    }
}

/// Checks the structural invariants over one captured trace.
fn check_span_invariants(records: &[SpanRecord]) -> Result<(), TestCaseError> {
    prop_assert!(!records.is_empty(), "traced execution must emit spans");
    let by_id: HashMap<u64, &SpanRecord> = records.iter().map(|r| (r.id, r)).collect();
    // Child windows nest inside parent windows.
    for r in records {
        if r.parent == 0 {
            continue;
        }
        let p = by_id
            .get(&r.parent)
            .unwrap_or_else(|| panic!("span {} has unclosed parent {}", r.id, r.parent));
        prop_assert!(
            r.start_ns >= p.start_ns && r.end_ns() <= p.end_ns(),
            "child {} [{}, {}] escapes parent {} [{}, {}]",
            r.name,
            r.start_ns,
            r.end_ns(),
            p.name,
            p.start_ns,
            p.end_ns()
        );
    }
    // Per-(parent, thread) child durations sum to at most the parent's.
    let mut sums: HashMap<(u64, u64), u64> = HashMap::new();
    for r in records {
        if r.parent != 0 {
            *sums.entry((r.parent, r.thread)).or_default() += r.duration_ns;
        }
    }
    for ((parent, thread), child_total) in sums {
        let p = by_id[&parent];
        prop_assert!(
            child_total <= p.duration_ns,
            "children of {} on thread {thread} sum to {child_total}ns > parent {}ns",
            p.name,
            p.duration_ns
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Engine-level: a filter → group-by plan at thread counts 1/2/4.
    /// Every span closes, children nest, per-thread child time fits in
    /// the parent, and traced rows equal untraced rows.
    #[test]
    fn engine_spans_close_and_nest(
        xs in prop::collection::vec(-100_000i64..100_000, 2100..3000),
        cap in 16usize..96,
    ) {
        let c = catalog_from(&xs, cap, 13);
        let plan = Query::scan("fact")
            .filter(col("v").gt_eq(lit(-90_000.0)))
            .aggregate(
                vec![(col("k"), "k".to_string())],
                vec![AggExpr::count_star("n"), AggExpr::sum(col("v"), "s")],
            )
            .build();
        let untraced = execute_with(&plan, &c, ExecOptions::serial()).unwrap();
        for threads in THREADS {
            let opts = ExecOptions::with_threads(threads);
            // Global counters are read inside capture(), which holds the
            // tracer's serialization lock — reading them outside races
            // with other tests' captures.
            let ((result, open_after), records) = aqp_obs::capture(|| {
                let r = execute_with(&plan, &c, opts).unwrap();
                (r, aqp_obs::open_span_count())
            });
            prop_assert_eq!(open_after, 0, "threads={}: spans left open", threads);
            check_span_invariants(&records)?;
            prop_assert_eq!(untraced.rows(), result.rows(), "threads={}", threads);
            // The operator tree is present: an aggregate over a fused scan.
            prop_assert!(records.iter().any(|r| r.name == "op:aggregate"));
            prop_assert!(records.iter().any(|r| r.name == "op:fused-scan"));
        }
    }

    /// Session-level: a routed grouped aggregate records probes and the
    /// winning attempt under one `query` root, and the same invariants
    /// hold for the full routing trace.
    #[test]
    fn session_trace_nests_probes_and_attempts(
        xs in prop::collection::vec(-100_000i64..100_000, 2100..2600),
        seed in any::<u64>(),
    ) {
        let c = catalog_from(&xs, 32, 7);
        let session = AqpSession::new(&c);
        let plan = Query::scan("fact")
            .aggregate(
                vec![(col("k"), "k".to_string())],
                vec![AggExpr::sum(col("v"), "s")],
            )
            .build();
        let spec = ErrorSpec::new(0.2, 0.9);
        let ((ans, open_after), leftovers) = aqp_obs::capture(|| {
            let a = session.answer(&plan, &spec, seed).unwrap();
            (a, aqp_obs::open_span_count())
        });
        prop_assert_eq!(open_after, 0);
        // The session drained its own trace into the report; nothing may
        // be left behind in the collector buffers.
        prop_assert!(leftovers.is_empty(), "off-trace spans: {:?}", leftovers);
        let tree = ans.report.trace.as_ref().expect("trace attached");
        prop_assert_eq!(tree.record.name, "query");
        prop_assert_eq!(tree.record.parent, 0);
        let mut records = Vec::new();
        flatten(tree, &mut records);
        check_span_invariants(&records)?;
        // Every record belongs to the query's trace.
        for r in &records {
            prop_assert_eq!(r.trace, tree.record.trace, "span {} off-trace", r.name);
        }
        prop_assert!(records.iter().any(|r| r.name.starts_with("probe:")));
        prop_assert!(records.iter().any(|r| r.name.starts_with("attempt:")));
        let text = ans.report.explain_analyze();
        prop_assert!(text.contains("EXPLAIN ANALYZE"));
        prop_assert!(text.contains("routing:"));
        prop_assert!(text.contains("query"));
    }
}

/// The routed span tree accounts for the report's wall clock: the `query`
/// root covers every probe/attempt below it, its duration never exceeds
/// the routed wall, and the winning attempt (plus declined attempts and
/// probes) is visible in the rendered explain output with its timing.
#[test]
fn explain_analyze_accounts_for_routed_wall() {
    let xs: Vec<i64> = (0..30_000).map(|i| (i * 7919) % 5003 - 2500).collect();
    let c = catalog_from(&xs, 64, 17);
    let session = AqpSession::new(&c);
    let plan = Query::scan("fact")
        .aggregate(
            vec![(col("k"), "k".to_string())],
            vec![AggExpr::sum(col("v"), "s")],
        )
        .build();
    let spec = ErrorSpec::new(0.1, 0.95);
    let (ans, _) = aqp_obs::capture(|| session.answer(&plan, &spec, 42).unwrap());
    let report = &ans.report;
    let tree = report.trace.as_ref().expect("trace attached");
    // The root's wall is bounded by the report's routed wall, and its
    // direct children (probes + attempts) fit within it.
    let root_ns = tree.record.duration_ns;
    assert!(
        root_ns <= report.wall.as_nanos() as u64,
        "query span {root_ns}ns exceeds routed wall {}ns",
        report.wall.as_nanos()
    );
    assert!(
        tree.child_ns() <= root_ns,
        "probe+attempt time {}ns exceeds query span {root_ns}ns",
        tree.child_ns()
    );
    // Probe and attempt timing is attributed on the routing decision.
    let routing = report.routing.as_ref().expect("routed");
    let attempted: Vec<_> = routing
        .candidates
        .iter()
        .filter(|c| c.attempt_wall > std::time::Duration::ZERO)
        .collect();
    assert!(!attempted.is_empty(), "someone must have attempted");
    let rendered = report.explain_analyze();
    assert!(
        rendered.contains("probe="),
        "probe timing missing:\n{rendered}"
    );
    assert!(
        rendered.contains("attempt="),
        "attempt timing missing:\n{rendered}"
    );
    assert!(
        rendered.contains("trace:"),
        "span tree missing:\n{rendered}"
    );
}

/// Disabled-tracer executions leave no residue: no spans buffered, no
/// open-span drift, identical results. Runs inside capture() purely for
/// its serialization lock — the closure immediately switches the tracer
/// off, so the captured record set must come back empty.
#[test]
fn disabled_tracing_is_inert_end_to_end() {
    let xs: Vec<i64> = (0..5_000).map(|i| (i * 31) % 997).collect();
    let c = catalog_from(&xs, 64, 11);
    let plan = Query::scan("fact")
        .aggregate(vec![], vec![AggExpr::sum(col("v"), "s")])
        .build();
    let ((r1, r2, before, after), records) = aqp_obs::capture(|| {
        aqp_obs::set_enabled(false);
        let before = aqp_obs::open_span_count();
        let r1 = execute_with(&plan, &c, ExecOptions::with_threads(4)).unwrap();
        let r2 = execute_with(&plan, &c, ExecOptions::serial()).unwrap();
        (r1, r2, before, aqp_obs::open_span_count())
    });
    assert_eq!(r1.rows(), r2.rows());
    assert_eq!(before, after);
    assert!(records.is_empty(), "disabled tracer recorded {records:?}");
}
