//! Thread-count equivalence for the morsel-parallel executor and the
//! synopsis builders layered on it.
//!
//! The parallel paths fold per-block partial states in *block order*, so
//! the reduction tree is fixed by the data layout, never by scheduling.
//! Consequences tested here:
//!
//! * every parallel thread count (2, 4, 8) produces the same result as
//!   every other — bitwise;
//! * with exactly-summable inputs (integer-valued f64, where addition is
//!   associative), the parallel results also equal the `threads == 1`
//!   serial fold bitwise;
//! * `VAR_SAMP` (Welford serially, pairwise moment merges in parallel)
//!   agrees to tight relative tolerance;
//! * the online sampler's per-block accumulation reproduces the serial
//!   summation order exactly, so approximate answers are identical at
//!   every thread count for *arbitrary* float data.

use proptest::prelude::*;

use aqp_core::{ErrorSpec, OnlineAqp, OnlineConfig};
use aqp_engine::agg::AggFunc;
use aqp_engine::{execute_with, AggExpr, ExecOptions, Query};
use aqp_expr::{col, lit};
use aqp_storage::{Catalog, DataType, Field, Schema, TableBuilder, Value};

const PAR_THREADS: [usize; 3] = [2, 4, 8];

/// Fact table `fact(k, v)` with integer-valued `v` (exactly summable) and
/// a small dimension `dim(k, w)` covering every key.
fn catalog_from(xs: &[i64], block_cap: usize, keys: i64) -> Catalog {
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int64),
        Field::new("v", DataType::Float64),
    ]);
    let mut fact = TableBuilder::with_block_capacity("fact", schema, block_cap);
    for &x in xs {
        fact.push_row(&[Value::Int64(x.rem_euclid(keys)), Value::Float64(x as f64)])
            .unwrap();
    }
    let dim_schema = Schema::new(vec![
        Field::new("k", DataType::Int64),
        Field::new("w", DataType::Float64),
    ]);
    let mut dim = TableBuilder::with_block_capacity("dim", dim_schema, 16);
    for k in 0..keys {
        dim.push_row(&[Value::Int64(k), Value::Float64((k * 3 + 1) as f64)])
            .unwrap();
    }
    let c = Catalog::new();
    c.register(fact.finish()).unwrap();
    c.register(dim.finish()).unwrap();
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Filter → group-by with every mergeable aggregate: parallel runs
    /// equal the serial fold bitwise on exactly-summable data.
    #[test]
    fn aggregate_identical_across_thread_counts(
        xs in prop::collection::vec(-1_000_000i64..1_000_000, 4200..5200),
        cap in 16usize..96,
    ) {
        let c = catalog_from(&xs, cap, 29);
        let plan = Query::scan("fact")
            .filter(col("v").gt_eq(lit(-900_000.0)))
            .aggregate(
                vec![(col("k"), "k".to_string())],
                vec![
                    AggExpr::count_star("n"),
                    AggExpr::sum(col("v"), "s"),
                    AggExpr::avg(col("v"), "a"),
                    AggExpr::min(col("v"), "lo"),
                    AggExpr::max(col("v"), "hi"),
                    AggExpr::count_distinct(col("v"), "d"),
                ],
            )
            .build();
        let serial = execute_with(&plan, &c, ExecOptions::serial()).unwrap();
        for threads in PAR_THREADS {
            let par = execute_with(&plan, &c, ExecOptions::with_threads(threads)).unwrap();
            prop_assert_eq!(serial.rows(), par.rows(), "threads={}", threads);
            prop_assert_eq!(serial.stats(), par.stats(), "threads={}", threads);
            prop_assert_eq!(serial.schema(), par.schema(), "threads={}", threads);
        }
    }

    /// Fused scan→filter→project and hash join: identical rows, stats, and
    /// output blocking at every thread count.
    #[test]
    fn join_pipeline_identical_across_thread_counts(
        xs in prop::collection::vec(-500_000i64..500_000, 4200..5200),
        cap in 16usize..96,
    ) {
        let c = catalog_from(&xs, cap, 17);
        let plan = Query::scan("fact")
            .filter(col("k").lt(lit(13i64)))
            .join(Query::scan("dim"), col("k"), col("k"))
            .aggregate(
                vec![],
                vec![
                    AggExpr::sum(col("w"), "sw"),
                    AggExpr::count_star("n"),
                ],
            )
            .build();
        let serial = execute_with(&plan, &c, ExecOptions::serial()).unwrap();
        for threads in PAR_THREADS {
            let par = execute_with(&plan, &c, ExecOptions::with_threads(threads)).unwrap();
            prop_assert_eq!(serial.rows(), par.rows(), "threads={}", threads);
            prop_assert_eq!(serial.stats(), par.stats(), "threads={}", threads);
        }
    }

    /// VAR_SAMP merges moment partials pairwise instead of one global
    /// Welford fold; values agree to tight relative tolerance.
    #[test]
    fn var_samp_matches_serial_closely(
        xs in prop::collection::vec(-1_000_000i64..1_000_000, 4200..5000),
        cap in 32usize..96,
    ) {
        let c = catalog_from(&xs, cap, 7);
        let plan = Query::scan("fact")
            .aggregate(
                vec![(col("k"), "k".to_string())],
                vec![AggExpr::new(AggFunc::VarSamp, col("v"), "var")],
            )
            .build();
        let serial = execute_with(&plan, &c, ExecOptions::serial()).unwrap();
        for threads in PAR_THREADS {
            let par = execute_with(&plan, &c, ExecOptions::with_threads(threads)).unwrap();
            let a = serial.column_f64("var").unwrap();
            let b = par.column_f64("var").unwrap();
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                prop_assert!(
                    (x - y).abs() <= 1e-9 * x.abs().max(1.0),
                    "threads={} var {} vs {}", threads, x, y
                );
            }
        }
    }

    /// The online sampler's morsel accumulation preserves the serial
    /// summation order exactly, so estimates (and their variances) are
    /// bit-identical at every thread count even for arbitrary floats.
    #[test]
    fn online_answers_identical_across_thread_counts(
        xs in prop::collection::vec(-1_000_000i64..1_000_000, 4200..5000),
        seed in any::<u64>(),
    ) {
        let c = catalog_from(&xs, 64, 11);
        let plan = Query::scan("fact")
            .aggregate(
                vec![(col("k"), "k".to_string())],
                vec![AggExpr::sum(col("v").mul(lit(0.1)), "s")],
            )
            .build();
        let spec = ErrorSpec::new(0.2, 0.9);
        let serial = OnlineAqp::new(&c, OnlineConfig { threads: 1, ..OnlineConfig::default() })
            .answer_plan(&plan, &spec, seed)
            .unwrap();
        for threads in PAR_THREADS {
            let par = OnlineAqp::new(&c, OnlineConfig { threads, ..OnlineConfig::default() })
                .answer_plan(&plan, &spec, seed)
                .unwrap();
            prop_assert_eq!(serial.groups.len(), par.groups.len(), "threads={}", threads);
            for (ga, gb) in serial.groups.iter().zip(&par.groups) {
                prop_assert_eq!(&ga.key, &gb.key, "threads={}", threads);
                for (ea, eb) in ga.estimates.iter().zip(&gb.estimates) {
                    prop_assert_eq!(ea.value, eb.value, "threads={}", threads);
                    prop_assert_eq!(ea.variance, eb.variance, "threads={}", threads);
                }
            }
        }
    }
}

/// Offline synopsis builds (HLL distinct, congressional stratification)
/// are exact under parallel merge: estimates equal the serial build's.
#[test]
fn offline_synopses_identical_across_thread_counts() {
    use aqp_core::OfflineStore;

    let xs: Vec<i64> = (0..20_000).map(|i| (i * 7919) % 4001 - 2000).collect();
    let c = catalog_from(&xs, 64, 31);
    let serial = OfflineStore::with_threads(1);
    serial.build_distinct(&c, "fact", "v", 12).unwrap();
    serial.build_stratified(&c, "fact", "k", 3_000, 42).unwrap();
    for threads in PAR_THREADS {
        let par = OfflineStore::with_threads(threads);
        par.build_distinct(&c, "fact", "v", 12).unwrap();
        par.build_stratified(&c, "fact", "k", 3_000, 42).unwrap();
        assert_eq!(
            serial.approx_count_distinct("fact", "v").unwrap(),
            par.approx_count_distinct("fact", "v").unwrap(),
            "threads={threads}"
        );
        assert_eq!(
            serial.staleness(&c, "fact").unwrap(),
            par.staleness(&c, "fact").unwrap(),
            "threads={threads}"
        );
    }
}
