//! Acceptance tests for the accuracy-audit subsystem: the seeded
//! ground-truth sampler, observed-vs-nominal CI coverage, the
//! stale-synopsis quarantine feedback loop, and the metric-name
//! source-of-truth table.
//!
//! * The audit sampler is a pure function of (seed, serial, rate): two
//!   sessions with the same audit config over the same workload audit
//!   exactly the same queries.
//! * A nominal 95% interval's *observed* coverage over ≥200 audited
//!   queries must land in a sane band — at every thread count.
//! * A synopsis whose data silently drifted (append that barely moves
//!   staleness) must be caught by audits, quarantined (visible in the
//!   `RoutingDecision`, the lint stream, Prometheus, and
//!   `explain_analyze()`), and released by `maintain_synopses`.

use proptest::prelude::*;

use aqp_core::{
    AqpSession, AuditConfig, CandidateOutcome, DeclineReason, ErrorSpec, LintCode, SessionConfig,
    TechniqueKind,
};
use aqp_engine::{AggExpr, LogicalPlan, Query};
use aqp_expr::col;
use aqp_mergeable::Partial;
use aqp_storage::Catalog;
use aqp_workload::{skewed_table, uniform_table};

fn sum_plan(table: &str) -> LogicalPlan {
    Query::scan(table)
        .aggregate(vec![], vec![AggExpr::sum(col("v"), "s")])
        .build()
}

fn grouped_sum_plan(table: &str) -> LogicalPlan {
    Query::scan(table)
        .aggregate(
            vec![(col("g"), "g".to_string())],
            vec![AggExpr::sum(col("v"), "s")],
        )
        .build()
}

/// Appends `extra` freshly generated rows to `t` via the Table `Partial`
/// merge — append-only, prefix untouched — with a different seed so the
/// appended distribution genuinely shifts the truth.
fn append_rows(c: &Catalog, extra: usize, seed: u64) {
    let base = c.get("t").unwrap();
    let delta = skewed_table("t", extra, 20, 1.0, 256, seed);
    let mut extended = (*base).clone();
    Partial::merge(&mut extended, &delta).unwrap();
    c.replace(extended);
}

/// Same audit config + same workload ⇒ the same queries get audited, and
/// the audit verdicts agree — the sampler is seeded and serial-driven,
/// not wall-clock- or rng-state-driven.
#[test]
fn audit_sampler_is_deterministic_across_sessions() {
    let run = || {
        let c = Catalog::new();
        c.register(uniform_table("t", 20_000, 128, 7)).unwrap();
        let config = SessionConfig {
            audit: AuditConfig {
                rate: 0.3,
                seed: 42,
                ..AuditConfig::default()
            },
            ..SessionConfig::default()
        };
        let session = AqpSession::with_config(&c, config);
        let spec = ErrorSpec::new(0.1, 0.95);
        (0..40u64)
            .map(|i| {
                let ans = session.answer(&sum_plan("t"), &spec, i).unwrap();
                ans.report.audit.map(|a| (a.technique, a.ok))
            })
            .collect::<Vec<_>>()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "audit picks and verdicts must replay bit-for-bit");
    let audited = a.iter().filter(|x| x.is_some()).count();
    assert!(
        (4..=20).contains(&audited),
        "rate 0.3 over 40 queries should audit roughly 12, got {audited}"
    );
}

/// Audit rate 0 must leave answers untouched: no audit, no scoreboard.
#[test]
fn disabled_auditor_attaches_nothing() {
    let c = Catalog::new();
    c.register(uniform_table("t", 20_000, 128, 7)).unwrap();
    let session = AqpSession::new(&c);
    let ans = session
        .answer(&sum_plan("t"), &ErrorSpec::new(0.1, 0.95), 3)
        .unwrap();
    assert!(ans.report.audit.is_none());
    assert!(ans.report.accuracy.is_none());
    assert!(session.accuracy().rows.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Observed CI coverage over ≥200 audited online-sampling answers at
    /// nominal 95% lands in a sane band, at 1, 2, and 4 worker threads.
    /// (Exact-coverage calibration is E-audit's job; this pins that the
    /// audit loop *measures* rather than fabricates.)
    #[test]
    fn observed_coverage_tracks_nominal(thread_idx in 0usize..3) {
        let threads = [1usize, 2, 4][thread_idx];
        let c = Catalog::new();
        c.register(uniform_table("t", 12_000, 128, 11)).unwrap();
        let mut config = SessionConfig {
            audit: AuditConfig {
                rate: 1.0,
                seed: 9,
                window: 512,
                // Coverage feedback off: this test measures, not routes.
                coverage_floor: 0.0,
                min_audits: 1,
            },
            ..SessionConfig::default()
        };
        config.online.threads = threads;
        let session = AqpSession::with_config(&c, config);
        let spec = ErrorSpec::new(0.1, 0.95);
        let mut audited = 0u64;
        for seed in 0..220u64 {
            let ans = session.answer(&sum_plan("t"), &spec, seed).unwrap();
            let routing = ans.report.routing.as_ref().unwrap();
            prop_assert_eq!(routing.winner, TechniqueKind::OnlineSampling);
            if ans.report.audit.is_some() {
                audited += 1;
            }
        }
        prop_assert!(audited >= 200, "expected >=200 audits, got {audited}");
        let snap = session.accuracy();
        let row = snap.get(TechniqueKind::OnlineSampling.name()).unwrap();
        prop_assert_eq!(row.total_audits, audited);
        let coverage = row.coverage.unwrap();
        let nominal = row.nominal.unwrap();
        prop_assert!((nominal - 0.95).abs() < 1e-9);
        // Sane band: the estimator is conservative (pilot inflation), so
        // coverage should sit at or above nominal minus sampling noise,
        // and the scoreboard must not report an impossible value.
        prop_assert!(
            (0.85..=1.0).contains(&coverage),
            "threads={}: observed coverage {} escaped the sane band",
            threads, coverage
        );
        // The error quantiles are populated and ordered. (p95 may exceed
        // the true max: bucket interpolation reads the bucket's upper
        // edge, while max_rel_err is exact.)
        let p50 = row.p50_rel_err.unwrap();
        let p95 = row.p95_rel_err.unwrap();
        prop_assert!(p50 <= p95);
        prop_assert!(row.max_rel_err.is_finite() && row.max_rel_err >= 0.0);
    }
}

/// The drift-aware feedback loop, end to end: an append that shifts the
/// distribution (while staying far under the staleness gate) biases the
/// synopsis; ground-truth audits catch it; the technique is quarantined —
/// visible in the routing decision, the lint stream, Prometheus, and
/// `explain_analyze()` — and `maintain_synopses` repairs and releases it.
#[test]
fn stale_synopsis_is_quarantined_and_recovers_after_maintenance() {
    let c = Catalog::new();
    c.register(skewed_table("t", 40_000, 20, 1.0, 256, 3))
        .unwrap();
    let config = SessionConfig {
        // Staleness alone must NOT catch this — audits do.
        max_staleness: 10.0,
        audit: AuditConfig {
            rate: 1.0,
            seed: 5,
            window: 8,
            coverage_floor: 0.7,
            min_audits: 4,
        },
        ..SessionConfig::default()
    };
    let session = AqpSession::with_config(&c, config);
    session
        .offline()
        .build_stratified(&c, "t", "g", 4_000, 1)
        .unwrap();
    let spec = ErrorSpec::new(0.05, 0.95);

    // Phase 1: fresh synopsis answers and audits cleanly.
    let ans = session.answer(&grouped_sum_plan("t"), &spec, 1).unwrap();
    assert_eq!(
        ans.report.routing.as_ref().unwrap().winner,
        TechniqueKind::OfflineSynopsis
    );
    assert!(ans.report.audit.is_some(), "rate 1.0 audits everything");

    // Phase 2: append 60% more rows from a different draw. The synopsis
    // (built on the prefix) now misses a third of the mass; its narrow
    // CIs cannot cover the new truth. Staleness 0.6 << 10.0, so the
    // freshness gate stays open — only audits can see the problem.
    append_rows(&c, 24_000, 99);
    assert!(session.offline().staleness(&c, "t").unwrap() < 1.0);

    let mut quarantined_at = None;
    for i in 0..12u64 {
        let ans = session
            .answer(&grouped_sum_plan("t"), &spec, 10 + i)
            .unwrap();
        if session
            .quarantined()
            .iter()
            .any(|t| t == "offline-synopsis")
        {
            quarantined_at = Some((i, ans));
            break;
        }
        let audit = ans.report.audit.expect("still routed offline: audited");
        assert!(!audit.ok, "biased synopsis must fail its audits");
    }
    let (_, last_offline_ans) =
        quarantined_at.expect("repeated failed audits must quarantine the offline family");
    // min_audits=4 counts the clean phase-1 audit, so the floor trips
    // after three failures at the earliest.
    assert!(session.offline().failed_audits("t") >= 3);
    // The quarantine-entry answer carries the scoreboard with the flag up.
    let accuracy = last_offline_ans.report.accuracy.as_ref().unwrap();
    assert!(accuracy.get("offline-synopsis").unwrap().quarantined);

    // Phase 3: while quarantined, routing declines the family statically
    // with the machine-readable reason — probe skipped, lint A014 fired,
    // counter ticked — and falls to the next family.
    let ans = session.answer(&grouped_sum_plan("t"), &spec, 77).unwrap();
    let routing = ans.report.routing.as_ref().unwrap();
    assert_ne!(routing.winner, TechniqueKind::OfflineSynopsis);
    match routing.outcome(TechniqueKind::OfflineSynopsis) {
        Some(CandidateOutcome::StaticallyIneligible(DeclineReason::Quarantined {
            coverage_bp,
            floor_bp,
        })) => {
            assert_eq!(*floor_bp, 7_000);
            assert!(*coverage_bp < *floor_bp);
        }
        other => panic!("expected a static Quarantined decline, got {other:?}"),
    }
    let lints = ans.report.lints.as_ref().unwrap();
    assert!(lints.has(LintCode::A014TechniqueQuarantined));
    let prom = aqp_obs::metrics::global().to_prometheus_text();
    assert!(prom.contains("aqp_quarantined_total{technique=\"offline-synopsis\"}"));
    assert!(prom.contains("aqp_audit_ci_miss_total{technique=\"offline-synopsis\"}"));
    let explain = ans.report.explain_analyze();
    assert!(explain.contains("QUARANTINED"), "{explain}");
    assert!(
        explain.contains("quarantined: offline-synopsis"),
        "{explain}"
    );

    // Phase 4: maintenance folds the delta in, resets the scoreboard
    // window and the failed-audit drift counter, and the family routes —
    // and audits cleanly — again.
    assert!(session.maintain_synopses("t", 7).unwrap() >= 1);
    assert!(session.quarantined().is_empty());
    assert_eq!(session.offline().failed_audits("t"), 0);
    let ans = session.answer(&grouped_sum_plan("t"), &spec, 200).unwrap();
    assert_eq!(
        ans.report.routing.as_ref().unwrap().winner,
        TechniqueKind::OfflineSynopsis
    );
    let audit = ans.report.audit.as_ref().unwrap();
    assert!(audit.ok, "maintained synopsis must pass its audit");
}

/// Every Prometheus series name emitted by a mixed audited workload must
/// appear in the `aqp_obs::names` source-of-truth table, and every
/// decline-reason / winner label value must come from its tag table.
#[test]
fn emitted_metric_names_come_from_the_names_table() {
    let c = Catalog::new();
    c.register(skewed_table("t", 30_000, 20, 1.0, 256, 3))
        .unwrap();
    let config = SessionConfig {
        audit: AuditConfig {
            rate: 1.0,
            ..AuditConfig::default()
        },
        ..SessionConfig::default()
    };
    let session = AqpSession::with_config(&c, config);
    session
        .offline()
        .build_stratified(&c, "t", "g", 3_000, 1)
        .unwrap();
    session.offline().staleness(&c, "t").unwrap();
    let spec = ErrorSpec::new(0.1, 0.9);
    // Exercise offline, online, OLA, rewrite-ish, and exact paths.
    session.answer(&grouped_sum_plan("t"), &spec, 1).unwrap();
    session.answer(&sum_plan("t"), &spec, 2).unwrap();
    let minmax = Query::scan("t")
        .aggregate(vec![], vec![AggExpr::min(col("v"), "m")])
        .build();
    session.answer(&minmax, &spec, 3).unwrap();
    session.maintain_synopses("t", 5).unwrap();

    let prom = aqp_obs::metrics::global().to_prometheus_text();
    for line in prom.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let series = line.split_whitespace().next().unwrap();
        let base = series.split('{').next().unwrap();
        let base = base
            .trim_end_matches("_bucket")
            .trim_end_matches("_sum")
            .trim_end_matches("_count");
        assert!(
            aqp_obs::names::ALL_METRIC_NAMES.contains(&base),
            "emitted metric `{base}` missing from aqp_obs::names::ALL_METRIC_NAMES"
        );
        if let Some(rest) = series.strip_prefix(&format!(
            "{}{{{}=",
            aqp_obs::names::DECLINE_TOTAL,
            aqp_obs::names::DECLINE_REASON_LABEL
        )) {
            let tag = rest.trim_start_matches('"').trim_end_matches("\"}");
            assert!(
                aqp_obs::names::DECLINE_REASON_TAGS.contains(&tag),
                "decline tag `{tag}` missing from DECLINE_REASON_TAGS"
            );
        }
        if let Some(rest) = series.strip_prefix(&format!(
            "{}{{{}=",
            aqp_obs::names::ROUTED_TOTAL,
            aqp_obs::names::ROUTED_WINNER_LABEL
        )) {
            let tag = rest.trim_start_matches('"').trim_end_matches("\"}");
            assert!(
                aqp_obs::names::ROUTED_WINNER_TAGS.contains(&tag),
                "winner tag `{tag}` missing from ROUTED_WINNER_TAGS"
            );
        }
    }
    // Every DeclineReason tag and technique name is registered.
    for kind in TechniqueKind::all() {
        assert!(aqp_obs::names::ROUTED_WINNER_TAGS.contains(&kind.name()));
    }
}
