//! Acceptance tests for two-step (shard-then-merge) aggregation and
//! incremental synopsis maintenance — the two payoffs of the `Partial`
//! contract.
//!
//! * Exact aggregates executed over N ∈ {1, 2, 4, 8} shards must be
//!   **bit-for-bit identical** to unsharded execution (order-independent
//!   aggregates: counts, extrema, integer-valued sums).
//! * Approximate answers merged from per-shard samples must carry
//!   variance/CI matching the unsharded estimator within tolerance.
//! * The E8 drift scenario (append-only growth) must be answerable by
//!   folding a delta partial into the stored synopsis — no rebuild.

use aqp_core::{
    bernoulli_sample_sharded, exact_aggregate_sharded, srs_sample_sharded, AggQuery, AggSpec,
    ErrorSpec, LinearAgg, OfflineStore,
};
use aqp_engine::{execute, AggExpr, Query};
use aqp_expr::col;
use aqp_mergeable::Partial;
use aqp_storage::{Catalog, Value};
use aqp_workload::{skewed_table, uniform_table};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn bits(v: &Value) -> String {
    match v {
        Value::Float64(x) => format!("f{}", x.to_bits()),
        other => format!("{other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Sharded exact execution is indistinguishable — to the bit — from
    /// the serial fold, at every shard count and thread count.
    #[test]
    fn sharded_exact_aggregation_is_bit_for_bit(
        rows in 500usize..6_000,
        cap_idx in 0usize..3,
        seed in any::<u64>(),
    ) {
        let cap = [64usize, 256, 1024][cap_idx];
        let t = uniform_table("t", rows, cap, seed);
        let aggs = vec![
            AggExpr::count_star("c"),
            AggExpr::sum(col("id"), "s"),
            AggExpr::avg(col("id"), "a"),
            AggExpr::min(col("v"), "lo"),
            AggExpr::max(col("v"), "hi"),
        ];
        let serial = exact_aggregate_sharded(&t, &aggs, 1, 1).unwrap();
        for shards in SHARD_COUNTS {
            for threads in [1usize, 4] {
                let sharded = exact_aggregate_sharded(&t, &aggs, shards, threads).unwrap();
                prop_assert_eq!(serial.len(), sharded.len());
                for (a, b) in serial.iter().zip(&sharded) {
                    prop_assert_eq!(
                        bits(a), bits(b),
                        "shards={} threads={}", shards, threads
                    );
                }
            }
        }
    }

    /// A merged Bernoulli sample answers like the unsharded one: same
    /// design, same estimator, CI covering the truth, variance within a
    /// sampling-noise factor of the unsharded draw.
    #[test]
    fn sharded_bernoulli_matches_unsharded_estimator(seed in any::<u64>()) {
        let t = uniform_table("t", 30_000, 512, seed);
        let truth = t.column_f64("v").unwrap().iter().sum::<f64>();
        let base = bernoulli_sample_sharded(&t, 0.1, seed ^ 0xA5A5, 1, 1)
            .unwrap()
            .estimate_sum("v")
            .unwrap();
        for shards in SHARD_COUNTS {
            let merged = bernoulli_sample_sharded(&t, 0.1, seed ^ 0xA5A5, shards, 4).unwrap();
            let est = merged.estimate_sum("v").unwrap();
            let ci = est.ci(0.99);
            prop_assert!(
                ci.lo <= truth && truth <= ci.hi,
                "shards={}: truth {} outside [{}, {}]", shards, truth, ci.lo, ci.hi
            );
            let width_ratio = (est.variance / base.variance).sqrt();
            prop_assert!(
                (0.5..2.0).contains(&width_ratio),
                "shards={}: CI width ratio {}", shards, width_ratio
            );
        }
    }

    /// Per-shard SRS merged with per-stratum weight reconciliation keeps
    /// the same total budget and a CI in the same regime as one big SRS.
    #[test]
    fn sharded_srs_ci_width_tracks_unsharded(seed in any::<u64>()) {
        let t = uniform_table("t", 24_000, 512, seed);
        let budget = 2_400usize;
        let base = srs_sample_sharded(&t, budget, seed ^ 0x5A5A, 1, 1)
            .unwrap()
            .estimate_sum("v")
            .unwrap();
        for shards in SHARD_COUNTS {
            let merged = srs_sample_sharded(&t, budget / shards, seed ^ 0x5A5A, shards, 4).unwrap();
            prop_assert_eq!(merged.num_rows(), budget / shards * shards);
            let est = merged.estimate_sum("v").unwrap();
            let width_ratio = (est.variance / base.variance).sqrt();
            prop_assert!(
                (0.5..2.0).contains(&width_ratio),
                "shards={}: CI width ratio {}", shards, width_ratio
            );
        }
    }
}

/// Appends `extra` freshly generated rows to table `t` in `c` via the
/// Table `Partial` merge — an append-only delta, prefix untouched.
fn append_rows(c: &Catalog, extra: usize, seed: u64) {
    let base = c.get("t").unwrap();
    let delta = skewed_table("t", extra, 50, 1.1, 256, seed);
    let mut extended = (*base).clone();
    Partial::merge(&mut extended, &delta).unwrap();
    c.replace(extended);
}

fn sum_v_query() -> AggQuery {
    AggQuery {
        fact_table: "t".into(),
        joins: vec![],
        predicate: None,
        group_by: vec![],
        aggregates: vec![AggSpec {
            kind: LinearAgg::Sum,
            expr: col("v"),
            alias: "s".into(),
        }],
    }
}

/// The E8 drift scenario: data grows append-only, the stored synopsis
/// goes stale, and a delta-fold maintenance pass — touching only the new
/// rows — restores freshness and accuracy without a rebuild.
#[test]
fn e8_drift_answered_by_delta_maintenance_not_rebuild() {
    let catalog = Catalog::new();
    catalog
        .register(skewed_table("t", 80_000, 50, 1.1, 256, 17))
        .unwrap();
    let store = OfflineStore::new();
    store
        .build_stratified(&catalog, "t", "g", 8_000, 5)
        .unwrap();
    store.build_distinct(&catalog, "t", "g", 12).unwrap();
    store.build_quantiles(&catalog, "t", "v", 0.02).unwrap();

    // Drift: a 25% append makes the synopsis stale.
    append_rows(&catalog, 20_000, 99);
    assert!(store.staleness(&catalog, "t").unwrap() > 0.15);

    // Maintenance folds delta partials in — it reports exactly the delta
    // rows it scanned, which is how we know it didn't rescan the base.
    let delta_rows = store.maintain_stratified(&catalog, "t", 7).unwrap();
    assert_eq!(delta_rows, 20_000);
    // maintain_all touches every synopsis for the table (the already-fresh
    // stratified one is a no-op inside it).
    assert_eq!(store.maintain_all(&catalog, "t", 7).unwrap(), 3);
    assert_eq!(store.staleness(&catalog, "t").unwrap(), 0.0);

    // The maintained synopsis answers the post-drift query accurately.
    let q = sum_v_query();
    let exact = execute(&q.to_plan(), &catalog).unwrap();
    let truth = exact.rows()[0][0].as_f64().unwrap();
    let ans = store.answer(&q, &ErrorSpec::new(0.1, 0.9)).unwrap();
    let err = ans.scalar_estimate("s").unwrap().relative_error(truth);
    assert!(err < 0.15, "post-maintenance error {err}");

    // And the sketch synopses track the grown table too.
    let d = store.approx_count_distinct("t", "g").unwrap();
    assert!((d - 50.0).abs() < 5.0, "distinct after maintenance: {d}");

    // A second pass finds nothing to do.
    assert_eq!(store.maintain_stratified(&catalog, "t", 7).unwrap(), 0);
}

/// Shard-then-merge and maintenance compose: answers over the grown
/// table are identical whether computed serially or sharded.
#[test]
fn sharded_execution_agrees_on_the_grown_table() {
    let catalog = Catalog::new();
    catalog
        .register(skewed_table("t", 40_000, 50, 1.1, 256, 23))
        .unwrap();
    append_rows(&catalog, 4_000, 31);
    let t = catalog.get("t").unwrap();
    let aggs = vec![
        AggExpr::count_star("c"),
        AggExpr::min(col("v"), "lo"),
        AggExpr::max(col("v"), "hi"),
    ];
    let serial = exact_aggregate_sharded(&t, &aggs, 1, 1).unwrap();
    let sharded = exact_aggregate_sharded(&t, &aggs, 8, 4).unwrap();
    for (a, b) in serial.iter().zip(&sharded) {
        assert_eq!(bits(a), bits(b));
    }
    // Cross-check COUNT against the exact engine.
    let plan = Query::scan("t")
        .aggregate(vec![], vec![AggExpr::count_star("c")])
        .build();
    let engine_count = execute(&plan, &catalog).unwrap().scalar();
    assert_eq!(bits(&serial[0]), bits(&engine_count));
}
