//! Documentation pinning: the operator-facing docs are checked against
//! the code they describe, so they cannot silently drift.
//!
//! * `docs/OPERATIONS.md` must mention every metric series the workspace
//!   emits ([`aqp_obs::names::ALL_METRIC_NAMES`] is the registry);
//! * `docs/ARCHITECTURE.md` must name every non-shim crate;
//! * the README must link both documents.

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn read(rel: &str) -> String {
    let path = repo_root().join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// Every emitted metric series is documented. A new metric added to
/// `aqp_obs::names` without an OPERATIONS.md row fails here by name.
#[test]
fn operations_doc_covers_every_metric() {
    let doc = read("docs/OPERATIONS.md");
    let missing: Vec<&str> = aqp_obs::names::ALL_METRIC_NAMES
        .iter()
        .copied()
        .filter(|name| !doc.contains(name))
        .collect();
    assert!(
        missing.is_empty(),
        "docs/OPERATIONS.md is missing metric(s): {missing:?}"
    );
}

/// The label vocabularies (decision/event tags) are documented too, so an
/// operator can interpret every labeled series without reading source.
#[test]
fn operations_doc_covers_label_tags() {
    let doc = read("docs/OPERATIONS.md");
    for tag in aqp_obs::names::ADMISSION_DECISION_TAGS
        .iter()
        .chain(aqp_obs::names::PLAN_CACHE_EVENT_TAGS)
        .chain(aqp_obs::names::ROUTED_WINNER_TAGS)
    {
        assert!(
            doc.contains(tag),
            "docs/OPERATIONS.md is missing label value `{tag}`"
        );
    }
}

/// The architecture tour names every non-shim crate in the workspace.
#[test]
fn architecture_doc_names_every_crate() {
    let doc = read("docs/ARCHITECTURE.md");
    for krate in [
        "aqp-mergeable",
        "aqp-stats",
        "aqp-storage",
        "aqp-expr",
        "aqp-engine",
        "aqp-sampling",
        "aqp-sketch",
        "aqp-workload",
        "aqp-obs",
        "aqp-analyze",
        "aqp-core",
        "aqp-bench",
    ] {
        assert!(
            doc.contains(krate),
            "docs/ARCHITECTURE.md does not mention `{krate}`"
        );
    }
}

/// The README links both operator documents.
#[test]
fn readme_links_the_docs() {
    let readme = read("README.md");
    for link in ["docs/ARCHITECTURE.md", "docs/OPERATIONS.md"] {
        assert!(readme.contains(link), "README.md does not link {link}");
    }
}
