//! Documentation pinning: the operator-facing docs are checked against
//! the code they describe, so they cannot silently drift.
//!
//! * `docs/OPERATIONS.md` must mention every metric series the workspace
//!   emits ([`aqp_obs::names::ALL_METRIC_NAMES`] is the registry);
//! * `docs/ARCHITECTURE.md` must name every non-shim crate;
//! * the README must link both documents.

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn read(rel: &str) -> String {
    let path = repo_root().join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// Every emitted metric series is documented. A new metric added to
/// `aqp_obs::names` without an OPERATIONS.md row fails here by name.
#[test]
fn operations_doc_covers_every_metric() {
    let doc = read("docs/OPERATIONS.md");
    let missing: Vec<&str> = aqp_obs::names::ALL_METRIC_NAMES
        .iter()
        .copied()
        .filter(|name| !doc.contains(name))
        .collect();
    assert!(
        missing.is_empty(),
        "docs/OPERATIONS.md is missing metric(s): {missing:?}"
    );
}

/// The label vocabularies (decision/event tags) are documented too, so an
/// operator can interpret every labeled series without reading source.
#[test]
fn operations_doc_covers_label_tags() {
    let doc = read("docs/OPERATIONS.md");
    for tag in aqp_obs::names::ADMISSION_DECISION_TAGS
        .iter()
        .chain(aqp_obs::names::PLAN_CACHE_EVENT_TAGS)
        .chain(aqp_obs::names::ROUTED_WINNER_TAGS)
    {
        assert!(
            doc.contains(tag),
            "docs/OPERATIONS.md is missing label value `{tag}`"
        );
    }
}

/// The architecture tour names every non-shim crate in the workspace.
#[test]
fn architecture_doc_names_every_crate() {
    let doc = read("docs/ARCHITECTURE.md");
    for krate in [
        "aqp-mergeable",
        "aqp-stats",
        "aqp-storage",
        "aqp-expr",
        "aqp-engine",
        "aqp-sampling",
        "aqp-sketch",
        "aqp-workload",
        "aqp-obs",
        "aqp-analyze",
        "aqp-conformance",
        "aqp-core",
        "aqp-bench",
    ] {
        assert!(
            doc.contains(krate),
            "docs/ARCHITECTURE.md does not mention `{krate}`"
        );
    }
}

/// The README links both operator documents.
#[test]
fn readme_links_the_docs() {
    let readme = read("README.md");
    for link in ["docs/ARCHITECTURE.md", "docs/OPERATIONS.md"] {
        assert!(readme.contains(link), "README.md does not link {link}");
    }
}

/// The C-code table in OPERATIONS.md names every conformance code with
/// its exact title. A new code added to `aqp_conformance::Code` without
/// a documented row fails here by name.
#[test]
fn operations_doc_covers_every_conformance_code() {
    let doc = read("docs/OPERATIONS.md");
    for code in aqp_conformance::Code::all() {
        assert!(
            doc.contains(code.code()),
            "docs/OPERATIONS.md is missing conformance code `{}`",
            code.code()
        );
        assert!(
            doc.contains(code.title()),
            "docs/OPERATIONS.md row for {} does not carry its title `{}`",
            code.code(),
            code.title()
        );
    }
}

/// The README's gate description and crate map both name the
/// conformance crate, so a reader learns the source linter exists
/// before check.sh fails on them.
#[test]
fn readme_names_the_conformance_gate() {
    let readme = read("README.md");
    assert!(
        readme.contains("aqp-conformance"),
        "README.md never mentions aqp-conformance"
    );
    assert!(
        readme.contains("C001"),
        "README.md gate description does not mention the C-codes"
    );
}
