//! Golden tests for the static analyzer (aqp-lint): one fixture query per
//! lint code `A001`–`A013`, the session wiring (lint table on the report,
//! probe skipping), and the analyzer/router consistency contract as a
//! property: a statically eligible family never declines at runtime for a
//! static reason, and every static runtime decline is predicted — at
//! sampler thread counts 1, 2, and 4.

use proptest::prelude::*;

use aqp_analyze::{
    lint_plan, DeclineReason, GuaranteeClass, LintCode, LintContext, Severity, Suggestion,
    SynopsisMeta, TechniqueKind,
};
use aqp_core::{AqpSession, CandidateOutcome, ErrorSpec, SessionConfig};
use aqp_engine::{AggExpr, LogicalPlan, Query};
use aqp_expr::{col, lit};
use aqp_storage::Catalog;
use aqp_workload::{skewed_table, uniform_table};

/// `t` is big enough for every sampled path; `tiny` is below the pilot
/// minimum; `d` is a join dimension.
fn catalog() -> Catalog {
    let c = Catalog::new();
    c.register(uniform_table("t", 100_000, 256, 7)).unwrap();
    c.register(uniform_table("tiny", 400, 256, 7)).unwrap();
    c.register(uniform_table("d", 1_024, 256, 9)).unwrap();
    c
}

fn ungrouped_sum(table: &str) -> LogicalPlan {
    Query::scan(table)
        .aggregate(vec![], vec![AggExpr::sum(col("v"), "s")])
        .build()
}

fn grouped_sum(table: &str) -> LogicalPlan {
    Query::scan(table)
        .aggregate(
            vec![(col("id"), "id".to_string())],
            vec![AggExpr::sum(col("v"), "s")],
        )
        .build()
}

#[test]
fn a001_non_closed_aggregate() {
    let c = catalog();
    let plan = Query::scan("t")
        .aggregate(vec![], vec![AggExpr::min(col("v"), "m")])
        .build();
    let a = lint_plan(&plan, &LintContext::new(&c));
    let d = a.diag(LintCode::A001NonClosedAggregate).expect("A001");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.path, "aggregate.aggregates[0]");
    assert!(matches!(
        d.suggestion,
        Some(Suggestion::UseOfflineSynopsisForAggregate {
            synopsis_kind: "extreme-value",
            ..
        })
    ));
    assert!(matches!(
        d.predicts,
        Some(DeclineReason::UnsupportedAggregate { .. })
    ));
    assert_eq!(a.best_approximate(), GuaranteeClass::Unattainable);
    assert_eq!(a.best_attainable(), GuaranteeClass::Exact);
}

#[test]
fn a002_unsupported_shape() {
    let c = catalog();
    // No aggregate root at all: structurally outside the normalized form.
    let plan = Query::scan("t").filter(col("v").gt(lit(1i64))).build();
    let a = lint_plan(&plan, &LintContext::new(&c));
    let d = a.diag(LintCode::A002UnsupportedShape).expect("A002");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.path, "plan");
    assert_eq!(d.suggestion, Some(Suggestion::RouteExact));
    assert!(!a.has(LintCode::A001NonClosedAggregate));
    assert!(!a.normalized);
}

fn join_plan(pred: aqp_expr::Expr) -> LogicalPlan {
    Query::scan("t")
        .join(Query::scan("d"), col("id"), col("id"))
        .filter(pred)
        .aggregate(vec![], vec![AggExpr::sum(col("v"), "s")])
        .build()
}

#[test]
fn a003_joins_exclude_single_relation_families() {
    let c = catalog();
    let a = lint_plan(&join_plan(col("sel").lt(lit(0.5))), &LintContext::new(&c));
    let d = a.diag(LintCode::A003JoinsExcludeFamily).expect("A003");
    assert_eq!(d.severity, Severity::Note);
    assert_eq!(d.path, "joins");
    // One diagnostic covers both single-relation families; both verdicts
    // still carry the exact predicted decline.
    assert_eq!(
        a.blocked_by(TechniqueKind::OfflineSynopsis),
        Some(&DeclineReason::JoinsUnsupported)
    );
    assert_eq!(
        a.blocked_by(TechniqueKind::OnlineAggregation),
        Some(&DeclineReason::JoinsUnsupported)
    );
    assert!(a.statically_eligible(TechniqueKind::OnlineSampling));
}

#[test]
fn a004_progressive_shape() {
    let c = catalog();
    // Grouped: progressive aggregation maintains one live interval.
    let grouped = lint_plan(&grouped_sum("t"), &LintContext::new(&c));
    let d = grouped.diag(LintCode::A004ProgressiveShape).expect("A004");
    assert_eq!(d.path, "group_by");
    assert_eq!(d.predicts, Some(DeclineReason::GroupByUnsupported));
    // Two aggregates: one estimator per query.
    let multi = Query::scan("t")
        .aggregate(
            vec![],
            vec![AggExpr::sum(col("v"), "s"), AggExpr::avg(col("v"), "a")],
        )
        .build();
    let multi = lint_plan(&multi, &LintContext::new(&c));
    let d = multi.diag(LintCode::A004ProgressiveShape).expect("A004");
    assert_eq!(d.path, "aggregate.aggregates");
    // COUNT(*): not SUM/AVG of a bare column.
    let count = Query::scan("t")
        .aggregate(vec![], vec![AggExpr::count_star("n")])
        .build();
    let count = lint_plan(&count, &LintContext::new(&c));
    let d = count.diag(LintCode::A004ProgressiveShape).expect("A004");
    assert_eq!(d.path, "aggregate.aggregates[0]");
    assert!(!count.statically_eligible(TechniqueKind::OnlineAggregation));
}

#[test]
fn a005_no_synopsis() {
    let c = catalog();
    let a = lint_plan(&ungrouped_sum("t"), &LintContext::new(&c));
    let d = a.diag(LintCode::A005NoSynopsis).expect("A005");
    assert_eq!(d.severity, Severity::Warn);
    assert_eq!(d.technique, Some(TechniqueKind::OfflineSynopsis));
    assert!(matches!(
        &d.suggestion,
        Some(Suggestion::BuildStratifiedSynopsis { table, .. }) if table == "t"
    ));
    assert_eq!(
        a.blocked_by(TechniqueKind::OfflineSynopsis),
        Some(&DeclineReason::NoSynopsis {
            table: "t".to_string()
        })
    );
}

#[test]
fn a006_synopsis_mismatch() {
    let c = catalog();
    let ctx = LintContext::new(&c).with_synopsis(SynopsisMeta {
        table: "t".to_string(),
        stratified_on: "v".to_string(),
        staleness: Some(0.0),
    });
    let a = lint_plan(&grouped_sum("t"), &ctx);
    let d = a.diag(LintCode::A006SynopsisMismatch).expect("A006");
    assert_eq!(d.severity, Severity::Warn);
    assert_eq!(d.path, "group_by[0]");
    assert_eq!(
        d.predicts,
        Some(DeclineReason::SynopsisMismatch {
            stratified_on: "v".to_string(),
            requested: "id".to_string(),
        })
    );
}

#[test]
fn a007_stale_synopsis() {
    let c = catalog();
    let ctx = LintContext::new(&c).with_synopsis(SynopsisMeta {
        table: "t".to_string(),
        stratified_on: "id".to_string(),
        staleness: Some(0.5),
    });
    let a = lint_plan(&grouped_sum("t"), &ctx);
    let d = a.diag(LintCode::A007StaleSynopsis).expect("A007");
    assert_eq!(d.severity, Severity::Warn);
    assert_eq!(
        d.suggestion,
        Some(Suggestion::RefreshSynopsis {
            table: "t".to_string()
        })
    );
    assert!(matches!(
        d.predicts,
        Some(DeclineReason::StaleSynopsis { staleness, .. }) if (staleness - 0.5).abs() < 1e-12
    ));
}

#[test]
fn a008_table_too_small() {
    let c = catalog();
    let a = lint_plan(&ungrouped_sum("tiny"), &LintContext::new(&c));
    let d = a.diag(LintCode::A008TableTooSmall).expect("A008");
    assert_eq!(d.severity, Severity::Note);
    assert_eq!(
        d.predicts,
        Some(DeclineReason::TableTooSmall {
            blocks: 2,
            min_blocks: 4,
        })
    );
    // Progressive aggregation still picks the shape up.
    assert!(a.statically_eligible(TechniqueKind::OnlineAggregation));
}

#[test]
fn a009_missing_table_blocks_everything() {
    let c = catalog();
    let a = lint_plan(&ungrouped_sum("ghost"), &LintContext::new(&c));
    let d = a.diag(LintCode::A009MissingTable).expect("A009");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.path, "scan(ghost)");
    for k in TechniqueKind::all() {
        assert!(!a.statically_eligible(k), "{k} must be blocked");
    }
    assert_eq!(a.best_attainable(), GuaranteeClass::Unattainable);
    assert_eq!(a.max_severity(), Some(Severity::Error));
}

#[test]
fn a010_group_support_risk() {
    let c = catalog();
    // Grouped, rewrite-eligible, offline blocked (no synopsis): the only
    // sampled grouped path is unstratified.
    let a = lint_plan(&grouped_sum("t"), &LintContext::new(&c));
    let d = a.diag(LintCode::A010GroupSupportRisk).expect("A010");
    assert_eq!(d.severity, Severity::Warn);
    assert_eq!(d.technique, Some(TechniqueKind::MiddlewareRewrite));
    assert_eq!(
        d.predicts,
        Some(DeclineReason::InsufficientSupport {
            rows: 0,
            min_rows: 30,
        })
    );
    // With a fresh matching synopsis the stratified path exists: no risk.
    let ctx = LintContext::new(&c).with_synopsis(SynopsisMeta {
        table: "t".to_string(),
        stratified_on: "id".to_string(),
        staleness: Some(0.0),
    });
    let covered = lint_plan(&grouped_sum("t"), &ctx);
    assert!(!covered.has(LintCode::A010GroupSupportRisk));
}

#[test]
fn a011_selective_predicate_risk() {
    let c = catalog();
    let plan = Query::scan("t")
        .filter(col("sel").lt(lit(0.001)))
        .aggregate(vec![], vec![AggExpr::sum(col("v"), "s")])
        .build();
    let a = lint_plan(&plan, &LintContext::new(&c));
    let d = a.diag(LintCode::A011SelectivePredicateRisk).expect("A011");
    assert_eq!(d.severity, Severity::Note);
    assert_eq!(d.path, "filter.predicate");
    assert_eq!(d.predicts, Some(DeclineReason::EmptyPilot));
    // A risk lint never changes the verdict.
    assert!(a.statically_eligible(TechniqueKind::OnlineSampling));
    // No predicate, no risk.
    let clean = lint_plan(&ungrouped_sum("t"), &LintContext::new(&c));
    assert!(!clean.has(LintCode::A011SelectivePredicateRisk));
}

#[test]
fn a012_sampled_join_precondition() {
    let c = catalog();
    let plain = lint_plan(&join_plan(col("sel").lt(lit(0.5))), &LintContext::new(&c));
    let d = plain
        .diag(LintCode::A012SampledJoinPrecondition)
        .expect("A012");
    assert_eq!(d.severity, Severity::Note);
    assert_eq!(
        d.suggestion,
        Some(Suggestion::UseUniverseSampling {
            key: "id".to_string()
        })
    );
    // A universe-sampling predicate on the key satisfies the precondition.
    let universe = lint_plan(
        &join_plan(col("id").hash64().modulo(lit(10i64)).lt(lit(3i64))),
        &LintContext::new(&c),
    );
    assert!(!universe.has(LintCode::A012SampledJoinPrecondition));
}

#[test]
fn a013_point_estimate_only() {
    let c = catalog();
    // Tiny + grouped + no synopsis: sampling, OLA, and offline are all
    // blocked; only the rewrite's point estimate remains.
    let a = lint_plan(&grouped_sum("tiny"), &LintContext::new(&c));
    let d = a.diag(LintCode::A013PointEstimateOnly).expect("A013");
    assert_eq!(d.severity, Severity::Note);
    assert_eq!(a.best_approximate(), GuaranteeClass::PointEstimate);
    // Any stronger attainable guarantee silences it.
    let strong = lint_plan(&ungrouped_sum("t"), &LintContext::new(&c));
    assert!(!strong.has(LintCode::A013PointEstimateOnly));
}

/// The registry itself: codes are dense, titles and NSB claims non-empty.
#[test]
fn lint_registry_is_complete() {
    for (i, code) in LintCode::all().iter().enumerate() {
        assert_eq!(code.code(), format!("A{:03}", i + 1));
        assert!(!code.title().is_empty());
        assert!(!code.nsb_claim().is_empty());
    }
}

/// Session wiring: the answer carries the analysis, `explain_analyze`
/// renders the lint table, and statically blocked families were never
/// probed (`probe_wall == 0`).
#[test]
fn session_attaches_lints_and_skips_probes() {
    let c = catalog();
    let session = AqpSession::new(&c);
    let ans = session
        .answer(&grouped_sum("t"), &ErrorSpec::new(0.2, 0.9), 7)
        .unwrap();
    let lints = ans.report.lints.as_ref().expect("lint table attached");
    assert!(lints.has(LintCode::A005NoSynopsis));
    let routing = ans.report.routing.as_ref().unwrap();
    for cand in &routing.candidates {
        if let CandidateOutcome::StaticallyIneligible(reason) = &cand.outcome {
            assert!(
                cand.probe_wall.is_zero(),
                "{}: probe must be skipped",
                cand.kind
            );
            assert_eq!(lints.blocked_by(cand.kind), Some(reason));
        }
    }
    let explain = ans.report.explain_analyze();
    assert!(explain.contains("lints:"), "explain:\n{explain}");
    assert!(explain.contains("A005"), "explain:\n{explain}");
    assert!(explain.contains("best attainable:"), "explain:\n{explain}");
}

/// `AqpSession::lint_plan` folds live synopsis metadata into the context:
/// building a synopsis flips A005 off, drifting the base table past the
/// threshold flips A007 on.
#[test]
fn session_lint_sees_synopsis_lifecycle() {
    let c = Catalog::new();
    c.register(skewed_table("t", 50_000, 20, 1.0, 256, 3))
        .unwrap();
    let session = AqpSession::new(&c);
    let plan = Query::scan("t")
        .aggregate(
            vec![(col("g"), "g".to_string())],
            vec![AggExpr::sum(col("v"), "s")],
        )
        .build();
    assert!(session.lint_plan(&plan).has(LintCode::A005NoSynopsis));
    session
        .offline()
        .build_stratified(&c, "t", "g", 5_000, 1)
        .unwrap();
    let fresh = session.lint_plan(&plan);
    assert!(!fresh.has(LintCode::A005NoSynopsis));
    assert!(fresh.statically_eligible(TechniqueKind::OfflineSynopsis));
    c.replace(skewed_table("t", 75_000, 20, 1.0, 256, 9));
    let stale = session.lint_plan(&plan);
    assert!(stale.has(LintCode::A007StaleSynopsis));
    assert!(!stale.statically_eligible(TechniqueKind::OfflineSynopsis));
}

/// One generated plan shape: optional filter, grouping, and a linear or
/// non-closed aggregate.
fn scenario_plan(grouped: bool, filter: Option<f64>, nonlinear: bool) -> LogicalPlan {
    let mut q = Query::scan("t");
    if let Some(threshold) = filter {
        q = q.filter(col("sel").lt(lit(threshold)));
    }
    let agg = if nonlinear {
        AggExpr::min(col("v"), "m")
    } else {
        AggExpr::sum(col("v"), "s")
    };
    let keys = if grouped {
        vec![(col("g"), "g".to_string())]
    } else {
        vec![]
    };
    q.aggregate(keys, vec![agg]).build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The consistency contract, as the tentpole states it: for any
    /// generated plan and session state, (a) a family the analyzer marks
    /// statically eligible never declines at runtime for a static reason,
    /// and (b) every static decline the router records was predicted by
    /// the analyzer with the identical `DeclineReason` — at sampler
    /// thread counts 1, 2, and 4.
    #[test]
    fn analyzer_and_router_cannot_drift(
        seed in any::<u64>(),
        rows in (0usize..3).prop_map(|i| [300usize, 2_000, 30_000][i]),
        grouped in any::<bool>(),
        has_filter in any::<bool>(),
        threshold in 0.0005f64..0.9,
        nonlinear in any::<bool>(),
        with_synopsis in any::<bool>(),
        stale in any::<bool>(),
    ) {
        let filter = has_filter.then_some(threshold);
        for threads in [1usize, 2, 4] {
            let c = Catalog::new();
            c.register(skewed_table("t", rows, 10, 1.0, 128, 11)).unwrap();
            let mut config = SessionConfig::default();
            config.online.threads = threads;
            let session = AqpSession::with_config(&c, config);
            if with_synopsis {
                session
                    .offline()
                    .build_stratified(&c, "t", "g", (rows / 10).max(64), 5)
                    .unwrap();
                if stale {
                    c.replace(skewed_table("t", rows + rows / 2, 10, 1.0, 128, 9));
                }
            }
            let plan = scenario_plan(grouped, filter, nonlinear);
            let analysis = session.lint_plan(&plan);
            let ans = session
                .answer(&plan, &ErrorSpec::new(0.3, 0.9), seed)
                .unwrap();
            let routing = ans.report.routing.as_ref().unwrap();
            for cand in &routing.candidates {
                match &cand.outcome {
                    CandidateOutcome::StaticallyIneligible(reason) => {
                        prop_assert!(reason.is_static());
                        prop_assert_eq!(
                            analysis.blocked_by(cand.kind), Some(reason),
                            "threads={}: {} skipped with an unpredicted reason",
                            threads, cand.kind
                        );
                        prop_assert!(cand.probe_wall.is_zero());
                    }
                    CandidateOutcome::Ineligible(reason) => {
                        // The probe only runs for statically eligible
                        // families, whose probes must pass: any a-priori
                        // decline here is analyzer/probe drift.
                        prop_assert!(
                            false,
                            "threads={}: {} probed ineligible ({}) though the analyzer \
                             marked it eligible",
                            threads, cand.kind, reason
                        );
                    }
                    CandidateOutcome::DeclinedAtRuntime(reason) => {
                        prop_assert!(analysis.statically_eligible(cand.kind));
                        prop_assert!(
                            !reason.is_static(),
                            "threads={}: {} declined at runtime for static reason {}",
                            threads, cand.kind, reason
                        );
                    }
                    CandidateOutcome::Chosen | CandidateOutcome::NotReached => {
                        prop_assert!(analysis.statically_eligible(cand.kind));
                    }
                }
            }
            // The attached lint table is the same analysis the router used.
            prop_assert_eq!(
                ans.report.lints.as_deref(),
                Some(&analysis)
            );
        }
    }
}
