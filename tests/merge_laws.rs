//! Merge-law proptests for every `Partial` implementation in the
//! workspace: **associativity**, **commutativity**, **identity**, and
//! **merge-equals-union** (a fold of chunk partials answers like a single
//! pass over the concatenated data).
//!
//! Laws are checked through each type's *observable* — its estimates —
//! rather than its bytes: float accumulators are associative only in
//! value space, and hash-set partials have no canonical byte order. Types
//! whose arithmetic is integral (counters, register maxima, bit unions,
//! k-smallest sets) are held to exact equality; float observables get a
//! relative tolerance at machine precision; GK quantile summaries get the
//! rank-error tolerance their merge guarantees.
//!
//! Union partials are built on the morsel pool at threads {1, 2, 4, 8} —
//! the schedule must never leak into the merged answer.

use aqp_engine::agg::{AggFunc, AggState};
use aqp_engine::pool::parallel_map;
use aqp_mergeable::Partial;
use aqp_sampling::{reservoir_rows, Sample};
use aqp_sketch::{
    AmsSketch, BloomFilter, CountMinSketch, CountSketch, EquiDepthHistogram, EquiWidthHistogram,
    GkQuantiles, HyperLogLog, KmvSketch, WaveletSynopsis,
};
use aqp_stats::{Moments, WeightedMoments};
use aqp_storage::{DataType, Field, Schema, Table, TableBuilder, Value};
use proptest::prelude::*;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Relative closeness of two observable vectors.
fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

/// Asserts the four laws on `parts` (≥ 3), comparing via `observe`:
/// * identity — merging `empty` in either direction changes nothing;
/// * commutativity — `a ⊕ b` and `b ⊕ a` observe identically;
/// * associativity — `(a ⊕ b) ⊕ c` and `a ⊕ (b ⊕ c)` observe identically;
/// * merge-equals-union — the in-order fold observes like `serial`,
///   checked with partials rebuilt on the pool at every thread count by
///   the caller.
fn assert_laws<T: Partial + Clone>(
    parts: &[T],
    empty: Option<&T>,
    serial: &T,
    observe: impl Fn(&T) -> Vec<f64>,
    tol: f64,
    label: &str,
) {
    assert!(parts.len() >= 3, "{label}: need 3 parts for associativity");
    if let Some(empty) = empty {
        let mut left = parts[0].clone();
        left.merge(empty).unwrap();
        assert!(
            close(&observe(&left), &observe(&parts[0]), tol),
            "{label}: right identity broken"
        );
        let mut right = empty.clone();
        right.merge(&parts[0]).unwrap();
        assert!(
            close(&observe(&right), &observe(&parts[0]), tol),
            "{label}: left identity broken"
        );
    }
    let mut ab = parts[0].clone();
    ab.merge(&parts[1]).unwrap();
    let mut ba = parts[1].clone();
    ba.merge(&parts[0]).unwrap();
    assert!(
        close(&observe(&ab), &observe(&ba), tol),
        "{label}: commutativity broken"
    );
    let mut ab_c = ab.clone();
    ab_c.merge(&parts[2]).unwrap();
    let mut bc = parts[1].clone();
    bc.merge(&parts[2]).unwrap();
    let mut a_bc = parts[0].clone();
    a_bc.merge(&bc).unwrap();
    assert!(
        close(&observe(&ab_c), &observe(&a_bc), tol),
        "{label}: associativity broken"
    );
    let mut fold = parts[0].clone();
    for p in &parts[1..] {
        fold.merge(p).unwrap();
    }
    assert!(
        close(&observe(&fold), &observe(serial), tol),
        "{label}: merge-equals-union broken\n fold: {:?}\n serial: {:?}",
        observe(&fold),
        observe(serial),
    );
}

/// Builds one partial per chunk on the pool and folds them in chunk
/// order — the union side of merge-equals-union, at every thread count.
fn pooled_union<T, I>(chunks: Vec<Vec<I>>, build: impl Fn(&[I]) -> T + Send + Sync) -> Vec<T>
where
    T: Partial + Clone + Send,
    I: Clone + Send + Sync,
{
    let mut out = Vec::new();
    for threads in THREADS {
        let parts = parallel_map(chunks.clone(), threads, |_, chunk| build(&chunk));
        let mut fold = parts[0].clone();
        for p in &parts[1..] {
            fold.merge(p).unwrap();
        }
        out.push(fold);
    }
    out
}

fn item_chunks() -> impl Strategy<Value = Vec<Vec<u64>>> {
    prop::collection::vec(prop::collection::vec(any::<u64>(), 1..120), 3..6)
}

fn float_chunks() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-1e5f64..1e5, 1..120), 3..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn hll_laws(chunks in item_chunks()) {
        let build = |items: &[u64]| {
            let mut s = HyperLogLog::new(10);
            for &h in items { s.insert_hashed(h); }
            s
        };
        let all: Vec<u64> = chunks.iter().flatten().copied().collect();
        let serial = build(&all);
        let parts: Vec<_> = chunks.iter().map(|c| build(c)).collect();
        let observe = |s: &HyperLogLog| vec![s.estimate()];
        assert_laws(&parts, Some(&HyperLogLog::new(10)), &serial, observe, 0.0, "hll");
        for fold in pooled_union(chunks, build) {
            prop_assert_eq!(fold.estimate(), serial.estimate());
        }
    }

    #[test]
    fn count_min_laws(chunks in item_chunks()) {
        let build = |items: &[u64]| {
            let mut s = CountMinSketch::new(64, 4, 7);
            for &h in items { s.insert_hashed(h, 1); }
            s
        };
        let all: Vec<u64> = chunks.iter().flatten().copied().collect();
        let probes: Vec<u64> = all.iter().take(5).copied().collect();
        let serial = build(&all);
        let parts: Vec<_> = chunks.iter().map(|c| build(c)).collect();
        let observe = |s: &CountMinSketch| {
            let mut o: Vec<f64> = probes.iter().map(|&h| s.estimate_hashed(h) as f64).collect();
            o.push(s.total() as f64);
            o
        };
        assert_laws(&parts, Some(&CountMinSketch::new(64, 4, 7)), &serial, observe, 0.0, "count-min");
        for fold in pooled_union(chunks, build) {
            prop_assert_eq!(fold.total(), serial.total());
        }
    }

    #[test]
    fn count_sketch_laws(chunks in item_chunks()) {
        let build = |items: &[u64]| {
            let mut s = CountSketch::new(64, 4, 7);
            for &h in items { s.insert_hashed(h, (h % 5) as i64 - 2); }
            s
        };
        let all: Vec<u64> = chunks.iter().flatten().copied().collect();
        let probes: Vec<u64> = all.iter().take(5).copied().collect();
        let serial = build(&all);
        let parts: Vec<_> = chunks.iter().map(|c| build(c)).collect();
        let observe = |s: &CountSketch| {
            probes.iter().map(|&h| s.estimate_hashed(h) as f64).collect()
        };
        assert_laws(&parts, Some(&CountSketch::new(64, 4, 7)), &serial, observe, 0.0, "count-sketch");
        for fold in pooled_union(chunks, build) {
            for &h in &probes {
                prop_assert_eq!(fold.estimate_hashed(h), serial.estimate_hashed(h));
            }
        }
    }

    #[test]
    fn ams_laws(chunks in item_chunks()) {
        let build = |items: &[u64]| {
            let mut s = AmsSketch::new(32, 5, 7);
            for &h in items { s.insert_hashed(h, 1); }
            s
        };
        let all: Vec<u64> = chunks.iter().flatten().copied().collect();
        let serial = build(&all);
        let parts: Vec<_> = chunks.iter().map(|c| build(c)).collect();
        let observe = |s: &AmsSketch| vec![s.estimate_f2()];
        assert_laws(&parts, Some(&AmsSketch::new(32, 5, 7)), &serial, observe, 0.0, "ams");
        for fold in pooled_union(chunks, build) {
            prop_assert_eq!(fold.estimate_f2(), serial.estimate_f2());
        }
    }

    #[test]
    fn kmv_laws(chunks in item_chunks()) {
        let build = |items: &[u64]| {
            let mut s = KmvSketch::new(32);
            for &h in items { s.insert_hashed(h); }
            s
        };
        let all: Vec<u64> = chunks.iter().flatten().copied().collect();
        let serial = build(&all);
        let parts: Vec<_> = chunks.iter().map(|c| build(c)).collect();
        let observe = |s: &KmvSketch| vec![s.estimate(), s.num_retained() as f64];
        assert_laws(&parts, Some(&KmvSketch::new(32)), &serial, observe, 0.0, "kmv");
        for fold in pooled_union(chunks, build) {
            prop_assert_eq!(fold.estimate(), serial.estimate());
        }
    }

    #[test]
    fn bloom_laws(chunks in item_chunks()) {
        let build = |items: &[u64]| {
            let mut s = BloomFilter::new(2048, 3, 7);
            for &h in items { s.insert(&h.to_le_bytes()); }
            s
        };
        let all: Vec<u64> = chunks.iter().flatten().copied().collect();
        let probes: Vec<u64> = all.iter().take(8).copied().collect();
        let serial = build(&all);
        let parts: Vec<_> = chunks.iter().map(|c| build(c)).collect();
        let observe = |s: &BloomFilter| {
            let mut o: Vec<f64> = probes
                .iter()
                .map(|h| f64::from(u8::from(s.contains(&h.to_le_bytes()))))
                .collect();
            o.push(s.inserted() as f64);
            o
        };
        assert_laws(&parts, Some(&BloomFilter::new(2048, 3, 7)), &serial, observe, 0.0, "bloom");
        for fold in pooled_union(chunks, build) {
            for &h in &probes {
                prop_assert!(fold.contains(&h.to_le_bytes()));
            }
            prop_assert_eq!(fold.inserted(), serial.inserted());
        }
    }

    #[test]
    fn gk_laws(chunks in float_chunks()) {
        const EPS: f64 = 0.05;
        let build = |xs: &[f64]| {
            let mut s = GkQuantiles::new(EPS);
            for &x in xs { s.insert(x); }
            s
        };
        let all: Vec<f64> = chunks.iter().flatten().copied().collect();
        let lo = all.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = all.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        // GK guarantees rank accuracy; on values this maps through the
        // data's spread. Merged summaries carry ~2× the one-pass rank
        // error, so allow 4·eps of the value range as slack.
        let tol_value = 4.0 * EPS * (hi - lo).max(1e-9);
        let serial = build(&all);
        let parts: Vec<_> = chunks.iter().map(|c| build(c)).collect();
        let observe = |s: &GkQuantiles| {
            [0.1, 0.5, 0.9]
                .iter()
                .map(|&phi| s.query(phi).unwrap_or(0.0) / tol_value)
                .collect::<Vec<_>>()
        };
        assert_laws(&parts, Some(&GkQuantiles::new(EPS)), &serial, observe, 1.0, "gk");
        for fold in pooled_union(chunks, build) {
            prop_assert_eq!(fold.count(), serial.count());
            for phi in [0.1, 0.5, 0.9] {
                let d = (fold.query(phi).unwrap() - serial.query(phi).unwrap()).abs();
                prop_assert!(d <= tol_value, "phi={phi}: off by {d} > {tol_value}");
            }
        }
    }

    #[test]
    fn equi_width_laws(chunks in float_chunks()) {
        let build = |xs: &[f64]| EquiWidthHistogram::build_in_range(xs, 16, -1e5, 1e5);
        let all: Vec<f64> = chunks.iter().flatten().copied().collect();
        let serial = build(&all);
        let parts: Vec<_> = chunks.iter().map(|c| build(c)).collect();
        let observe = |s: &EquiWidthHistogram| {
            vec![
                s.range_count(-1e5, 1e5),
                s.range_sum(-1e5, 0.0),
                s.range_sum(0.0, 1e5),
            ]
        };
        // Shared boundaries: counts add exactly, sums at float precision.
        // No identity check: histograms cannot be built from nothing.
        assert_laws(&parts, None, &serial, observe, 1e-9, "equi-width");
        for fold in pooled_union(chunks, build) {
            prop_assert_eq!(fold.range_count(-1e5, 1e5), serial.range_count(-1e5, 1e5));
        }
    }

    #[test]
    fn equi_depth_laws(xs in prop::collection::vec(-1e5f64..1e5, 8..200)) {
        // Equi-depth boundaries are a global property of the data, so the
        // lawful merges are between summaries sharing them: partials here
        // are copies of one build, and merging scales every count.
        let h = EquiDepthHistogram::build(&xs, 8);
        let parts = vec![h.clone(), h.clone(), h.clone()];
        let observe = |s: &EquiDepthHistogram| {
            vec![s.range_count(-1e5, 1e5), s.quantile(0.5)]
        };
        let mut tripled = h.clone();
        tripled.merge(&h).unwrap();
        tripled.merge(&h).unwrap();
        assert_laws(&parts, None, &tripled, observe, 1e-9, "equi-depth");
        prop_assert!(
            (tripled.range_count(-1e5, 1e5) - 3.0 * h.range_count(-1e5, 1e5)).abs() < 1e-6
        );
        // Quantiles are count-ratio driven: scaling counts preserves them.
        prop_assert!((tripled.quantile(0.5) - h.quantile(0.5)).abs() < 1e-9);
    }

    #[test]
    fn wavelet_laws(signals in prop::collection::vec(
        prop::collection::vec(-1e4f64..1e4, 48..49),
        3..6,
    )) {
        // Wavelet merge adds *signals* (Haar transform linearity), so the
        // union of chunk synopses is the synopsis of the summed signal.
        let build = |xs: &[f64]| WaveletSynopsis::build(xs, 64);
        let summed: Vec<f64> = (0..48)
            .map(|i| signals.iter().map(|s| s[i]).sum())
            .collect();
        let serial = build(&summed);
        let parts: Vec<_> = signals.iter().map(|s| build(s)).collect();
        let observe = |s: &WaveletSynopsis| s.reconstruct();
        let zero = build(&vec![0.0; 48]);
        assert_laws(&parts, Some(&zero), &serial, observe, 1e-9, "wavelet");
        for fold in pooled_union(signals, build) {
            prop_assert!(close(&fold.reconstruct(), &serial.reconstruct(), 1e-9));
        }
    }

    #[test]
    fn moments_laws(chunks in float_chunks()) {
        let build = Moments::from_slice;
        let all: Vec<f64> = chunks.iter().flatten().copied().collect();
        let serial = build(&all);
        let parts: Vec<_> = chunks.iter().map(|c| build(c)).collect();
        let observe = |m: &Moments| {
            vec![m.count() as f64, m.mean(), m.variance(), m.min(), m.max(), m.sum()]
        };
        assert_laws(&parts, Some(&Moments::new()), &serial, observe, 1e-9, "moments");
        for fold in pooled_union(chunks, |c: &[f64]| build(c)) {
            prop_assert_eq!(fold.count(), serial.count());
            prop_assert!((fold.mean() - serial.mean()).abs() <= 1e-9 * (1.0 + serial.mean().abs()));
        }
    }

    #[test]
    fn weighted_moments_laws(chunks in float_chunks()) {
        let build = |xs: &[f64]| {
            let mut m = WeightedMoments::new();
            for (i, &x) in xs.iter().enumerate() {
                m.push(x, 1.0 + (i % 7) as f64);
            }
            m
        };
        // Weighted pushes depend on per-chunk indices, so the "union" is
        // the same multiset of (x, w) pairs: rebuild serial from pairs.
        let mut serial = WeightedMoments::new();
        for c in &chunks {
            for (i, &x) in c.iter().enumerate() {
                serial.push(x, 1.0 + (i % 7) as f64);
            }
        }
        let parts: Vec<_> = chunks.iter().map(|c| build(c)).collect();
        let observe = |m: &WeightedMoments| {
            vec![m.count() as f64, m.weight_sum(), m.mean(), m.variance(), m.weighted_sum()]
        };
        assert_laws(&parts, Some(&WeightedMoments::new()), &serial, observe, 1e-9, "weighted-moments");
    }

    #[test]
    fn table_laws(chunks in prop::collection::vec(
        prop::collection::vec(-1e6f64..1e6, 1..40),
        3..6,
    )) {
        let schema = Schema::new(vec![Field::new("v", DataType::Float64)]);
        let build = |xs: &[f64]| {
            let mut b = TableBuilder::with_block_capacity("t", schema.clone(), 8);
            for &x in xs { b.push_row(&[Value::Float64(x)]).unwrap(); }
            b.finish()
        };
        let all: Vec<f64> = chunks.iter().flatten().copied().collect();
        let serial = build(&all);
        let parts: Vec<_> = chunks.iter().map(|c| build(c)).collect();
        // Tables merge by concatenation: the lawful observable is the row
        // *multiset* (sorted values), under which swapping sides commutes.
        let observe = |t: &Table| {
            let mut vs = t.column_f64("v").unwrap();
            vs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            vs.insert(0, t.row_count() as f64);
            vs
        };
        assert_laws(&parts, Some(&build(&[])), &serial, observe, 0.0, "table");
        // Order-sensitive union: the in-order fold IS the serial table.
        let mut fold = parts[0].clone();
        for p in &parts[1..] {
            Partial::merge(&mut fold, p).unwrap();
        }
        prop_assert_eq!(fold.column_f64("v").unwrap(), serial.column_f64("v").unwrap());
    }

    #[test]
    fn sample_laws(chunks in prop::collection::vec(
        prop::collection::vec(-1e4f64..1e4, 8..40),
        3..6,
    )) {
        let schema = Schema::new(vec![Field::new("v", DataType::Float64)]);
        let build = |xs: &[f64]| -> Sample {
            let mut b = TableBuilder::with_block_capacity("t", schema.clone(), 8);
            for &x in xs { b.push_row(&[Value::Float64(x)]).unwrap(); }
            reservoir_rows(&b.finish(), xs.len() / 2, 11)
        };
        let parts: Vec<_> = chunks.iter().map(|c| build(c)).collect();
        // Disjoint shards: totals and variances add, in any grouping.
        let expected_value: f64 = parts.iter().map(|s| s.estimate_sum("v").unwrap().value).sum();
        let expected_var: f64 = parts.iter().map(|s| s.estimate_sum("v").unwrap().variance).sum();
        let mut fold = parts[0].clone();
        for p in &parts[1..] {
            fold.merge(p).unwrap();
        }
        let observe = |s: &Sample| {
            let e = s.estimate_sum("v").unwrap();
            vec![e.value, e.variance]
        };
        assert_laws(&parts, None, &fold, observe, 1e-9, "sample");
        let est = fold.estimate_sum("v").unwrap();
        prop_assert!((est.value - expected_value).abs() <= 1e-9 * (1.0 + expected_value.abs()));
        prop_assert!((est.variance - expected_var).abs() <= 1e-9 * (1.0 + expected_var.abs()));
    }

    #[test]
    fn agg_state_laws(chunks in float_chunks()) {
        for func in [
            AggFunc::CountStar,
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::CountDistinct,
            AggFunc::VarSamp,
        ] {
            let build = move |xs: &[f64]| {
                let mut s = AggState::new(func);
                for &x in xs { s.update_f64(x); }
                s
            };
            let all: Vec<f64> = chunks.iter().flatten().copied().collect();
            let serial = build(&all);
            let parts: Vec<_> = chunks.iter().map(|c| build(c)).collect();
            let observe = |s: &AggState| {
                vec![match s.finish() {
                    Value::Float64(x) => x,
                    Value::Int64(n) => n as f64,
                    _ => f64::NAN,
                }]
            };
            // MIN/MAX keep the earlier side on ties, so strict
            // commutativity needs distinct extrema; the observable (the
            // extremum's value) is still symmetric.
            assert_laws(
                &parts,
                Some(&AggState::new(func)),
                &serial,
                observe,
                1e-9,
                &format!("agg-state {func}"),
            );
            for fold in pooled_union(chunks.clone(), build) {
                let (a, b) = (observe(&fold), observe(&serial));
                assert!(close(&a, &b, 1e-9), "{func}: union {a:?} vs serial {b:?}");
            }
        }
    }
}
