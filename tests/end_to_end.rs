//! End-to-end integration: the full pipeline — workload generator → star
//! schema → online AQP planner → answers — checked against exact
//! execution for both correctness and the error contract.

use aqp_core::{ErrorSpec, ExecutionPath, OnlineAqp, OnlineConfig};
use aqp_engine::{execute, AggExpr, Query};
use aqp_expr::{col, lit};
use aqp_storage::{Catalog, Value};
use aqp_workload::{build_star_schema, generate_workload, StarScale, WorkloadConfig};

fn star() -> Catalog {
    let catalog = Catalog::new();
    build_star_schema(&catalog, &StarScale::small(), 21).unwrap();
    catalog
}

#[test]
fn generated_workload_answers_match_exact_within_spec() {
    let catalog = star();
    let aqp = OnlineAqp::new(&catalog, OnlineConfig::default());
    let spec = ErrorSpec::new(0.10, 0.95);
    let workload = generate_workload(&WorkloadConfig {
        num_queries: 25,
        seed: 5,
        drift: 0.5,
        join_fraction: 0.4,
        group_by_fraction: 0.4,
    });
    let mut violations = 0u32;
    let mut checked = 0u32;
    for q in &workload {
        let exact = execute(&q.plan, &catalog).unwrap();
        let ans = aqp.answer_plan(&q.plan, &spec, 33).unwrap();
        if ans.report.path == ExecutionPath::Exact {
            continue; // the planner declined; exactness is trivially right
        }
        let key_len = ans.group_by.len();
        for row in exact.rows() {
            let truth = row[key_len].as_f64().unwrap_or(0.0);
            if truth == 0.0 {
                continue;
            }
            // Skip groups absent from the sample (not covered by contract).
            let Some(g) = ans.group(&row[..key_len]) else {
                continue;
            };
            checked += 1;
            if g.estimates[0].relative_error(truth) > spec.relative_error {
                violations += 1;
            }
        }
    }
    assert!(checked > 20, "too few estimates checked: {checked}");
    // 95% confidence jointly; allow a modest violation margin for the
    // per-group tail.
    assert!(
        f64::from(violations) / f64::from(checked) < 0.10,
        "{violations}/{checked} estimates violated the spec"
    );
}

#[test]
fn approximate_answers_touch_less_data() {
    let catalog = star();
    let aqp = OnlineAqp::new(&catalog, OnlineConfig::default());
    let plan = Query::scan("lineitem")
        .aggregate(vec![], vec![AggExpr::sum(col("l_price"), "s")])
        .build();
    let ans = aqp
        .answer_plan(&plan, &ErrorSpec::new(0.08, 0.9), 3)
        .unwrap();
    assert!(matches!(
        ans.report.path,
        ExecutionPath::OnlineBlockSample { .. }
    ));
    assert!(
        ans.report.touched_fraction() < 0.6,
        "approximation should skip data; touched {:.2}",
        ans.report.touched_fraction()
    );
}

#[test]
fn exact_and_aqp_agree_on_group_sets_for_common_groups() {
    let catalog = star();
    let aqp = OnlineAqp::new(&catalog, OnlineConfig::default());
    let plan = Query::scan("lineitem")
        .aggregate(
            vec![(col("l_shipmode"), "mode".to_string())],
            vec![AggExpr::count_star("n")],
        )
        .build();
    let exact = execute(&plan, &catalog).unwrap();
    let ans = aqp
        .answer_plan(&plan, &ErrorSpec::new(0.1, 0.9), 8)
        .unwrap();
    // All 7 ship modes are large; every one must be present and ordered.
    assert_eq!(ans.groups.len(), exact.num_rows());
    for (row, g) in exact.rows().iter().zip(&ans.groups) {
        assert_eq!(row[0], g.key[0], "group order must be deterministic");
    }
}

#[test]
fn intervals_cover_truth_at_nominal_rate() {
    let catalog = star();
    let aqp = OnlineAqp::new(&catalog, OnlineConfig::default());
    let plan = Query::scan("lineitem")
        .filter(col("l_sel").lt(lit(0.4)))
        .aggregate(vec![], vec![AggExpr::avg(col("l_price"), "a")])
        .build();
    let truth = execute(&plan, &catalog).unwrap().rows()[0][0]
        .as_f64()
        .unwrap();
    let mut covered = 0;
    let trials = 25;
    for seed in 0..trials {
        let ans = aqp
            .answer_plan(&plan, &ErrorSpec::new(0.05, 0.9), seed)
            .unwrap();
        if let ExecutionPath::OnlineBlockSample { .. } = ans.report.path {
            if ans.global().intervals[0].contains(truth) {
                covered += 1;
            }
        } else {
            covered += 1; // exact trivially covers
        }
    }
    assert!(covered >= 22, "coverage {covered}/{trials} below nominal");
}

#[test]
fn nonlinear_aggregates_stay_exact_and_correct() {
    let catalog = star();
    let aqp = OnlineAqp::new(&catalog, OnlineConfig::default());
    let plan = Query::scan("lineitem")
        .aggregate(
            vec![],
            vec![
                AggExpr::min(col("l_price"), "lo"),
                AggExpr::max(col("l_price"), "hi"),
                AggExpr::count_distinct(col("l_shipmode"), "modes"),
            ],
        )
        .build();
    let exact = execute(&plan, &catalog).unwrap();
    let ans = aqp.answer_plan(&plan, &ErrorSpec::default(), 2).unwrap();
    assert_eq!(ans.report.path, ExecutionPath::Exact);
    assert_eq!(
        ans.global().estimates[2].value,
        exact.rows()[0][2].as_f64().unwrap()
    );
    assert_eq!(exact.rows()[0][2], Value::Int64(7)); // 7 ship modes
}

#[test]
fn multi_aggregate_queries_split_confidence() {
    let catalog = star();
    let aqp = OnlineAqp::new(&catalog, OnlineConfig::default());
    let plan = Query::scan("lineitem")
        .aggregate(
            vec![],
            vec![
                AggExpr::sum(col("l_price"), "s"),
                AggExpr::count_star("n"),
                AggExpr::avg(col("l_quantity"), "q"),
            ],
        )
        .build();
    let exact = execute(&plan, &catalog).unwrap();
    let ans = aqp
        .answer_plan(&plan, &ErrorSpec::new(0.05, 0.95), 6)
        .unwrap();
    for (i, alias) in ["s", "n", "q"].iter().enumerate() {
        let truth = exact.rows()[0][i].as_f64().unwrap();
        let est = ans.scalar_estimate(alias).unwrap();
        assert!(
            est.relative_error(truth) < 0.05,
            "{alias}: rel err {}",
            est.relative_error(truth)
        );
    }
}
