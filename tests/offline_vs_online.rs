//! Offline synopses vs online sampling on the same queries: both answer,
//! with the cost/coverage/maintenance profile NSB attributes to each camp.

use aqp_core::{
    AggQuery, AggSpec, ErrorSpec, ExecutionPath, LinearAgg, OfflineStore, OnlineAqp, OnlineConfig,
};
use aqp_engine::{execute, AggExpr, Query};
use aqp_expr::{col, lit};
use aqp_storage::{Catalog, Value};
use aqp_workload::skewed_table;

fn setup() -> (Catalog, OfflineStore) {
    let catalog = Catalog::new();
    catalog
        .register(skewed_table("t", 200_000, 60, 1.1, 512, 19))
        .unwrap();
    let store = OfflineStore::new();
    store
        .build_stratified(&catalog, "t", "g", 15_000, 3)
        .unwrap();
    (catalog, store)
}

fn sum_by_g_query() -> AggQuery {
    AggQuery {
        fact_table: "t".into(),
        joins: vec![],
        predicate: None,
        group_by: vec![(col("g"), "g".into())],
        aggregates: vec![AggSpec {
            kind: LinearAgg::Sum,
            expr: col("v"),
            alias: "s".into(),
        }],
    }
}

#[test]
fn offline_covers_groups_online_misses() {
    let (catalog, store) = setup();
    let q = sum_by_g_query();
    let spec = ErrorSpec::new(0.1, 0.9);
    let exact = execute(&q.to_plan(), &catalog).unwrap();
    let n_groups = exact.num_rows();

    // Offline: congressional stratification guarantees every group.
    let offline_ans = store.answer(&q, &spec).unwrap();
    assert_eq!(offline_ans.groups.len(), n_groups);

    // Online: uniform block sampling can miss the rarest Zipf groups.
    let aqp = OnlineAqp::new(&catalog, OnlineConfig::default());
    let online_ans = aqp.answer(&q, &spec, 29).unwrap();
    match online_ans.report.path {
        ExecutionPath::OnlineBlockSample { .. } => {
            assert!(
                online_ans.groups.len() <= n_groups,
                "online can't invent groups"
            );
        }
        // If the planner declined (rare groups force a high rate), that
        // *is* the generality limit showing up — also acceptable.
        ExecutionPath::Exact => {}
        ref other => panic!("unexpected path {other:?}"),
    }
}

#[test]
fn offline_is_cheaper_online_is_fresher() {
    let (catalog, store) = setup();
    let q = sum_by_g_query();
    let spec = ErrorSpec::new(0.1, 0.9);

    let offline_ans = store.answer(&q, &spec).unwrap();
    let aqp = OnlineAqp::new(&catalog, OnlineConfig::default());
    let online_ans = aqp.answer(&q, &spec, 7).unwrap();

    // Offline touches only the synopsis rows.
    assert!(offline_ans.report.rows_touched <= 16_000);
    // Online touches more (pilot + final) but is never stale.
    assert!(online_ans.report.rows_touched >= offline_ans.report.rows_touched);

    // Now the data changes: online adapts, offline goes stale.
    catalog.replace(skewed_table("t", 300_000, 60, 1.1, 512, 77));
    assert!(store.staleness(&catalog, "t").unwrap() > 0.4);

    let truth_after: f64 = catalog
        .get("t")
        .unwrap()
        .column_f64("v")
        .unwrap()
        .iter()
        .sum();
    let mut global = sum_by_g_query();
    global.group_by = vec![];
    let online_after = aqp.answer(&global, &spec, 13).unwrap();
    let online_err = online_after
        .scalar_estimate("s")
        .unwrap()
        .relative_error(truth_after);
    let offline_after = store.answer(&global, &spec).unwrap();
    let offline_err = offline_after
        .scalar_estimate("s")
        .unwrap()
        .relative_error(truth_after);
    assert!(online_err < 0.15, "online err {online_err}");
    assert!(
        offline_err > 2.0 * online_err,
        "stale offline ({offline_err}) should be far worse than online ({online_err})"
    );
}

#[test]
fn both_paths_agree_with_exact_on_big_groups() {
    let (catalog, store) = setup();
    let q = sum_by_g_query();
    let spec = ErrorSpec::new(0.1, 0.9);
    let exact = execute(&q.to_plan(), &catalog).unwrap();
    let offline_ans = store.answer(&q, &spec).unwrap();
    let aqp = OnlineAqp::new(&catalog, OnlineConfig::default());
    let online_ans = aqp.answer(&q, &spec, 41).unwrap();

    // Check the three biggest groups (0, 1, 2 under Zipf).
    for row in exact.rows().iter().take(3) {
        let truth = row[1].as_f64().unwrap();
        let off = offline_ans.group(&row[..1]).expect("offline covers all");
        assert!(
            off.estimates[0].relative_error(truth) < 0.2,
            "offline group {:?} err {}",
            row[0],
            off.estimates[0].relative_error(truth)
        );
        if let Some(on) = online_ans.group(&row[..1]) {
            assert!(
                on.estimates[0].relative_error(truth) < 0.2,
                "online group {:?} err {}",
                row[0],
                on.estimates[0].relative_error(truth)
            );
        }
    }
}

#[test]
fn offline_serves_predicates_it_never_anticipated() {
    // Stratified samples retain real rows, so arbitrary predicates still
    // work (unlike sketches) — generality *within* the single-table scope.
    let (catalog, store) = setup();
    let mut q = sum_by_g_query();
    q.group_by = vec![];
    q.predicate = Some(col("sel").lt(lit(0.25)).and(col("v").gt(lit(5.0))));
    let spec = ErrorSpec::new(0.1, 0.9);
    let ans = store.answer(&q, &spec).unwrap();
    let exact = execute(&q.to_plan(), &catalog).unwrap();
    let truth = exact.rows()[0][0].as_f64().unwrap();
    let err = ans.scalar_estimate("s").unwrap().relative_error(truth);
    assert!(err < 0.2, "drifted-predicate error {err}");
}

#[test]
fn sketch_synopses_answer_their_one_question_instantly() {
    let (catalog, store) = setup();
    store.build_distinct(&catalog, "t", "g", 12).unwrap();
    store.build_quantiles(&catalog, "t", "v", 0.01).unwrap();

    let d = store.approx_count_distinct("t", "g").unwrap();
    assert!((d - 60.0).abs() < 6.0, "distinct {d}");

    let med = store.approx_quantile("t", "v", 0.5).unwrap();
    let mut vs = catalog.get("t").unwrap().column_f64("v").unwrap();
    vs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let truth = vs[vs.len() / 2];
    assert!(
        (med - truth).abs() / truth < 0.05,
        "median {med} vs {truth}"
    );

    // But the sketch cannot apply a predicate — that query must go
    // elsewhere (the COUNT DISTINCT WHERE … case NSB calls out).
    let exact_filtered = execute(
        &Query::scan("t")
            .filter(col("sel").lt(lit(0.001)))
            .aggregate(vec![], vec![AggExpr::count_distinct(col("g"), "d")])
            .build(),
        &catalog,
    )
    .unwrap();
    match exact_filtered.scalar() {
        Value::Int64(n) => assert!(n < 60, "filtered distinct should be smaller"),
        other => panic!("unexpected {other:?}"),
    }
}
