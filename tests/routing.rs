//! Golden tests for the `AqpSession` routing policy: each representative
//! query shape must be served by the expected family, with the full
//! deliberation recorded in the answer's `RoutingDecision` — plus a
//! property test asserting the routed answer is identical to calling the
//! winning technique directly with the same seed.

use proptest::prelude::*;

use aqp_core::{
    AggQuery, AqpSession, Attempt, CandidateOutcome, DeclineReason, ErrorSpec, ExecutionPath,
    OfflineTechnique, OlaTechnique, OnlineAqp, RewriteTechnique, SessionConfig, Technique,
    TechniqueKind,
};
use aqp_engine::{AggExpr, LogicalPlan, Query};
use aqp_expr::{col, lit};
use aqp_storage::Catalog;
use aqp_workload::{skewed_table, uniform_table};

fn grouped_sum_plan(table: &str) -> LogicalPlan {
    Query::scan(table)
        .aggregate(
            vec![(col("g"), "g".to_string())],
            vec![AggExpr::sum(col("v"), "s")],
        )
        .build()
}

/// A fresh, matching stratified synopsis outranks everything: the answer
/// must come from the offline store without touching base data.
#[test]
fn fresh_synopsis_wins() {
    let c = Catalog::new();
    c.register(skewed_table("t", 50_000, 20, 1.0, 256, 3))
        .unwrap();
    let session = AqpSession::new(&c);
    session
        .offline()
        .build_stratified(&c, "t", "g", 5_000, 1)
        .unwrap();
    let ans = session
        .answer(&grouped_sum_plan("t"), &ErrorSpec::new(0.1, 0.9), 7)
        .unwrap();
    let routing = ans
        .report
        .routing
        .as_ref()
        .expect("routed answers carry a decision");
    assert_eq!(routing.winner, TechniqueKind::OfflineSynopsis);
    assert!(matches!(
        ans.report.path,
        ExecutionPath::OfflineSynopsis { .. }
    ));
    assert_eq!(
        routing.outcome(TechniqueKind::OfflineSynopsis),
        Some(&CandidateOutcome::Chosen)
    );
    // Later candidates were eligible but never attempted.
    assert_eq!(
        routing.outcome(TechniqueKind::OnlineSampling),
        Some(&CandidateOutcome::NotReached)
    );
    assert_eq!(
        routing.outcome(TechniqueKind::Exact),
        Some(&CandidateOutcome::NotReached)
    );
    // Synopsis-only answering touches far less than the table.
    assert!(ans.report.rows_scanned < 10_000);
}

/// When the base table grows past the freshness threshold the synopsis is
/// disqualified a-priori and routing falls to online sampling.
#[test]
fn stale_synopsis_falls_to_online_sampling() {
    let c = Catalog::new();
    c.register(skewed_table("t", 50_000, 20, 1.0, 256, 3))
        .unwrap();
    let session = AqpSession::new(&c);
    session
        .offline()
        .build_stratified(&c, "t", "g", 5_000, 1)
        .unwrap();
    // Replace with 50% more rows: staleness 0.5 > max_staleness 0.1.
    c.replace(skewed_table("t", 75_000, 20, 1.0, 256, 9));
    // Loose enough that pilot-planned sampling accepts despite group skew.
    let ans = session
        .answer(&grouped_sum_plan("t"), &ErrorSpec::new(0.5, 0.9), 7)
        .unwrap();
    let routing = ans.report.routing.as_ref().unwrap();
    assert_eq!(routing.winner, TechniqueKind::OnlineSampling);
    assert!(matches!(
        routing.outcome(TechniqueKind::OfflineSynopsis),
        Some(CandidateOutcome::StaticallyIneligible(
            DeclineReason::StaleSynopsis { .. }
        ))
    ));
    assert!(matches!(
        ans.report.path,
        ExecutionPath::OnlineBlockSample { .. }
    ));
}

/// A hyper-selective grouped query defeats every approximate family — the
/// online sampler declines at runtime, OLA cannot group, the rewrite's
/// per-group support collapses — and the router lands on exact, with the
/// failed attempts' costs charged to the answer.
#[test]
fn small_group_query_falls_through_to_exact() {
    let c = Catalog::new();
    c.register(skewed_table("t", 100_000, 10, 1.0, 256, 5))
        .unwrap();
    let session = AqpSession::new(&c);
    let plan = Query::scan("t")
        .filter(col("sel").lt(lit(0.0005)))
        .aggregate(
            vec![(col("g"), "g".to_string())],
            vec![AggExpr::sum(col("v"), "s")],
        )
        .build();
    let ans = session
        .answer(&plan, &ErrorSpec::new(0.01, 0.95), 2)
        .unwrap();
    let routing = ans.report.routing.as_ref().unwrap();
    assert_eq!(routing.winner, TechniqueKind::Exact);
    assert_eq!(ans.report.path, ExecutionPath::Exact);
    assert!(matches!(
        routing.outcome(TechniqueKind::OfflineSynopsis),
        Some(CandidateOutcome::StaticallyIneligible(
            DeclineReason::NoSynopsis { .. }
        ))
    ));
    assert!(matches!(
        routing.outcome(TechniqueKind::OnlineSampling),
        Some(CandidateOutcome::DeclinedAtRuntime(_))
    ));
    assert!(matches!(
        routing.outcome(TechniqueKind::OnlineAggregation),
        Some(CandidateOutcome::StaticallyIneligible(
            DeclineReason::GroupByUnsupported
        ))
    ));
    assert!(matches!(
        routing.outcome(TechniqueKind::MiddlewareRewrite),
        Some(CandidateOutcome::DeclinedAtRuntime(
            DeclineReason::InsufficientSupport { .. }
        ))
    ));
    // The failed pilot + rewrite sample are charged on top of the exact
    // scan's own rows (`rows_touched`; with zone-map pruning the winning
    // scan can touch far less than the population).
    assert!(ans.report.rows_scanned > ans.report.rows_touched);
}

/// A plan outside the normalized star shape is ineligible everywhere and
/// runs exactly — but the decision still names every candidate.
#[test]
fn unsupported_shape_routes_to_exact() {
    let c = Catalog::new();
    c.register(uniform_table("t", 20_000, 256, 1)).unwrap();
    let session = AqpSession::new(&c);
    let plan = Query::scan("t")
        .aggregate(vec![], vec![AggExpr::min(col("v"), "m")])
        .build();
    let ans = session
        .answer(&plan, &ErrorSpec::new(0.05, 0.95), 1)
        .unwrap();
    let routing = ans.report.routing.as_ref().unwrap();
    assert_eq!(routing.winner, TechniqueKind::Exact);
    assert_eq!(routing.candidates.len(), 5);
    for cand in &routing.candidates {
        if cand.kind == TechniqueKind::Exact {
            assert_eq!(cand.outcome, CandidateOutcome::Chosen);
        } else {
            assert!(matches!(
                cand.outcome,
                CandidateOutcome::StaticallyIneligible(DeclineReason::UnsupportedShape { .. })
            ));
        }
    }
    // Satellite: the exact path now carries a real rows_scanned.
    assert_eq!(ans.report.rows_scanned, 20_000);
}

/// On a table too small for the two-phase design, progressive aggregation
/// picks up the ungrouped single-column shapes.
#[test]
fn tiny_table_routes_to_online_aggregation() {
    let c = Catalog::new();
    // 2 blocks < the online sampler's 4-block minimum.
    c.register(uniform_table("t", 400, 256, 1)).unwrap();
    let session = AqpSession::new(&c);
    let plan = Query::scan("t")
        .aggregate(vec![], vec![AggExpr::sum(col("v"), "s")])
        .build();
    let ans = session.answer(&plan, &ErrorSpec::new(0.1, 0.9), 3).unwrap();
    let routing = ans.report.routing.as_ref().unwrap();
    assert!(matches!(
        routing.outcome(TechniqueKind::OnlineSampling),
        Some(CandidateOutcome::StaticallyIneligible(
            DeclineReason::TableTooSmall { .. }
        ))
    ));
    assert_eq!(routing.winner, TechniqueKind::OnlineAggregation);
    assert!(matches!(
        ans.report.path,
        ExecutionPath::OlaProgressive { .. }
    ));
}

/// The probe must predict the same winner as answering when no runtime
/// decline intervenes, and it must touch no base data (cheap by contract).
#[test]
fn probe_agrees_with_answer_on_clean_paths() {
    let c = Catalog::new();
    c.register(skewed_table("t", 50_000, 20, 1.0, 256, 3))
        .unwrap();
    let session = AqpSession::new(&c);
    session
        .offline()
        .build_stratified(&c, "t", "g", 5_000, 1)
        .unwrap();
    let plan = grouped_sum_plan("t");
    let spec = ErrorSpec::new(0.1, 0.9);
    let probed = session.probe(&plan, &spec);
    let answered = session.answer(&plan, &spec, 7).unwrap();
    assert_eq!(probed.winner, answered.report.routing.unwrap().winner);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Routing adds deliberation, not perturbation: the routed answer's
    /// groups and estimates are bit-for-bit those of the winning technique
    /// called directly with the same seed.
    #[test]
    fn routed_answer_equals_direct_winner(
        seed in any::<u64>(),
        rel_err in 0.02f64..0.2,
        threshold in 0.3f64..0.9,
        with_synopsis in any::<bool>(),
    ) {
        let c = Catalog::new();
        c.register(skewed_table("t", 30_000, 10, 1.0, 128, 11)).unwrap();
        let config = SessionConfig::default();
        let session = AqpSession::with_config(&c, config);
        if with_synopsis {
            session.offline().build_stratified(&c, "t", "g", 3_000, 5).unwrap();
        }
        let plan = Query::scan("t")
            .filter(col("sel").lt(lit(threshold)))
            .aggregate(
                vec![(col("g"), "g".to_string())],
                vec![AggExpr::sum(col("v"), "s")],
            )
            .build();
        let spec = ErrorSpec::new(rel_err, 0.9);
        let routed = session.answer(&plan, &spec, seed).unwrap();
        let winner = routed.report.routing.as_ref().unwrap().winner;
        let query = AggQuery::from_plan(&plan).expect("normalized shape");

        // Re-run the winning family directly, same seed, same knobs.
        let direct = match winner {
            TechniqueKind::OfflineSynopsis => {
                OfflineTechnique::new(session.offline(), &c, config.max_staleness)
                    .answer(&query, &spec, seed).unwrap()
            }
            TechniqueKind::OnlineSampling => {
                // Qualified: the inherent `OnlineAqp::answer` (which falls
                // back to exact) shadows the trait method.
                Technique::answer(&OnlineAqp::new(&c, config.online), &query, &spec, seed).unwrap()
            }
            TechniqueKind::OnlineAggregation => {
                OlaTechnique::new(&c).answer(&query, &spec, seed).unwrap()
            }
            TechniqueKind::MiddlewareRewrite => {
                RewriteTechnique::new(&c, config.rewrite_rate, config.rewrite_min_group_support)
                    .answer(&query, &spec, seed).unwrap()
            }
            TechniqueKind::Exact => {
                // The chain fell all the way through: nothing to compare
                // against beyond exactness itself.
                prop_assert_eq!(routed.report.path, ExecutionPath::Exact);
                return Ok(());
            }
        };
        let Attempt::Answered(direct) = direct else {
            panic!("winner declined on replay with the same seed");
        };
        prop_assert_eq!(&routed.report.path, &direct.report.path);
        prop_assert_eq!(routed.groups.len(), direct.groups.len());
        for (r, d) in routed.groups.iter().zip(&direct.groups) {
            prop_assert_eq!(&r.key, &d.key);
            for (re, de) in r.estimates.iter().zip(&d.estimates) {
                prop_assert_eq!(re.value, de.value);
                prop_assert_eq!(re.variance, de.variance);
            }
        }
    }
}
