//! Equivalence tests for the typed kernel layer (`aqp_engine::kernel`):
//! the fused zone-map → selection-mask → typed-accumulator path must be a
//! pure optimization. For every plan it covers, its rows are **bit-for-bit**
//! those of the scalar `eval` path — with NULLs in both measures and group
//! keys, with zone-map pruning on or off, at every thread count.
//!
//! Two structural invariants ride along:
//!
//! * `blocks_scanned + blocks_pruned` is constant across pruning on/off
//!   (pruning relabels blocks, it never invents or loses them), and
//!   `rows_scanned` never grows when pruning turns on;
//! * per-config stats are identical across thread counts (morsel
//!   boundaries are data-dependent, never scheduling-dependent).

use proptest::prelude::*;

use aqp_engine::{execute_with, AggExpr, ExecOptions, LogicalPlan, Query};
use aqp_expr::{col, lit};
use aqp_storage::{Catalog, DataType, Field, Schema, TableBuilder, Value};

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Table `t(k, v, s)`: nullable INT64 group key (NULL every 11th row),
/// nullable integer-valued FLOAT64 measure (NULL every 7th row), and a
/// clustered FLOAT64 selector so zone maps actually prune some blocks.
fn catalog_from(xs: &[i64], block_cap: usize, keys: i64) -> Catalog {
    let schema = Schema::new(vec![
        Field::nullable("k", DataType::Int64),
        Field::nullable("v", DataType::Float64),
        Field::new("s", DataType::Float64),
    ]);
    let mut t = TableBuilder::with_block_capacity("t", schema, block_cap);
    for (i, &x) in xs.iter().enumerate() {
        let k = if i % 11 == 3 {
            Value::Null
        } else {
            Value::Int64(x.rem_euclid(keys))
        };
        let v = if i % 7 == 5 {
            Value::Null
        } else {
            Value::Float64(x as f64)
        };
        // Clustered: long runs share a selector value, so whole blocks
        // fall outside the filter range and the zone map can prove it.
        let s = (i / 256) as f64;
        t.push_row(&[k, v, Value::Float64(s)]).unwrap();
    }
    let c = Catalog::new();
    c.register(t.finish()).unwrap();
    c
}

/// Every (kernels, pruning, threads) configuration, baseline first.
fn configs() -> Vec<ExecOptions> {
    let mut out = Vec::new();
    for kernels in [false, true] {
        for pruning in [false, true] {
            for threads in THREADS {
                out.push(
                    ExecOptions::with_threads(threads)
                        .with_kernels(kernels)
                        .with_zone_pruning(pruning),
                );
            }
        }
    }
    out
}

/// Runs `plan` under every configuration and asserts the full matrix of
/// equivalences against the scalar serial baseline.
fn assert_equivalent(plan: &LogicalPlan, c: &Catalog) -> Result<(), TestCaseError> {
    let baseline = execute_with(
        plan,
        c,
        ExecOptions::serial()
            .with_kernels(false)
            .with_zone_pruning(false),
    )
    .unwrap();
    let total_blocks = {
        let s = baseline.stats();
        s.blocks_scanned + s.blocks_pruned
    };
    for opts in configs() {
        let run = execute_with(plan, c, opts).unwrap();
        let tag = format!(
            "kernels={} pruning={} threads={}",
            opts.kernels, opts.zone_pruning, opts.threads
        );
        // Bit-for-bit rows: Value equality is exact (Float64 compares by
        // bits through the integer-valued domain used here).
        prop_assert_eq!(baseline.rows(), run.rows(), "rows diverge at {}", tag);
        prop_assert_eq!(
            baseline.schema(),
            run.schema(),
            "schema diverges at {}",
            tag
        );
        let s = run.stats();
        prop_assert_eq!(
            s.blocks_scanned + s.blocks_pruned,
            total_blocks,
            "block accounting leaks at {}",
            tag
        );
        prop_assert!(
            s.rows_scanned <= baseline.stats().rows_scanned,
            "pruning grew rows_scanned at {}",
            tag
        );
        if !opts.zone_pruning {
            prop_assert_eq!(s.blocks_pruned, 0, "pruned without pruning at {}", tag);
        }
        // Same config, different thread counts: stats must be identical.
        let serial_same = execute_with(
            plan,
            c,
            ExecOptions::serial()
                .with_kernels(opts.kernels)
                .with_zone_pruning(opts.zone_pruning),
        )
        .unwrap();
        prop_assert_eq!(serial_same.stats(), run.stats(), "stats diverge at {}", tag);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Filtered grouped aggregation over a NULL-bearing key and measure:
    /// the kernel's null-group slot, validity-aware accumulators, and
    /// pruning-independent morsel tree all reproduce the scalar fold.
    #[test]
    fn grouped_kernel_matches_scalar_bitwise(
        xs in prop::collection::vec(-1_000_000i64..1_000_000, 4200..5200),
        cap in 64usize..256,
        hi in 3.0f64..14.0,
    ) {
        let c = catalog_from(&xs, cap, 23);
        let plan = Query::scan("t")
            .filter(col("s").lt(lit(hi)))
            .aggregate(
                vec![(col("k"), "k".to_string())],
                vec![
                    AggExpr::count_star("n"),
                    AggExpr::sum(col("v"), "sv"),
                    AggExpr::avg(col("v"), "av"),
                    AggExpr::min(col("v"), "lo"),
                    AggExpr::max(col("v"), "hi"),
                ],
            )
            .build();
        assert_equivalent(&plan, &c)?;
    }

    /// Global aggregates over arithmetic on the measure (wrapping INT64,
    /// FLOAT64 division): the kernel's typed expression evaluation must
    /// match `eval`'s value semantics exactly.
    #[test]
    fn global_kernel_matches_scalar_bitwise(
        xs in prop::collection::vec(-1_000_000i64..1_000_000, 4200..5200),
        cap in 64usize..256,
        lo in 1.0f64..10.0,
    ) {
        let c = catalog_from(&xs, cap, 13);
        let plan = Query::scan("t")
            .filter(col("s").gt_eq(lit(lo)))
            .aggregate(
                vec![],
                vec![
                    AggExpr::count_star("n"),
                    AggExpr::sum(col("v").mul(lit(2.0)), "s2"),
                    AggExpr::min(col("k").add(lit(1i64)), "lo"),
                    AggExpr::max(col("v"), "hi"),
                ],
            )
            .build();
        assert_equivalent(&plan, &c)?;
    }

    /// Compound predicates (AND/OR chains over both columns) compose into
    /// one fused selection mask; an uncoverable shape in the same plan
    /// family must fall back without changing results.
    #[test]
    fn predicate_composition_matches_scalar(
        xs in prop::collection::vec(-1_000_000i64..1_000_000, 4200..5200),
        cap in 64usize..256,
        mid in 4.0f64..12.0,
    ) {
        let c = catalog_from(&xs, cap, 19);
        let covered = Query::scan("t")
            .filter(col("s").lt(lit(mid)).or(col("s").gt_eq(lit(mid + 3.0))))
            .filter(col("v").gt(lit(-900_000.0)))
            .aggregate(
                vec![(col("k"), "k".to_string())],
                vec![AggExpr::sum(col("v"), "sv"), AggExpr::count_star("n")],
            )
            .build();
        assert_equivalent(&covered, &c)?;
        // NOT does not commute with three-valued masks: the kernel must
        // decline and the scalar fallback must serve the same answer.
        let fallback = Query::scan("t")
            .filter(col("s").lt(lit(mid)).not())
            .aggregate(
                vec![(col("k"), "k".to_string())],
                vec![AggExpr::sum(col("v"), "sv"), AggExpr::count_star("n")],
            )
            .build();
        assert_equivalent(&fallback, &c)?;
    }
}

/// Zone maps must actually fire on the clustered selector — otherwise the
/// pruning half of the proptests above is vacuously true.
#[test]
fn clustered_selector_prunes_blocks() {
    let xs: Vec<i64> = (0..20_000).map(|i| (i * 7919) % 100_000 - 50_000).collect();
    let c = catalog_from(&xs, 128, 23);
    let plan = Query::scan("t")
        .filter(col("s").lt(lit(10.0)))
        .aggregate(vec![], vec![AggExpr::sum(col("v"), "sv")])
        .build();
    let pruned = execute_with(&plan, &c, ExecOptions::serial()).unwrap();
    assert!(
        pruned.stats().blocks_pruned > 0,
        "expected zone maps to prune blocks on a clustered selector"
    );
    let unpruned = execute_with(&plan, &c, ExecOptions::serial().with_zone_pruning(false)).unwrap();
    assert_eq!(pruned.rows(), unpruned.rows());
    assert_eq!(unpruned.stats().blocks_pruned, 0);
    assert_eq!(
        pruned.stats().blocks_scanned + pruned.stats().blocks_pruned,
        unpruned.stats().blocks_scanned
    );
}
