//! Property-based tests for cross-crate invariants: estimator identities,
//! sketch merge semantics, and sampling-design consistency, driven by
//! proptest-generated data.

use proptest::prelude::*;

use aqp_sampling::{bernoulli_blocks, bernoulli_rows, reservoir_rows};
use aqp_sketch::{CountMinSketch, GkQuantiles, HyperLogLog, KmvSketch};
use aqp_stats::Moments;
use aqp_storage::{DataType, Field, Schema, Table, TableBuilder, Value};

fn table_from(values: &[f64], block_cap: usize) -> Table {
    let schema = Schema::new(vec![Field::new("v", DataType::Float64)]);
    let mut b = TableBuilder::with_block_capacity("p", schema, block_cap);
    for &v in values {
        b.push_row(&[Value::Float64(v)]).unwrap();
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sampling at rate 1 is the identity: the estimate equals the truth
    /// with zero variance, for both row and block designs.
    #[test]
    fn full_rate_sampling_is_exact(
        values in prop::collection::vec(-1e6f64..1e6, 1..300),
        cap in 1usize..64,
        seed in any::<u64>(),
    ) {
        let t = table_from(&values, cap);
        let truth: f64 = values.iter().sum();
        for sample in [bernoulli_rows(&t, 1.0, seed), bernoulli_blocks(&t, 1.0, seed)] {
            let e = sample.estimate_sum("v").unwrap();
            prop_assert!((e.value - truth).abs() <= 1e-9 * truth.abs().max(1.0));
            prop_assert_eq!(e.variance, 0.0);
        }
    }

    /// A reservoir of size ≥ population is a census: exact estimates.
    #[test]
    fn oversized_reservoir_is_census(
        values in prop::collection::vec(-1e5f64..1e5, 1..200),
        seed in any::<u64>(),
    ) {
        let t = table_from(&values, 32);
        let s = reservoir_rows(&t, values.len() + 10, seed);
        let truth: f64 = values.iter().sum();
        let e = s.estimate_sum("v").unwrap();
        prop_assert!((e.value - truth).abs() <= 1e-9 * truth.abs().max(1.0));
        prop_assert_eq!(e.variance, 0.0);
    }

    /// Moments merge is associative-equivalent to sequential accumulation.
    #[test]
    fn moments_merge_consistency(
        xs in prop::collection::vec(-1e6f64..1e6, 2..400),
        split in 1usize..399,
    ) {
        let split = split.min(xs.len() - 1);
        let whole = Moments::from_slice(&xs);
        let merged = Moments::from_slice(&xs[..split]).merge(&Moments::from_slice(&xs[split..]));
        prop_assert!((whole.mean() - merged.mean()).abs() < 1e-6 * whole.mean().abs().max(1.0));
        prop_assert!((whole.variance() - merged.variance()).abs()
            < 1e-6 * whole.variance().abs().max(1.0));
        prop_assert_eq!(whole.count(), merged.count());
    }

    /// Count-Min never underestimates, and merging two sketches equals
    /// sketching the concatenated stream.
    #[test]
    fn count_min_invariants(
        items in prop::collection::vec(0u64..64, 1..500),
    ) {
        let mut whole = CountMinSketch::new(32, 4, 5);
        let mut left = CountMinSketch::new(32, 4, 5);
        let mut right = CountMinSketch::new(32, 4, 5);
        let mut truth = std::collections::HashMap::new();
        for (i, &item) in items.iter().enumerate() {
            whole.insert(&item.to_le_bytes(), 1);
            if i % 2 == 0 {
                left.insert(&item.to_le_bytes(), 1);
            } else {
                right.insert(&item.to_le_bytes(), 1);
            }
            *truth.entry(item).or_insert(0u64) += 1;
        }
        left.merge(&right).unwrap();
        prop_assert_eq!(&left, &whole);
        for (&item, &count) in &truth {
            prop_assert!(whole.estimate(&item.to_le_bytes()) >= count);
        }
    }

    /// HLL merge is a set union: merging with a subset changes nothing,
    /// and merge order does not matter.
    #[test]
    fn hll_merge_semantics(
        a in prop::collection::vec(any::<u64>(), 1..300),
        b in prop::collection::vec(any::<u64>(), 1..300),
    ) {
        let sketch_of = |items: &[u64]| {
            let mut h = HyperLogLog::new(10);
            for &x in items {
                h.insert(&x.to_le_bytes());
            }
            h
        };
        let ha = sketch_of(&a);
        let hb = sketch_of(&b);
        let mut ab = ha.clone();
        ab.merge(&hb).unwrap();
        let mut ba = hb.clone();
        ba.merge(&ha).unwrap();
        prop_assert_eq!(&ab, &ba);
        let mut self_merge = ha.clone();
        self_merge.merge(&ha).unwrap();
        prop_assert_eq!(&self_merge, &ha);
    }

    /// KMV is insertion-order independent.
    #[test]
    fn kmv_order_independent(
        mut items in prop::collection::vec(any::<u64>(), 1..400),
    ) {
        let forward = {
            let mut s = KmvSketch::new(64);
            for &x in &items {
                s.insert(&x.to_le_bytes());
            }
            s
        };
        items.reverse();
        let backward = {
            let mut s = KmvSketch::new(64);
            for &x in &items {
                s.insert(&x.to_le_bytes());
            }
            s
        };
        prop_assert_eq!(forward, backward);
    }

    /// GK quantiles are sandwiched by the exact order statistics at
    /// rank ± 2εn.
    #[test]
    fn gk_rank_error_bounded(
        values in prop::collection::vec(-1e9f64..1e9, 20..800),
        phi in 0.05f64..0.95,
    ) {
        let mut gk = GkQuantiles::new(0.05);
        for &v in &values {
            gk.insert(v);
        }
        let q = gk.query(phi).unwrap();
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = sorted.len() as f64;
        let margin = (2.0 * 0.05 * n).ceil() as usize + 1;
        let target = (phi * n).ceil() as usize;
        let lo_rank = target.saturating_sub(margin + 1);
        let hi_rank = (target + margin).min(sorted.len() - 1);
        prop_assert!(
            q >= sorted[lo_rank] && q <= sorted[hi_rank],
            "quantile {} outside sandwich [{}, {}]",
            q, sorted[lo_rank], sorted[hi_rank]
        );
    }

    /// The HT count estimate is scale-consistent: estimated population
    /// count from a row sample stays within Chernoff-style bounds.
    #[test]
    fn ht_count_concentrates(
        n in 2_000usize..6_000,
        seed in any::<u64>(),
    ) {
        let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let t = table_from(&values, 128);
        let s = bernoulli_rows(&t, 0.2, seed);
        let est = s.estimate_count();
        // 0.2-rate Bernoulli on ≥2000 rows: 6 sigma ≈ 6·sqrt(n·0.8/0.2).
        let sigma = (n as f64 * (1.0 - 0.2) / 0.2).sqrt();
        prop_assert!(
            (est.value - n as f64).abs() < 6.0 * sigma,
            "count estimate {} vs {} (sigma {})",
            est.value, n, sigma
        );
    }
}

/// Non-proptest cross-crate check: every estimator path (sampler API,
/// engine rewrite, online planner) agrees on a census (rate-1) input.
#[test]
fn census_consistency_across_paths() {
    use aqp_core::{ErrorSpec, OnlineAqp, OnlineConfig};
    use aqp_engine::{execute, AggExpr, Query};
    use aqp_expr::col;
    use aqp_storage::Catalog;

    let values: Vec<f64> = (0..5000).map(|i| (i % 83) as f64).collect();
    let truth: f64 = values.iter().sum();
    let t = table_from(&values, 64);
    let catalog = Catalog::new();
    catalog.register(t.clone()).unwrap();

    // Path 1: sampler at rate 1.
    let s = bernoulli_blocks(&t, 1.0, 0);
    assert_eq!(s.estimate_sum("v").unwrap().value, truth);

    // Path 2: exact engine.
    let plan = Query::scan("p")
        .aggregate(vec![], vec![AggExpr::sum(col("v"), "s")])
        .build();
    assert_eq!(
        execute(&plan, &catalog).unwrap().rows()[0][0]
            .as_f64()
            .unwrap(),
        truth
    );

    // Path 3: online AQP (must match within its 1% spec; it may sample).
    let aqp = OnlineAqp::new(&catalog, OnlineConfig::default());
    let ans = aqp
        .answer_plan(&plan, &ErrorSpec::new(0.01, 0.95), 1)
        .unwrap();
    assert!(ans.scalar_estimate("s").unwrap().relative_error(truth) <= 0.01);
}
