//! The concurrent service contract: `AqpService` adds admission control,
//! scheduling, and a plan cache *around* the session without perturbing a
//! single answer.
//!
//! * a multi-threaded proptest pins the headline guarantee — N client
//!   threads hammering one shared service receive answers bit-for-bit
//!   identical to a serial `AqpSession` replay of the same
//!   `(plan, spec, seed)` jobs;
//! * goldens cover each admission verdict (accepted, degraded, strict
//!   rejection, deadline rejection, queue-full backpressure) and each
//!   plan-cache transition (miss → hit → stale after maintenance or a
//!   table swap, pilot-plan replay on a warm hit).

use std::time::Duration;

use proptest::prelude::*;

use aqp_core::{
    AdmissionDecision, AqpService, AqpSession, CacheEvent, Contract, ErrorSpec, GuaranteeClass,
    Rejection, ServiceConfig, TechniqueKind,
};
use aqp_engine::{AggExpr, LogicalPlan, Query};
use aqp_expr::{col, lit};
use aqp_storage::Catalog;
use aqp_workload::{skewed_table, uniform_table};

fn grouped_sum(table: &str, threshold: f64) -> LogicalPlan {
    Query::scan(table)
        .filter(col("sel").lt(lit(threshold)))
        .aggregate(
            vec![(col("g"), "g".to_string())],
            vec![AggExpr::sum(col("v"), "s")],
        )
        .build()
}

fn ungrouped_sum(table: &str) -> LogicalPlan {
    Query::scan(table)
        .aggregate(vec![], vec![AggExpr::sum(col("v"), "s")])
        .build()
}

/// Bitwise comparison of the parts of an answer that define its meaning:
/// group keys, estimates (value, variance, sample size), and the routed
/// winner. Wall clocks and queue waits legitimately differ.
fn assert_same_answer(a: &aqp_core::ApproximateAnswer, b: &aqp_core::ApproximateAnswer, ctx: &str) {
    let wa = a.report.routing.as_ref().map(|r| r.winner);
    let wb = b.report.routing.as_ref().map(|r| r.winner);
    assert_eq!(wa, wb, "winner diverged: {ctx}");
    assert_eq!(
        a.groups.len(),
        b.groups.len(),
        "group count diverged: {ctx}"
    );
    for (ga, gb) in a.groups.iter().zip(&b.groups) {
        assert_eq!(ga.key, gb.key, "group key diverged: {ctx}");
        assert_eq!(
            ga.estimates.len(),
            gb.estimates.len(),
            "estimate count diverged: {ctx}"
        );
        for (ea, eb) in ga.estimates.iter().zip(&gb.estimates) {
            assert_eq!(ea.value, eb.value, "estimate value diverged: {ctx}");
            assert_eq!(ea.variance, eb.variance, "variance diverged: {ctx}");
            assert_eq!(ea.n, eb.n, "sample size diverged: {ctx}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// N client threads through one shared `AqpService` get exactly the
    /// answers a serial `AqpSession` replay produces — across cache
    /// misses, hits (the jobs list repeats, so warm fast paths and cached
    /// pilot plans are exercised), fair thread splits, and queueing.
    #[test]
    fn concurrent_service_equals_serial_session(
        seeds in prop::collection::vec(any::<u64>(), 4..7),
        threshold in 0.3f64..0.9,
        with_synopsis in any::<bool>(),
    ) {
        let c = Catalog::new();
        c.register(skewed_table("t", 20_000, 10, 1.0, 128, 11)).unwrap();
        let spec = ErrorSpec::new(0.15, 0.9);
        let plans = [grouped_sum("t", threshold), ungrouped_sum("t")];
        // Repeat every job so the second occurrence replays warm cache
        // state (memoized analysis, probes, and pilot plans).
        let jobs: Vec<(usize, u64)> = seeds
            .iter()
            .flat_map(|&s| (0..plans.len()).map(move |p| (p, s)))
            .cycle()
            .take(seeds.len() * plans.len() * 2)
            .collect();

        // Serial reference: one session, one thread, same job stream.
        let reference = AqpSession::new(&c);
        if with_synopsis {
            reference.offline().build_stratified(&c, "t", "g", 3_000, 5).unwrap();
        }
        let expected: Vec<_> = jobs
            .iter()
            .map(|&(p, s)| reference.answer(&plans[p], &spec, s).unwrap())
            .collect();

        for clients in [2usize, 4, 8] {
            let session = AqpSession::new(&c);
            if with_synopsis {
                session.offline().build_stratified(&c, "t", "g", 3_000, 5).unwrap();
            }
            let service = AqpService::over(session, ServiceConfig::default());
            let mut got: Vec<Option<aqp_core::ApproximateAnswer>> = Vec::new();
            got.resize_with(jobs.len(), || None);
            let next = std::sync::atomic::AtomicUsize::new(0);
            let slots = std::sync::Mutex::new(&mut got);
            std::thread::scope(|scope| {
                for _ in 0..clients {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        let (p, s) = jobs[i];
                        let ans = service.answer(&plans[p], &spec, s).unwrap();
                        slots.lock().unwrap()[i] = Some(ans);
                    });
                }
            });
            for (i, (ans, want)) in got.iter().zip(&expected).enumerate() {
                let ans = ans.as_ref().expect("every job answered");
                assert_same_answer(
                    ans,
                    want,
                    &format!("clients={clients} job={i} plan={} seed={}", jobs[i].0, jobs[i].1),
                );
            }
            let stats = service.stats();
            prop_assert_eq!(stats.rejected, 0, "no contract can fail here");
            prop_assert_eq!(stats.accepted, jobs.len() as u64);
            // Every repeated job after its cold first run is a warm hit.
            prop_assert!(stats.cache_hits >= (jobs.len() / 2) as u64);
        }
    }
}

/// A grouped query on a table too small for sampling, with no synopsis:
/// only the point-estimate rewrite remains. Strict admission rejects it
/// with the honest ceiling; nothing executes.
#[test]
fn strict_contract_rejects_point_estimate_only() {
    let c = Catalog::new();
    // 2 blocks < the online sampler's 4-block minimum.
    c.register(skewed_table("t", 400, 4, 1.0, 256, 3)).unwrap();
    let service = AqpService::with_config(
        &c,
        Default::default(),
        ServiceConfig {
            strict_contracts: true,
            ..ServiceConfig::default()
        },
    );
    let reply = service
        .submit(&grouped_sum("t", 0.9), &Contract::new(0.1, 0.9), 7)
        .unwrap();
    match reply.rejection() {
        Some(Rejection::ContractUnattainable { best }) => {
            assert_eq!(*best, GuaranteeClass::PointEstimate);
        }
        other => panic!("expected ContractUnattainable, got {other:?}"),
    }
    let stats = service.stats();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.accepted + stats.degraded, 0);
}

/// The same query under the default (lenient) policy runs, with the
/// downgrade recorded in the answer's admission report and rendered by
/// `explain_analyze()`.
#[test]
fn lenient_contract_degrades_and_answers() {
    let c = Catalog::new();
    c.register(skewed_table("t", 400, 4, 1.0, 256, 3)).unwrap();
    let service = AqpService::new(&c);
    let reply = service
        .submit(&grouped_sum("t", 0.9), &Contract::new(0.1, 0.9), 7)
        .unwrap();
    let ans = reply.answered().expect("lenient admission answers");
    let admission = ans
        .report
        .admission
        .as_ref()
        .expect("service answers carry admission");
    match &admission.decision {
        AdmissionDecision::Degraded { granted, .. } => {
            assert_eq!(*granted, GuaranteeClass::PointEstimate);
        }
        other => panic!("expected Degraded, got {other:?}"),
    }
    assert_eq!(admission.cache, CacheEvent::Miss);
    let rendered = ans.report.explain_analyze();
    assert!(rendered.contains("admission: degraded"), "{rendered}");
    assert!(rendered.contains("cache=miss"), "{rendered}");
    assert_eq!(service.stats().degraded, 1);
}

/// Cache lifecycle: miss on first sight, hit on the second, stale after
/// synopsis maintenance bumps the routing epoch, stale again after the
/// fact table itself is swapped for a bigger one.
#[test]
fn plan_cache_hits_then_invalidates() {
    let c = Catalog::new();
    c.register(skewed_table("t", 30_000, 10, 1.0, 128, 11))
        .unwrap();
    let service = AqpService::new(&c);
    let plan = grouped_sum("t", 0.8);
    let spec = ErrorSpec::new(0.15, 0.9);
    let cache_of = |ans: &aqp_core::ApproximateAnswer| {
        ans.report
            .admission
            .as_ref()
            .expect("admission attached")
            .cache
    };

    let first = service.answer(&plan, &spec, 1).unwrap();
    assert_eq!(cache_of(&first), CacheEvent::Miss);
    let second = service.answer(&plan, &spec, 2).unwrap();
    assert_eq!(cache_of(&second), CacheEvent::Hit);

    // Maintenance bumps the routing epoch even when no synopsis needed
    // rebuilding: cached probe verdicts may rest on anything it touched.
    service.session().maintain_synopses("t", 99).unwrap();
    let third = service.answer(&plan, &spec, 3).unwrap();
    assert_eq!(cache_of(&third), CacheEvent::Stale);
    let fourth = service.answer(&plan, &spec, 4).unwrap();
    assert_eq!(cache_of(&fourth), CacheEvent::Hit);

    // A row-count change invalidates without any epoch bump.
    c.replace(skewed_table("t", 45_000, 10, 1.0, 128, 12));
    let fifth = service.answer(&plan, &spec, 5).unwrap();
    assert_eq!(cache_of(&fifth), CacheEvent::Stale);

    let stats = service.stats();
    assert_eq!(stats.cache_hits, 2);
    assert_eq!(stats.cache_stale, 2);
    assert_eq!(stats.cache_misses, 1);
}

/// A warm hit with a cached pilot plan replays the online sampler without
/// re-running the pilot: identical groups, strictly fewer rows charged.
#[test]
fn warm_hit_replays_pilot_plan() {
    let c = Catalog::new();
    c.register(skewed_table("t", 30_000, 10, 1.0, 128, 11))
        .unwrap();
    let service = AqpService::new(&c);
    let plan = grouped_sum("t", 0.8);
    // Loose spec so pilot-planned sampling wins the route.
    let spec = ErrorSpec::new(0.4, 0.9);
    let cold = service.answer(&plan, &spec, 42).unwrap();
    let winner = cold.report.routing.as_ref().unwrap().winner;
    assert_eq!(
        winner,
        TechniqueKind::OnlineSampling,
        "setup: sampler must win"
    );
    let warm = service.answer(&plan, &spec, 42).unwrap();
    assert_same_answer(&warm, &cold, "pilot replay");
    assert!(
        warm.report.rows_scanned < cold.report.rows_scanned,
        "cached pilot plan must skip the pilot scan ({} !< {})",
        warm.report.rows_scanned,
        cold.report.rows_scanned
    );
}

/// With one execution slot and a zero-length queue, a query arriving while
/// another runs is rejected immediately — bounded degradation, not an
/// unbounded queue.
#[test]
fn bounded_queue_rejects_under_load() {
    let c = Catalog::new();
    // ~1M groups make the exact aggregate slow enough to hold the slot.
    c.register(uniform_table("big", 1_000_000, 4096, 7))
        .unwrap();
    let heavy = Query::scan("big")
        .aggregate(
            vec![(col("id"), "id".to_string())],
            vec![AggExpr::sum(col("v"), "s")],
        )
        .build();
    let service = AqpService::with_config(
        &c,
        Default::default(),
        ServiceConfig {
            max_inflight: 1,
            queue_capacity: 0,
            ..ServiceConfig::default()
        },
    );
    let spec = ErrorSpec::new(0.05, 0.95);
    std::thread::scope(|scope| {
        let svc = &service;
        let plan = &heavy;
        scope.spawn(move || {
            let reply = svc.submit(plan, &Contract::new(0.05, 0.95), 1).unwrap();
            assert!(reply.rejection().is_none(), "slot holder must complete");
        });
        // Wait until the heavy query owns the slot, then collide with it.
        let mut spins = 0;
        while svc.stats().inflight == 0 {
            std::thread::sleep(Duration::from_micros(200));
            spins += 1;
            assert!(spins < 25_000, "heavy query never started");
        }
        match svc.submit(
            plan,
            &Contract::new(spec.relative_error, spec.confidence),
            2,
        ) {
            Ok(reply) => match reply.rejection() {
                Some(Rejection::QueueFull { capacity: 0, .. }) => {}
                other => panic!("expected QueueFull, got {other:?}"),
            },
            Err(e) => panic!("submit errored: {e}"),
        }
    });
    let stats = service.stats();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.accepted, 1);
}

/// Once a completed run has seeded the cache's wall-clock EWMA, a deadline
/// below that estimate is rejected before any work happens.
#[test]
fn deadline_below_estimate_rejected_upfront() {
    let c = Catalog::new();
    c.register(skewed_table("t", 30_000, 10, 1.0, 128, 11))
        .unwrap();
    let service = AqpService::new(&c);
    let plan = grouped_sum("t", 0.8);
    let spec = ErrorSpec::new(0.15, 0.9);
    // Warm the estimate.
    service.answer(&plan, &spec, 1).unwrap();
    let contract = Contract::new(0.15, 0.9).with_deadline(Duration::from_nanos(1));
    let reply = service.submit(&plan, &contract, 2).unwrap();
    match reply.rejection() {
        Some(Rejection::DeadlineUnmeetable { deadline, estimate }) => {
            assert_eq!(*deadline, Duration::from_nanos(1));
            assert!(*estimate > *deadline);
        }
        other => panic!("expected DeadlineUnmeetable, got {other:?}"),
    }
    // A generous deadline sails through.
    let relaxed = Contract::new(0.15, 0.9).with_deadline(Duration::from_secs(60));
    let reply = service.submit(&plan, &relaxed, 3).unwrap();
    assert!(reply.rejection().is_none());
}
