//! The middleware (query-rewriting) path: a sampled table with a weight
//! column, queried through the *unmodified exact engine* with
//! `SUM(x·w)`-style rewrites, must reproduce the sampler's own
//! Horvitz–Thompson estimates — this is the VerdictDB-style architecture
//! NSB identifies as the deployable form of AQP, validated across samplers.

use aqp_engine::{execute, AggExpr, Query};
use aqp_expr::{col, lit};
use aqp_sampling::{
    bernoulli_blocks, bernoulli_rows, distinct_sample, stratified_sample, Allocation,
};
use aqp_storage::Catalog;
use aqp_workload::skewed_table;

const W: &str = "__w";

fn weighted_sum_via_engine(catalog: &Catalog, table: &str, value: &str) -> f64 {
    let plan = Query::scan(table)
        .project(vec![(col(value).mul(col(W)), "wx".to_string())])
        .aggregate(vec![], vec![AggExpr::sum(col("wx"), "s")])
        .build();
    execute(&plan, catalog).unwrap().rows()[0][0]
        .as_f64()
        .unwrap_or(0.0)
}

fn weighted_count_via_engine(catalog: &Catalog, table: &str) -> f64 {
    let plan = Query::scan(table)
        .aggregate(vec![], vec![AggExpr::sum(col(W), "c")])
        .build();
    execute(&plan, catalog).unwrap().rows()[0][0]
        .as_f64()
        .unwrap_or(0.0)
}

#[test]
fn bernoulli_row_sample_rewrite_matches_ht_estimate() {
    let t = skewed_table("t", 30_000, 40, 1.0, 256, 1);
    let s = bernoulli_rows(&t, 0.05, 9);
    let est = s.estimate_sum("v").unwrap();
    let catalog = Catalog::new();
    catalog
        .register(s.to_weighted_table("t_s", W).unwrap())
        .unwrap();
    let via_engine = weighted_sum_via_engine(&catalog, "t_s", "v");
    assert!(
        (via_engine - est.value).abs() < 1e-6 * est.value.abs().max(1.0),
        "engine {via_engine} vs estimator {}",
        est.value
    );
}

#[test]
fn block_sample_rewrite_matches_plain_ht_estimate() {
    // The weighted-table middleware uses plain HT weights (1/q); the
    // engine-side estimate must equal Σx/q.
    let t = skewed_table("t", 30_000, 40, 1.0, 256, 2);
    let s = bernoulli_blocks(&t, 0.2, 4);
    let sample_sum: f64 = s.table.column_f64("v").unwrap().iter().sum();
    let catalog = Catalog::new();
    catalog
        .register(s.to_weighted_table("t_s", W).unwrap())
        .unwrap();
    let via_engine = weighted_sum_via_engine(&catalog, "t_s", "v");
    assert!((via_engine - sample_sum / 0.2).abs() < 1e-6);
}

#[test]
fn stratified_sample_rewrite_matches_ht_estimate() {
    let t = skewed_table("t", 30_000, 30, 1.2, 256, 3);
    let s = stratified_sample(&t, "g", &Allocation::Congressional { budget: 3000 }, 7).unwrap();
    let est = s.estimate_sum("v").unwrap();
    let catalog = Catalog::new();
    catalog
        .register(s.to_weighted_table("t_s", W).unwrap())
        .unwrap();
    let via_engine = weighted_sum_via_engine(&catalog, "t_s", "v");
    assert!(
        (via_engine - est.value).abs() < 1e-6 * est.value.abs(),
        "engine {via_engine} vs estimator {}",
        est.value
    );
}

#[test]
fn distinct_sample_rewrite_matches_poisson_estimate() {
    let t = skewed_table("t", 30_000, 30, 1.3, 256, 4);
    let s = distinct_sample(&t, &["g"], 4, 0.05, 11).unwrap();
    let est_count = s.estimate_count();
    let catalog = Catalog::new();
    catalog
        .register(s.to_weighted_table("t_s", W).unwrap())
        .unwrap();
    let via_engine = weighted_count_via_engine(&catalog, "t_s");
    assert!(
        (via_engine - est_count.value).abs() < 1e-9 * est_count.value.max(1.0),
        "engine {via_engine} vs estimator {}",
        est_count.value
    );
}

#[test]
fn weighted_group_by_through_engine_is_consistent() {
    // Per-group weighted counts though the engine match per-group HT
    // estimates computed by the sampler API.
    let t = skewed_table("t", 20_000, 10, 0.8, 128, 5);
    let s = stratified_sample(&t, "g", &Allocation::Equal { per_stratum: 200 }, 13).unwrap();
    let catalog = Catalog::new();
    catalog
        .register(s.to_weighted_table("t_s", W).unwrap())
        .unwrap();
    let plan = Query::scan("t_s")
        .aggregate(
            vec![(col("g"), "g".to_string())],
            vec![AggExpr::sum(col(W), "est_n")],
        )
        .build();
    let per_group = execute(&plan, &catalog).unwrap();
    let gi = s.table.schema().index_of("g").unwrap();
    for row in per_group.rows() {
        let g = row[0].clone();
        let engine_est = row[1].as_f64().unwrap();
        let sampler_est = s.estimate_count_with(&mut |b, i| {
            if b.column(gi).get(i) == g {
                1.0
            } else {
                0.0
            }
        });
        assert!(
            (engine_est - sampler_est.value).abs() < 1e-6 * sampler_est.value.max(1.0),
            "group {g:?}: engine {engine_est} vs sampler {}",
            sampler_est.value
        );
    }
}

#[test]
fn block_sampling_skips_scanned_rows_in_engine_stats() {
    // The system-efficiency claim, observable through the engine's scan
    // accounting: querying the block sample touches ~20% of the rows.
    let t = skewed_table("t", 50_000, 10, 0.5, 256, 6);
    let s = bernoulli_blocks(&t, 0.2, 8);
    let catalog = Catalog::new();
    let full_rows = t.row_count() as u64;
    catalog.register(t).unwrap();
    catalog.register(s.table.clone()).unwrap();
    let sample_name = s.table.name().to_string();

    let full = execute(
        &Query::scan("t")
            .aggregate(vec![], vec![AggExpr::sum(col("v"), "s")])
            .build(),
        &catalog,
    )
    .unwrap();
    assert_eq!(full.stats().rows_scanned, full_rows);

    let sampled = execute(
        &Query::scan(&sample_name)
            .aggregate(vec![], vec![AggExpr::sum(col("v"), "s")])
            .build(),
        &catalog,
    )
    .unwrap();
    let frac = sampled.stats().rows_scanned as f64 / full_rows as f64;
    assert!(
        (0.1..0.35).contains(&frac),
        "block sample scanned fraction {frac}"
    );
}

#[test]
fn rebase_tables_redirects_plan_to_sample() {
    // The plan-rewriting primitive: the same logical plan, rebased onto
    // the sampled table, runs unchanged.
    let t = skewed_table("t", 10_000, 5, 0.5, 128, 7);
    let s = bernoulli_blocks(&t, 0.3, 1);
    let catalog = Catalog::new();
    catalog.register(t).unwrap();
    let sample_name = s.table.name().to_string();
    catalog.register(s.table).unwrap();
    let plan = Query::scan("t")
        .filter(col("sel").lt(lit(0.5)))
        .aggregate(vec![], vec![AggExpr::count_star("n")])
        .build();
    let rebased = plan.rebase_tables(&|name| (name == "t").then(|| sample_name.clone()));
    let exact_n = execute(&plan, &catalog).unwrap().rows()[0][0]
        .as_f64()
        .unwrap();
    let sampled_n = execute(&rebased, &catalog).unwrap().rows()[0][0]
        .as_f64()
        .unwrap();
    // ~30% of the filtered rows should appear in the sample.
    let ratio = sampled_n / exact_n;
    assert!((0.15..0.45).contains(&ratio), "ratio {ratio}");
}
