//! Observability tour: run one query through each AQP family via the
//! routing session with the tracer on, print `EXPLAIN ANALYZE` for every
//! answer, run an audited workload whose ground-truth checks populate the
//! per-technique accuracy scoreboard, and finish with the session's
//! metrics in Prometheus exposition format.
//!
//! ```sh
//! cargo run --release -p aqp-bench --example observability
//! ```

use aqp_core::{AqpSession, AuditConfig, ErrorSpec, OnlineConfig, SessionConfig};
use aqp_engine::{AggExpr, LogicalPlan, Query};
use aqp_expr::{col, lit};
use aqp_storage::Catalog;
use aqp_workload::{skewed_table, uniform_table};

fn explain(title: &str, session: &AqpSession, plan: &LogicalPlan, spec: &ErrorSpec) {
    let ans = session.answer(plan, spec, 7).unwrap();
    let routing = ans.report.routing.as_ref().unwrap();
    println!("== {title} ==");
    println!("   winner: {}\n", routing.winner);
    // Indent the explain block under the headline.
    for line in ans.report.explain_analyze().lines() {
        println!("   {line}");
    }
    println!();
}

fn main() {
    // Spans and the trace tree are recorded only while the tracer is on;
    // the default is off and costs nothing.
    aqp_obs::set_enabled(true);

    // --- 1. Offline synopsis: a fresh stratified sample matching the
    //        query's GROUP BY — answered without touching base data.
    let c = Catalog::new();
    c.register(skewed_table("sales", 400_000, 40, 1.1, 1024, 11))
        .unwrap();
    let session = AqpSession::new(&c);
    session
        .offline()
        .build_stratified(&c, "sales", "g", 20_000, 1)
        .unwrap();
    let grouped_sum = Query::scan("sales")
        .aggregate(
            vec![(col("g"), "g".to_string())],
            vec![AggExpr::sum(col("v"), "s")],
        )
        .build();
    explain(
        "offline synopsis (fresh stratified sample)",
        &session,
        &grouped_sum,
        &ErrorSpec::new(0.05, 0.95),
    );

    // --- 2. Online sampling: an ad-hoc predicate no synopsis anticipated;
    //        the pilot plans a final block rate that honors the contract.
    let c2 = Catalog::new();
    c2.register(uniform_table("readings", 1_000_000, 1024, 42))
        .unwrap();
    let session2 = AqpSession::new(&c2);
    let adhoc = Query::scan("readings")
        .filter(col("sel").lt(lit(0.5)))
        .aggregate(
            vec![(col("id").modulo(lit(8i64)), "g".to_string())],
            vec![AggExpr::avg(col("v"), "a")],
        )
        .build();
    explain(
        "online sampling (pilot-planned two-phase)",
        &session2,
        &adhoc,
        &ErrorSpec::new(0.05, 0.95),
    );

    // --- 3. Progressive aggregation: the fact table is too small for the
    //        two-phase planner's spread estimation, so online sampling
    //        declines and the progressive family takes the ungrouped SUM.
    let c3 = Catalog::new();
    c3.register(uniform_table("tiny", 2_000, 1024, 5)).unwrap();
    let session3 = AqpSession::new(&c3);
    let ungrouped = Query::scan("tiny")
        .aggregate(vec![], vec![AggExpr::sum(col("v"), "s")])
        .build();
    explain(
        "online aggregation (progressive, a-posteriori stop)",
        &session3,
        &ungrouped,
        &ErrorSpec::new(0.1, 0.9),
    );

    // --- 4. Middleware rewrite: a pay-off cap so tight that the planned
    //        final rate exceeds it — online sampling declines at runtime
    //        and the grouped shape keeps progressive aggregation out, so
    //        the point-estimate middleware answers.
    let c4 = Catalog::new();
    c4.register(skewed_table("events", 300_000, 8, 0.5, 1024, 23))
        .unwrap();
    let session4 = AqpSession::with_config(
        &c4,
        SessionConfig {
            online: OnlineConfig {
                max_final_rate: 0.001,
                ..OnlineConfig::default()
            },
            rewrite_min_group_support: 10,
            ..SessionConfig::default()
        },
    );
    explain(
        "middleware rewrite (runtime decline falls through)",
        &session4,
        &Query::scan("events")
            .aggregate(
                vec![(col("g"), "g".to_string())],
                vec![AggExpr::sum(col("v"), "s")],
            )
            .build(),
        &ErrorSpec::new(0.02, 0.99),
    );

    // --- 5. Accuracy auditing: re-run the ad-hoc workload with a 20%
    //        ground-truth audit rate. The seeded sampler picks answers to
    //        re-execute exactly; every verdict lands on the per-technique
    //        coverage scoreboard that `explain_analyze` renders and
    //        `AqpSession::accuracy()` exposes.
    let session5 = AqpSession::with_config(
        &c2,
        SessionConfig {
            audit: AuditConfig {
                rate: 0.2,
                seed: 0xA0D1,
                ..AuditConfig::default()
            },
            ..SessionConfig::default()
        },
    );
    let spec = ErrorSpec::new(0.05, 0.95);
    let mut audited = 0usize;
    for seed in 0..40u64 {
        let ans = session5.answer(&adhoc, &spec, seed).unwrap();
        if let Some(audit) = &ans.report.audit {
            audited += 1;
            println!(
                "audit #{audited}: {} max_rel_err={:.4} ({}µs of exact re-execution)",
                if audit.ok { "ok" } else { "FAILED" },
                audit.max_rel_err,
                audit.wall.as_micros()
            );
        }
    }
    println!("\n== accuracy scoreboard (windowed, per technique) ==\n");
    println!("{}", session5.accuracy().render_table());

    // --- 6. Everything the five sessions recorded, scrape-ready.
    println!("== metrics (Prometheus exposition) ==\n");
    print!("{}", aqp_obs::metrics::global().to_prometheus_text());
}
