//! Service tour: one shared `AqpService` front door serving concurrent
//! clients — the plan cache amortizing the routing deliberation across a
//! repeated dashboard workload, contract admission accepting / degrading
//! / rejecting queries *before* execution, and the bounded queue
//! refusing (not silently queueing) work it cannot take.
//!
//! ```sh
//! cargo run --release -p aqp-bench --example service
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use aqp_core::{AqpService, Contract, ServiceConfig, ServiceReply};
use aqp_engine::{AggExpr, Query};
use aqp_expr::{col, lit};
use aqp_storage::Catalog;
use aqp_workload::skewed_table;

fn main() {
    // A skewed fact table: 300k rows, 12 Zipf(1.0) groups, 256-row blocks.
    let catalog = Catalog::new();
    println!("generating 300,000 rows ...");
    catalog
        .register(skewed_table("orders", 300_000, 12, 1.0, 256, 7))
        .unwrap();

    // The dashboard workload: two grouped aggregates and one total,
    // asked over and over by every client.
    let plans = [
        Query::scan("orders")
            .filter(col("sel").lt(lit(0.8)))
            .aggregate(
                vec![(col("g"), "g".to_string())],
                vec![AggExpr::sum(col("v"), "s")],
            )
            .build(),
        Query::scan("orders")
            .aggregate(vec![], vec![AggExpr::sum(col("v"), "total")])
            .build(),
        Query::scan("orders")
            .filter(col("sel").lt(lit(0.5)))
            .aggregate(
                vec![(col("g"), "g".to_string())],
                vec![AggExpr::avg(col("v"), "a")],
            )
            .build(),
    ];

    // ---- 1. Concurrent clients over one shared service -----------------
    let service = AqpService::new(&catalog);
    let contract = Contract::new(0.15, 0.9);
    let total = 48;
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let plan = &plans[i % plans.len()];
                service
                    .submit(plan, &contract, (i % 5) as u64)
                    .expect("submit")
                    .answered()
                    .expect("admitted");
            });
        }
    });
    let stats = service.stats();
    println!(
        "\n-- 4 clients x {} queries through one service --",
        total / 4
    );
    println!(
        "admission : accepted={} degraded={} rejected={}",
        stats.accepted, stats.degraded, stats.rejected
    );
    println!(
        "plan cache: hits={} misses={} stale={} (the deliberation — lint,\n            eligibility probes, pilot planning — ran only on the misses)",
        stats.cache_hits, stats.cache_misses, stats.cache_stale
    );

    // ---- 2. The admission row in EXPLAIN ANALYZE ------------------------
    let reply = service.submit(&plans[0], &contract, 1).expect("submit");
    if let ServiceReply::Answered(answer) = reply {
        let explain = answer.report.explain_analyze();
        let admission = explain
            .lines()
            .find(|l| l.starts_with("admission:"))
            .expect("service answers carry an admission row");
        println!("\n-- a warm query's admission row --\n{admission}");
    }

    // ---- 3. Rejections are answers: deadline, strict contract, queue ----
    println!("\n-- three ways to be refused --");
    // An impossible deadline: the cached wall estimate sinks it upfront.
    let hurried = Contract::new(0.15, 0.9).with_deadline(Duration::from_nanos(1));
    report_refusal("deadline ", service.submit(&plans[0], &hurried, 2));

    // A strict service refuses what it would otherwise degrade: on a tiny
    // table (too few blocks to sample) only a point estimate is
    // attainable, and strict contracts reject that honestly.
    catalog
        .register(skewed_table("tiny", 400, 4, 1.0, 256, 3))
        .unwrap();
    let strict = AqpService::with_config(
        &catalog,
        Default::default(),
        ServiceConfig {
            strict_contracts: true,
            ..ServiceConfig::default()
        },
    );
    let tiny_grouped = Query::scan("tiny")
        .filter(col("sel").lt(lit(0.9)))
        .aggregate(
            vec![(col("g"), "g".to_string())],
            vec![AggExpr::sum(col("v"), "s")],
        )
        .build();
    report_refusal("strict   ", strict.submit(&tiny_grouped, &contract, 1));

    // A full bounded queue: one slot, no waiting room — a query colliding
    // with a resident one is told "no" now, not "later" after queueing.
    // The resident is a heavy exact aggregate (one group per row) so it
    // reliably holds the slot while we collide with it.
    catalog
        .register(aqp_workload::uniform_table("big", 1_000_000, 4096, 3))
        .unwrap();
    let heavy = Query::scan("big")
        .aggregate(
            vec![(col("id"), "id".to_string())],
            vec![AggExpr::sum(col("v"), "s")],
        )
        .build();
    let one_slot = AqpService::with_config(
        &catalog,
        Default::default(),
        ServiceConfig {
            max_inflight: 1,
            queue_capacity: 0,
            ..ServiceConfig::default()
        },
    );
    std::thread::scope(|scope| {
        scope.spawn(|| {
            one_slot
                .submit(&heavy, &Contract::new(0.05, 0.95), 1)
                .expect("resident query")
                .answered()
                .expect("slot holder completes");
        });
        // Wait (bounded) until the resident actually holds the slot.
        for _ in 0..50_000 {
            if one_slot.stats().inflight > 0 {
                break;
            }
            std::thread::sleep(Duration::from_micros(100));
        }
        report_refusal("queue    ", one_slot.submit(&plans[1], &contract, 2));
    });
}

fn report_refusal(label: &str, reply: Result<ServiceReply, aqp_core::AqpError>) {
    match reply.expect("submit") {
        ServiceReply::Rejected(rejection) => println!("{label}: rejected — {rejection}"),
        ServiceReply::Answered(answer) => println!(
            "{label}: admitted after all ({} rows scanned)",
            answer.report.rows_scanned
        ),
    }
}
