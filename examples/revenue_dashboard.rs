//! A BI-dashboard scenario over the star schema: grouped revenue queries
//! with joins, answered three ways — exactly, by query-time sampling, and
//! from an offline stratified synopsis — showing the trade-offs NSB maps.
//!
//! ```sh
//! cargo run --release -p aqp-bench --example revenue_dashboard
//! ```

use aqp_core::{AggQuery, ErrorSpec, OfflineStore, OnlineAqp, OnlineConfig};
use aqp_engine::{execute, AggExpr, Query};
use aqp_expr::{col, lit};
use aqp_storage::Catalog;
use aqp_workload::{build_star_schema, StarScale};

fn main() {
    let catalog = Catalog::new();
    println!("building star schema (lineitem/orders/customer/part) ...");
    let scale = StarScale {
        orders: 150_000,
        ..StarScale::small()
    };
    let fact_rows = build_star_schema(&catalog, &scale, 1).unwrap();
    println!("fact table: {fact_rows} lineitem rows\n");

    // Dashboard tile 1: revenue by ship mode (single-table group-by).
    let by_shipmode = Query::scan("lineitem")
        .aggregate(
            vec![(col("l_shipmode"), "mode".to_string())],
            vec![AggExpr::sum(col("l_price"), "revenue")],
        )
        .build();

    // Dashboard tile 2: revenue by order priority (needs the join).
    let by_priority = Query::scan("lineitem")
        .join(Query::scan("orders"), col("l_orderkey"), col("o_key"))
        .filter(col("l_discount").lt(lit(0.05)))
        .aggregate(
            vec![(col("o_priority"), "priority".to_string())],
            vec![
                AggExpr::sum(col("l_price"), "revenue"),
                AggExpr::avg(col("l_quantity"), "avg_qty"),
            ],
        )
        .build();

    let spec = ErrorSpec::new(0.05, 0.95);
    let aqp = OnlineAqp::new(&catalog, OnlineConfig::default());

    // Offline path: a stratified sample pre-built on the anticipated
    // grouping column.
    let offline = OfflineStore::new();
    offline
        .build_stratified(&catalog, "lineitem", "l_shipmode", 20_000, 5)
        .unwrap();

    for (name, plan) in [
        ("revenue by ship mode", &by_shipmode),
        ("revenue by priority (join)", &by_priority),
    ] {
        println!("=== {name} ===");
        let start = std::time::Instant::now();
        let exact = execute(plan, &catalog).unwrap();
        let exact_wall = start.elapsed();
        println!(
            "exact: {} groups in {exact_wall:?} ({} rows scanned)",
            exact.num_rows(),
            exact.stats().rows_scanned
        );

        let ans = aqp.answer_plan(plan, &spec, 9).unwrap();
        println!(
            "online AQP ({:?}): {} groups in {:?}, touched {:.2}% of the data",
            ans.report.path,
            ans.groups.len(),
            ans.report.wall,
            100.0 * ans.report.touched_fraction(),
        );
        for (row, g) in exact.rows().iter().zip(&ans.groups) {
            let truth = row[exact.rows()[0].len() - 2].as_f64().unwrap_or(0.0);
            let _ = truth;
            let key = &g.key[0];
            let est = &g.estimates[0];
            let ci = &g.intervals[0];
            println!(
                "  {key:<10} revenue ≈ {:>14.2}  ±{:>6.2}%",
                est.value,
                100.0 * ci.relative_half_width(),
            );
        }

        // The offline synopsis can serve the single-table tile instantly,
        // but must decline the join — NSB's generality boundary.
        if let Some(q) = AggQuery::from_plan(plan) {
            match offline.answer(&q, &spec) {
                Ok(off) => println!(
                    "offline synopsis: {} groups from {} pre-built rows in {:?}",
                    off.groups.len(),
                    off.report.rows_touched,
                    off.report.wall,
                ),
                Err(e) => println!("offline synopsis: declined ({e})"),
            }
        }
        println!();
    }
}
