//! A BI-dashboard scenario over the star schema: grouped revenue queries
//! with joins, all asked through one routing `AqpSession`. The session
//! serves the single-table tile from its pre-built stratified synopsis and
//! the join tile by query-time sampling — NSB's generality boundary,
//! negotiated per query by the router.
//!
//! ```sh
//! cargo run --release -p aqp-bench --example revenue_dashboard
//! ```

use aqp_core::{AqpSession, ErrorSpec};
use aqp_engine::{execute, AggExpr, Query};
use aqp_expr::{col, lit};
use aqp_storage::Catalog;
use aqp_workload::{build_star_schema, StarScale};

fn main() {
    let catalog = Catalog::new();
    println!("building star schema (lineitem/orders/customer/part) ...");
    let scale = StarScale {
        orders: 150_000,
        ..StarScale::small()
    };
    let fact_rows = build_star_schema(&catalog, &scale, 1).unwrap();
    println!("fact table: {fact_rows} lineitem rows\n");

    // Dashboard tile 1: revenue by ship mode (single-table group-by).
    let by_shipmode = Query::scan("lineitem")
        .aggregate(
            vec![(col("l_shipmode"), "mode".to_string())],
            vec![AggExpr::sum(col("l_price"), "revenue")],
        )
        .build();

    // Dashboard tile 2: revenue by order priority (needs the join).
    let by_priority = Query::scan("lineitem")
        .join(Query::scan("orders"), col("l_orderkey"), col("o_key"))
        .filter(col("l_discount").lt(lit(0.05)))
        .aggregate(
            vec![(col("o_priority"), "priority".to_string())],
            vec![
                AggExpr::sum(col("l_price"), "revenue"),
                AggExpr::avg(col("l_quantity"), "avg_qty"),
            ],
        )
        .build();

    let spec = ErrorSpec::new(0.05, 0.95);

    // One session for the whole dashboard. The stratified synopsis is
    // pre-built on the anticipated grouping column; the router will use it
    // whenever a tile's shape and freshness allow.
    let session = AqpSession::new(&catalog);
    session
        .offline()
        .build_stratified(&catalog, "lineitem", "l_shipmode", 20_000, 5)
        .unwrap();

    for (name, plan) in [
        ("revenue by ship mode", &by_shipmode),
        ("revenue by priority (join)", &by_priority),
    ] {
        println!("=== {name} ===");
        let start = std::time::Instant::now();
        let exact = execute(plan, &catalog).unwrap();
        let exact_wall = start.elapsed();
        println!(
            "exact: {} groups in {exact_wall:?} ({} rows scanned)",
            exact.num_rows(),
            exact.stats().rows_scanned
        );

        let ans = session.answer(plan, &spec, 9).unwrap();
        let routing = ans.report.routing.as_ref().unwrap();
        println!("routed to {}: {}", routing.winner, routing.summary());
        println!(
            "{} groups in {:?}, {} rows scanned ({:.2}% of the data)",
            ans.groups.len(),
            ans.report.wall,
            ans.report.rows_scanned,
            100.0 * ans.report.touched_fraction(),
        );
        for g in &ans.groups {
            let key = &g.key[0];
            let est = &g.estimates[0];
            let ci = &g.intervals[0];
            println!(
                "  {key:<10} revenue ≈ {:>14.2}  ±{:>6.2}%",
                est.value,
                100.0 * ci.relative_half_width(),
            );
        }
        println!();
    }
}
