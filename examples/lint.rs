//! aqp-lint tour: one fixture query per lint code `A001`–`A014`, each
//! analyzed statically — no base data is read — and printed with its
//! verdict table, diagnostics, and suggested rewrites. Finishes with the
//! session wiring: `EXPLAIN ANALYZE` carrying the lint table and the
//! probes the router skipped on the analyzer's word.
//!
//! ```sh
//! cargo run --release -p aqp-bench --example lint
//! ```

use aqp_analyze::{lint_plan, LintCode, LintContext, QuarantineMeta, SynopsisMeta, TechniqueKind};
use aqp_core::{AqpSession, CandidateOutcome, ErrorSpec};
use aqp_engine::{AggExpr, LogicalPlan, Query};
use aqp_expr::{col, lit, Expr};
use aqp_storage::Catalog;
use aqp_workload::uniform_table;

fn show(code: LintCode, plan: &LogicalPlan, ctx: &LintContext) {
    let analysis = lint_plan(plan, ctx);
    assert!(analysis.has(code), "fixture must fire {code}");
    println!("== {code} — {} ==", code.title());
    println!("   NSB claim: {}\n", code.nsb_claim());
    for line in analysis.render_table().lines() {
        println!("   {line}");
    }
    println!();
}

fn grouped_sum(table: &str) -> LogicalPlan {
    Query::scan(table)
        .aggregate(
            vec![(col("id"), "id".to_string())],
            vec![AggExpr::sum(col("v"), "s")],
        )
        .build()
}

fn join_plan(pred: Expr) -> LogicalPlan {
    Query::scan("t")
        .join(Query::scan("d"), col("id"), col("id"))
        .filter(pred)
        .aggregate(vec![], vec![AggExpr::sum(col("v"), "s")])
        .build()
}

fn main() {
    let c = Catalog::new();
    c.register(uniform_table("t", 100_000, 256, 7)).unwrap();
    c.register(uniform_table("tiny", 400, 256, 7)).unwrap();
    c.register(uniform_table("d", 1_024, 256, 9)).unwrap();
    let bare = LintContext::new(&c);

    // A001 — MAX is not closed under sampling; no estimator bounds it.
    show(
        LintCode::A001NonClosedAggregate,
        &Query::scan("t")
            .aggregate(vec![], vec![AggExpr::min(col("v"), "m")])
            .build(),
        &bare,
    );

    // A002 — no aggregate root: outside the normalized star shape.
    show(
        LintCode::A002UnsupportedShape,
        &Query::scan("t").filter(col("v").gt(lit(1i64))).build(),
        &bare,
    );

    // A003 — joins exclude the single-relation families (offline, OLA).
    // A012 also fires here: the sampled join has no universe-sampling key.
    show(
        LintCode::A003JoinsExcludeFamily,
        &join_plan(col("sel").lt(lit(0.5))),
        &bare,
    );
    show(
        LintCode::A012SampledJoinPrecondition,
        &join_plan(col("sel").lt(lit(0.5))),
        &bare,
    );

    // A004 — progressive aggregation maintains exactly one live interval.
    show(
        LintCode::A004ProgressiveShape,
        &Query::scan("t")
            .aggregate(
                vec![],
                vec![AggExpr::sum(col("v"), "s"), AggExpr::avg(col("v"), "a")],
            )
            .build(),
        &bare,
    );

    // A005 — the offline family cannot answer without a synopsis.
    // A010 rides along: the only grouped sampled path is unstratified.
    show(LintCode::A005NoSynopsis, &grouped_sum("t"), &bare);
    show(LintCode::A010GroupSupportRisk, &grouped_sum("t"), &bare);

    // A006 — a synopsis exists but covers the wrong column.
    let mismatched = LintContext::new(&c).with_synopsis(SynopsisMeta {
        table: "t".to_string(),
        stratified_on: "v".to_string(),
        staleness: Some(0.0),
    });
    show(
        LintCode::A006SynopsisMismatch,
        &grouped_sum("t"),
        &mismatched,
    );

    // A007 — the base table drifted past the freshness threshold.
    let stale = LintContext::new(&c).with_synopsis(SynopsisMeta {
        table: "t".to_string(),
        stratified_on: "id".to_string(),
        staleness: Some(0.5),
    });
    show(LintCode::A007StaleSynopsis, &grouped_sum("t"), &stale);

    // A008 — two blocks cannot seed a pilot; exact is cheaper anyway.
    show(
        LintCode::A008TableTooSmall,
        &Query::scan("tiny")
            .aggregate(vec![], vec![AggExpr::sum(col("v"), "s")])
            .build(),
        &bare,
    );

    // A009 — a missing table blocks every family, exact included.
    show(
        LintCode::A009MissingTable,
        &Query::scan("ghost")
            .aggregate(vec![], vec![AggExpr::sum(col("v"), "s")])
            .build(),
        &bare,
    );

    // A011 — a selective predicate filters the pilot too.
    show(
        LintCode::A011SelectivePredicateRisk,
        &Query::scan("t")
            .filter(col("sel").lt(lit(0.001)))
            .aggregate(vec![], vec![AggExpr::sum(col("v"), "s")])
            .build(),
        &bare,
    );

    // A013 — tiny + grouped + no synopsis: only the rewrite's point
    // estimate remains attainable.
    show(LintCode::A013PointEstimateOnly, &grouped_sum("tiny"), &bare);

    // A014 — the session's accuracy auditor observed coverage below the
    // floor; the family is quarantined out of routing until it recovers.
    let quarantined = LintContext::new(&c).with_quarantine(QuarantineMeta {
        technique: TechniqueKind::OnlineSampling,
        coverage_bp: 5_500,
        floor_bp: 8_000,
    });
    show(
        LintCode::A014TechniqueQuarantined,
        &Query::scan("t")
            .aggregate(vec![], vec![AggExpr::sum(col("v"), "s")])
            .build(),
        &quarantined,
    );

    // --- Session wiring: the router runs this same analysis once per
    // query, skips the probes it rules out, and attaches the lint table
    // to the answer's report.
    let session = AqpSession::new(&c);
    let ans = session
        .answer(&grouped_sum("t"), &ErrorSpec::new(0.2, 0.9), 7)
        .unwrap();
    println!("== session: EXPLAIN ANALYZE with the lint table ==\n");
    for line in ans.report.explain_analyze().lines() {
        println!("   {line}");
    }
    let routing = ans.report.routing.as_ref().unwrap();
    let skipped = routing
        .candidates
        .iter()
        .filter(|cand| matches!(cand.outcome, CandidateOutcome::StaticallyIneligible(_)))
        .count();
    println!("\n   probes skipped on static verdicts: {skipped}");
}
