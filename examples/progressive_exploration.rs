//! Interactive exploration with online aggregation: watch the running
//! estimate and its confidence interval tighten as random blocks stream
//! in, stop when it is good enough — and see a ripple join converge on a
//! two-table aggregate.
//!
//! ```sh
//! cargo run --release -p aqp-bench --example progressive_exploration
//! ```

use std::sync::Arc;

use aqp_core::{OnlineAggregator, RippleJoin};
use aqp_expr::{col, lit};
use aqp_storage::Catalog;
use aqp_workload::{build_star_schema, skewed_table, StarScale};

fn main() {
    // Single-table progressive AVG with a live interval.
    println!("== progressive AVG(v) WHERE sel < 0.3 over 1M skewed rows ==\n");
    let table = Arc::new(skewed_table("t", 1_000_000, 100, 1.1, 1024, 3));
    let truth = {
        let sel = table.column_f64("sel").unwrap();
        let v = table.column_f64("v").unwrap();
        let (mut s, mut n) = (0.0, 0.0);
        for (x, q) in v.iter().zip(&sel) {
            if *q < 0.3 {
                s += x;
                n += 1.0;
            }
        }
        s / n
    };
    println!("ground truth: {truth:.4}\n");
    let mut ola =
        OnlineAggregator::new(Arc::clone(&table), "v", Some(col("sel").lt(lit(0.3))), 17).unwrap();
    println!(
        "{:>9} {:>12} {:>24} {:>10}",
        "blocks", "estimate", "95% interval", "rel.width"
    );
    let checkpoints = [5, 10, 20, 40, 80, 160, 320, 640, 977];
    for &target in &checkpoints {
        while ola.blocks_processed() < target {
            if !ola.step().unwrap() {
                break;
            }
        }
        let e = ola.estimate_avg();
        let ci = e.ci(0.95);
        println!(
            "{:>9} {:>12.4} [{:>10.4}, {:>9.4}] {:>9.3}%",
            ola.blocks_processed(),
            e.value,
            ci.lo,
            ci.hi,
            100.0 * ci.relative_half_width(),
        );
        if ci.relative_half_width() < 0.002 && ola.fraction_processed() < 1.0 {
            println!(
                "          ^ good enough — an analyst would stop here, at {:.1}% of the data",
                100.0 * ola.fraction_processed()
            );
        }
    }
    println!(
        "\nfinal error vs truth: {:.5}%",
        100.0 * (ola.estimate_avg().value - truth).abs() / truth
    );

    // Ripple join: progressive SUM over a join.
    println!("\n== ripple join: SUM(l_price) over lineitem ⋈ orders ==\n");
    let catalog = Catalog::new();
    build_star_schema(&catalog, &StarScale::small(), 5).unwrap();
    let lineitem = catalog.get("lineitem").unwrap();
    let orders = catalog.get("orders").unwrap();
    let truth: f64 = lineitem.column_f64("l_price").unwrap().iter().sum();
    // FK join: every lineitem matches exactly one order, so the join SUM
    // equals the fact-side SUM — easy to verify.
    let mut rj = RippleJoin::new(&lineitem, "l_orderkey", "l_price", &orders, "o_key", 11).unwrap();
    println!(
        "{:>16} {:>16} {:>10}",
        "progress (L,R)", "estimate", "error"
    );
    for _ in 0..12 {
        rj.step(8_000);
        let (pl, pr) = rj.progress();
        let est = rj.estimate_sum();
        println!(
            "{:>7.1}%,{:>6.1}% {:>16.0} {:>9.2}%",
            100.0 * pl,
            100.0 * pr,
            est,
            100.0 * (est - truth).abs() / truth,
        );
        if pl >= 1.0 && pr >= 1.0 {
            break;
        }
    }
    while rj.step(50_000) {}
    println!(
        "\nconsumed everything: estimate {:.0} vs truth {truth:.0}",
        rj.estimate_sum()
    );
}
