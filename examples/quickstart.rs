//! Quickstart: open an `AqpSession`, ask an aggregation query with an
//! error contract, and let the router pick the cheapest technique whose
//! guarantee covers it — orders of magnitude cheaper than the exact scan.
//!
//! ```sh
//! cargo run --release -p aqp-bench --example quickstart
//! ```

use aqp_core::{AqpSession, ErrorSpec, ExecutionPath};
use aqp_engine::{execute, AggExpr, Query};
use aqp_expr::{col, lit};
use aqp_storage::Catalog;
use aqp_workload::uniform_table;

fn main() {
    // 1. Load data: a 2M-row table of measurements split into 1024-row
    //    blocks (blocks are the unit of I/O, like database pages).
    let catalog = Catalog::new();
    println!("generating 2,000,000 rows ...");
    catalog
        .register(uniform_table("readings", 2_000_000, 1024, 42))
        .unwrap();

    // 2. The question: total of `v` over the half of the table selected by
    //    the predicate, to within ±2% with 95% confidence.
    let plan = Query::scan("readings")
        .filter(col("sel").lt(lit(0.5)))
        .aggregate(vec![], vec![AggExpr::sum(col("v"), "total")])
        .build();
    let spec = ErrorSpec::new(0.02, 0.95);

    // 3. Exact baseline.
    let start = std::time::Instant::now();
    let exact = execute(&plan, &catalog).unwrap();
    let exact_wall = start.elapsed();
    let truth = exact.rows()[0][0].as_f64().unwrap();
    println!("\nexact answer : {truth:.2}");
    println!(
        "exact cost   : {} rows scanned in {exact_wall:?}",
        exact.stats().rows_scanned
    );

    // 4. One front door: the session probes every family's eligibility and
    //    routes to the first whose guarantee covers the contract.
    let session = AqpSession::new(&catalog);
    let answer = session.answer(&plan, &spec, 7).unwrap();
    let routing = answer.report.routing.as_ref().unwrap();
    println!("\nrouting      : {}", routing.summary());
    println!("winner       : {}", routing.winner);

    let est = answer.scalar_estimate("total").unwrap();
    let ci = &answer.global().intervals[0];
    println!(
        "\napprox answer: {:.2}  (95% CI [{:.2}, {:.2}])",
        est.value, ci.lo, ci.hi
    );
    println!(
        "approx cost  : {} rows scanned ({:.2}% of the table) in {:?}",
        answer.report.rows_scanned,
        100.0 * answer.report.touched_fraction(),
        answer.report.wall,
    );
    match &answer.report.path {
        ExecutionPath::OnlineBlockSample {
            pilot_rate,
            final_rate,
        } => println!("plan         : pilot at {pilot_rate:.3}, final block rate {final_rate:.4}"),
        other => println!("plan         : {other:?}"),
    }
    println!(
        "\nachieved error: {:.3}% (contract: ≤ {:.1}%)",
        100.0 * est.relative_error(truth),
        100.0 * spec.relative_error,
    );
    assert!(ci.contains(truth), "the interval should cover the truth");
}
