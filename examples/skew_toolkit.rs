//! The skew toolkit: what to reach for when uniform sampling fails.
//!
//! One heavy-tailed sales table, four tools — a plain uniform sample (the
//! failure), an outlier index, a measure-biased (PPS) sample, and the
//! distinct sampler — plus the middleware rewrite that turns any of the
//! uniform-weight designs into plain engine SQL.
//!
//! ```sh
//! cargo run --release -p aqp-bench --example skew_toolkit
//! ```

use aqp_core::rewrite::answer_via_rewrite;
use aqp_core::{AggQuery, AggSpec, LinearAgg};
use aqp_expr::col;
use aqp_sampling::{bernoulli_rows, build_outlier_index, distinct_sample, pps_sample};
use aqp_storage::{Catalog, DataType, Field, Schema, Table, TableBuilder, Value};
use aqp_workload::Zipf;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A sales table where 1% of orders carry most of the revenue and
/// customers are Zipf-active.
fn sales(n: usize, seed: u64) -> Table {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut customers = Zipf::new(5_000, 1.2, seed ^ 0xC);
    let schema = Schema::new(vec![
        Field::new("customer", DataType::Int64),
        Field::new("revenue", DataType::Float64),
    ]);
    let mut b = TableBuilder::with_block_capacity("sales", schema, 512);
    for _ in 0..n {
        let u: f64 = rng.gen::<f64>().max(1e-12);
        b.push_row(&[
            Value::Int64(customers.sample() as i64),
            Value::Float64(u.powf(-1.0 / 1.4)), // Pareto revenue
        ])
        .unwrap();
    }
    b.finish()
}

fn main() {
    const N: usize = 1_000_000;
    println!("generating {N} heavy-tailed sales rows ...\n");
    let table = sales(N, 7);
    let truth: f64 = table.column_f64("revenue").unwrap().iter().sum();
    println!("exact SUM(revenue) = {truth:.0}\n");

    // Tool 0 (the failure): a 2% uniform sample.
    let uni = bernoulli_rows(&table, 0.02, 3);
    let e = uni.estimate_sum("revenue").unwrap();
    println!(
        "uniform 2%          : {:>14.0}  (err {:+.1}%, rel-SE {:.1}%) ← swings wildly with the tail",
        e.value,
        100.0 * (e.value - truth) / truth,
        100.0 * e.relative_std_err()
    );

    // Tool 1: outlier index — top 1% exact, 1% sample of the rest.
    let oi = build_outlier_index(&table, "revenue", 0.01, 0.01, 3).unwrap();
    let e = oi.estimate_sum().unwrap();
    println!(
        "outlier index 1%+1% : {:>14.0}  (err {:+.2}%, rel-SE {:.2}%) from {} stored rows",
        e.value,
        100.0 * (e.value - truth) / truth,
        100.0 * e.relative_std_err(),
        oi.stored_rows()
    );

    // Tool 2: measure-biased sampling — 1 000 PPS draws.
    let pps = pps_sample(&table, "revenue", 1_000, 3).unwrap();
    let e = pps.estimate_sum("revenue").unwrap();
    println!(
        "PPS 1000 draws      : {:>14.0}  (err {:+.2e}%, zero variance on its own measure)",
        e.value,
        100.0 * (e.value - truth) / truth
    );

    // Tool 3: distinct sampler — every customer represented.
    let ds = distinct_sample(&table, &["customer"], 2, 0.005, 3).unwrap();
    let mut seen = std::collections::HashSet::new();
    for c in ds.table.column_f64("customer").unwrap() {
        seen.insert(c as i64);
    }
    println!(
        "distinct cap-2      : every active customer present ({} keys in {} rows)",
        seen.len(),
        ds.num_rows()
    );

    // The middleware path: the outlier-friendly uniform design, answered
    // as plain engine SQL over the weighted sample.
    println!("\n== middleware rewrite: SUM/COUNT/AVG via the exact engine over the sample ==\n");
    let catalog = Catalog::new();
    catalog.register(table).unwrap();
    let query = AggQuery {
        fact_table: "sales".into(),
        joins: vec![],
        predicate: None,
        group_by: vec![],
        aggregates: vec![
            AggSpec {
                kind: LinearAgg::Sum,
                expr: col("revenue"),
                alias: "total".into(),
            },
            AggSpec {
                kind: LinearAgg::CountStar,
                expr: aqp_expr::lit(1i64),
                alias: "orders".into(),
            },
            AggSpec {
                kind: LinearAgg::Avg,
                expr: col("revenue"),
                alias: "avg_rev".into(),
            },
        ],
    };
    let result = answer_via_rewrite(&catalog, &query, &uni).unwrap();
    let row = result.rows().remove(0);
    println!(
        "rewritten SQL answer: total ≈ {:.0}, orders ≈ {:.0}, avg ≈ {:.4}",
        row[0].as_f64().unwrap(),
        row[1].as_f64().unwrap(),
        row[2].as_f64().unwrap()
    );
    println!(
        "                      (vs exact total {truth:.0}, orders {N}) — \
         no engine changes, just SUM(x·w)"
    );
}
