//! Log-analytics scenario: "how many distinct users hit the service?" —
//! the query NSB uses to show that sampling has hard limits and sketches
//! fill the gap. A uniform sample *cannot* estimate distinct counts
//! (every scale-up rule is wrong for some distribution), while a
//! kilobyte-scale HLL or KMV answers within a couple of percent.
//!
//! ```sh
//! cargo run --release -p aqp-bench --example log_analytics_distinct
//! ```

use aqp_engine::{execute, AggExpr, Query};
use aqp_expr::col;
use aqp_sampling::bernoulli_rows;
use aqp_sketch::{HyperLogLog, KmvSketch};
use aqp_storage::{Catalog, DataType, Field, Schema, TableBuilder, Value};
use aqp_workload::Zipf;

fn main() {
    // Build a 1M-event log where user activity is Zipf-skewed: a few bots
    // generate most events, most users appear a handful of times.
    println!("generating 1,000,000 log events over ~120k users ...");
    let mut zipf = Zipf::new(400_000, 1.05, 99);
    let schema = Schema::new(vec![
        Field::new("user_id", DataType::Int64),
        Field::new("latency_ms", DataType::Float64),
    ]);
    let mut b = TableBuilder::with_block_capacity("events", schema, 1024);
    for i in 0..1_000_000u64 {
        b.push_row(&[
            Value::Int64(zipf.sample() as i64),
            Value::Float64((i % 997) as f64),
        ])
        .unwrap();
    }
    let catalog = Catalog::new();
    catalog.register(b.finish()).unwrap();
    let events = catalog.get("events").unwrap();

    // Ground truth via the exact engine (expensive: hash set over 1M rows).
    let (truth, exact_wall) = {
        let start = std::time::Instant::now();
        let r = execute(
            &Query::scan("events")
                .aggregate(vec![], vec![AggExpr::count_distinct(col("user_id"), "d")])
                .build(),
            &catalog,
        )
        .unwrap();
        (
            match r.scalar() {
                Value::Int64(d) => d as f64,
                other => panic!("unexpected {other:?}"),
            },
            start.elapsed(),
        )
    };
    println!("exact COUNT(DISTINCT user_id) = {truth} in {exact_wall:?}\n");

    // Attempt 1: a 1% uniform row sample with the naive 1/q scale-up.
    let sample = bernoulli_rows(&events, 0.01, 7);
    let mut seen = std::collections::HashSet::new();
    for uid in sample.table.column_f64("user_id").unwrap() {
        seen.insert(uid as i64);
    }
    let naive = seen.len() as f64 / 0.01;
    println!(
        "1% sample, naive scale-up : {naive:>12.0}  (error {:+.1}%) ← sampling fails here",
        100.0 * (naive - truth) / truth
    );
    let unscaled = seen.len() as f64;
    println!(
        "1% sample, no scale-up    : {unscaled:>12.0}  (error {:+.1}%) ← also wrong",
        100.0 * (unscaled - truth) / truth
    );

    // Attempt 2: dedicated distinct sketches in one streaming pass.
    let mut hll = HyperLogLog::new(14);
    let mut kmv = KmvSketch::new(4096);
    let start = std::time::Instant::now();
    for (_, block) in events.iter_blocks() {
        let col = block.column(0);
        for i in 0..col.len() {
            let h = aqp_expr::stable_hash64(&col.get(i));
            hll.insert_hashed(h);
            kmv.insert_hashed(h);
        }
    }
    let sketch_wall = start.elapsed();
    println!(
        "HyperLogLog (p=14, {} KiB): {:>12.0}  (error {:+.2}%)",
        hll.size_bytes() / 1024,
        hll.estimate(),
        100.0 * (hll.estimate() - truth) / truth
    );
    println!(
        "KMV (k=4096, {} KiB)      : {:>12.0}  (error {:+.2}%)",
        kmv.size_bytes() / 1024,
        kmv.estimate(),
        100.0 * (kmv.estimate() - truth) / truth
    );
    println!("\nsketch build time: {sketch_wall:?} (single pass, mergeable across shards)");

    // Bonus: sketches merge — split the log in two, sketch separately,
    // merge, and get the same answer (the distributed-aggregation story).
    let mut left = HyperLogLog::new(14);
    let mut right = HyperLogLog::new(14);
    for (bi, block) in events.iter_blocks() {
        let target = if bi % 2 == 0 { &mut left } else { &mut right };
        let col = block.column(0);
        for i in 0..col.len() {
            target.insert_hashed(aqp_expr::stable_hash64(&col.get(i)));
        }
    }
    left.merge(&right).expect("same precision");
    println!(
        "merged shard sketches     : {:>12.0}  (same estimate as the single-pass build: {})",
        left.estimate(),
        (left.estimate() - hll.estimate()).abs() < 1e-9
    );
}
