#!/usr/bin/env bash
# Full local gate: format, lints, static-analysis hygiene, and the whole
# test suite. Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check

# Clippy tier: warnings are denied wholesale, plus a curated set the
# default `warn` level leaves off — the suspicious group and the
# leftover-debris lints, and a small pedantic subset that catches real
# bugs (lossless casts and redundant clones) without fighting idiom.
cargo clippy --workspace --all-targets -- \
  -D warnings \
  -D clippy::suspicious \
  -D clippy::dbg_macro \
  -D clippy::todo \
  -D clippy::unimplemented \
  -D clippy::unnecessary_cast \
  -D clippy::redundant_clone

# Unsafe audit: every crate must carry `#![deny(unsafe_code)]`, and any
# future `#[allow]`-ed unsafe block must carry a `// SAFETY:` comment on
# the preceding line.
for lib in crates/*/src/lib.rs; do
  if ! grep -q '#!\[deny(unsafe_code)\]' "$lib"; then
    echo "check.sh: $lib is missing #![deny(unsafe_code)]" >&2
    exit 1
  fi
done
unsound=$(grep -rn --include='*.rs' 'unsafe \(fn\|impl\|{\)' crates/*/src \
  | grep -v '^\s*//' \
  | while IFS=: read -r file line _; do
      prev=$(sed -n "$((line - 1))p" "$file")
      case "$prev" in
        *"// SAFETY:"*) ;;
        *) echo "$file:$line" ;;
      esac
    done) || true
if [ -n "$unsound" ]; then
  echo "check.sh: unsafe without a '// SAFETY:' comment on the line above:" >&2
  echo "$unsound" >&2
  exit 1
fi

# Unwrap budget: the router and executor hot paths were un-unwrapped;
# bare `.unwrap()`/`.expect(` must not creep back into their non-test
# code (the count is the lines above `#[cfg(test)]`).
for hot in crates/core/src/session.rs crates/engine/src/exec.rs; do
  count=$(awk '/#\[cfg\(test\)\]/{exit} /\.unwrap\(\)|\.expect\(/{n++} END{print n+0}' "$hot")
  if [ "$count" -gt 0 ]; then
    echo "check.sh: $hot has $count .unwrap()/.expect( in non-test code (budget: 0)" >&2
    exit 1
  fi
done

# Rustdoc gate: the API docs must build clean (broken intra-doc links
# and malformed doc comments are warnings, and warnings are denied).
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

# Operator docs: every relative markdown link must resolve. (The content
# pins — every metric documented, every crate named — live in
# tests/docs.rs and run with the suite below.)
scripts/check_doc_links.sh

# Observability crate first: its suite includes the guarded disabled-span
# overhead smoke test, the cheapest signal when instrumentation regresses.
cargo test -q -p aqp-obs
cargo test -q

# Merge bench: partial decode+fold cost, per-synopsis wire size, and the
# maintain-vs-rebuild gate (incremental maintenance must beat a rebuild
# by >= 5x on a 1% append). Runs before bench_smoke so the freshly
# emitted BENCH_merge.json is shape-checked along with the rest.
cargo run -q --release -p aqp-bench --bin bench_merge

# Audit bench: added wall of ground-truth auditing at 1% and 5% sampling
# rates plus the scoreboard snapshot cost, with the always-on acceptance
# gate (1%-rate overhead <= 5%). Emits BENCH_audit.json for bench_smoke.
cargo run -q --release -p aqp-bench --bin bench_audit

# Server bench: mixed-workload QPS/latency through the concurrent
# service at 1/2/4/8 clients, cold-vs-cached routing cost (cache must be
# >= 5x cheaper), and bounded-queue rejection under collision. Emits
# BENCH_server.json for bench_smoke.
cargo run -q --release -p aqp-bench --bin bench_server

# Bench smoke: tiny-row kernel-vs-scalar equivalence at threads=1 plus
# shape validation of every BENCH_*.json report — seconds, not the
# minutes a full Criterion run costs.
cargo run -q --release -p aqp-bench --bin bench_smoke
