#!/usr/bin/env bash
# Full local gate: format, lints, and the whole test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace -- -D warnings
# Observability crate first: its suite includes the guarded disabled-span
# overhead smoke test, the cheapest signal when instrumentation regresses.
cargo test -q -p aqp-obs
cargo test -q
