#!/usr/bin/env bash
# Full local gate: format, lints, static-analysis hygiene, and the whole
# test suite. Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check

# Clippy tier: warnings are denied wholesale, plus a curated set the
# default `warn` level leaves off — the suspicious group and the
# leftover-debris lints, and a small pedantic subset that catches real
# bugs (lossless casts and redundant clones) without fighting idiom.
cargo clippy --workspace --all-targets -- \
  -D warnings \
  -D clippy::suspicious \
  -D clippy::dbg_macro \
  -D clippy::todo \
  -D clippy::unimplemented \
  -D clippy::unnecessary_cast \
  -D clippy::redundant_clone

# Conformance gate: the typed source linter (C001-C007 — metric names
# from aqp_obs::names, unwrap budget, deny(unsafe_code) presence, SAFETY
# pairing, span pairing, codec tag registry, declared lock orders) plus
# the exhaustive mini-loom race check of the admission scheduler and
# plan-cache epoch models. One line per gate; non-zero exit on any
# Error-severity C-code or model violation.
cargo run -q --release -p aqp-conformance -- --workspace --race

# Rustdoc gate: the API docs must build clean (broken intra-doc links
# and malformed doc comments are warnings, and warnings are denied).
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

# Operator docs: every relative markdown link must resolve. (The content
# pins — every metric documented, every crate named — live in
# tests/docs.rs and run with the suite below.)
scripts/check_doc_links.sh

# Observability crate first: its suite includes the guarded disabled-span
# overhead smoke test, the cheapest signal when instrumentation regresses.
cargo test -q -p aqp-obs
cargo test -q

# Merge bench: partial decode+fold cost, per-synopsis wire size, and the
# maintain-vs-rebuild gate (incremental maintenance must beat a rebuild
# by >= 5x on a 1% append). Runs before bench_smoke so the freshly
# emitted BENCH_merge.json is shape-checked along with the rest.
cargo run -q --release -p aqp-bench --bin bench_merge

# Audit bench: added wall of ground-truth auditing at 1% and 5% sampling
# rates plus the scoreboard snapshot cost, with the always-on acceptance
# gate (1%-rate overhead <= 5%). Emits BENCH_audit.json for bench_smoke.
cargo run -q --release -p aqp-bench --bin bench_audit

# Server bench: mixed-workload QPS/latency through the concurrent
# service at 1/2/4/8 clients, cold-vs-cached routing cost (cache must be
# >= 5x cheaper), and bounded-queue rejection under collision. Emits
# BENCH_server.json for bench_smoke.
cargo run -q --release -p aqp-bench --bin bench_server

# Bench smoke: tiny-row kernel-vs-scalar equivalence at threads=1 plus
# shape validation of every BENCH_*.json report — seconds, not the
# minutes a full Criterion run costs.
cargo run -q --release -p aqp-bench --bin bench_smoke
