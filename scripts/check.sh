#!/usr/bin/env bash
# Full local gate: format, lints, and the whole test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace -- -D warnings
cargo test -q
