#!/usr/bin/env bash
# Dead-link checker for the markdown docs: every *relative* link target
# in README.md, docs/*.md, DESIGN.md, and EXPERIMENTS.md must exist on
# disk. External (scheme://) and intra-page (#anchor) links are skipped;
# a fragment on a relative link is checked against the file part only.
set -euo pipefail
cd "$(dirname "$0")/.."

status=0
for doc in README.md DESIGN.md EXPERIMENTS.md docs/*.md; do
  dir=$(dirname "$doc")
  # Inline markdown links: [text](target). One per line via grep -o.
  while IFS= read -r target; do
    case "$target" in
      *://* | '#'*) continue ;; # external URL or same-page anchor
    esac
    file=${target%%#*}
    if [ ! -e "$dir/$file" ] && [ ! -e "$file" ]; then
      echo "check_doc_links.sh: $doc links to missing file: $target" >&2
      status=1
    fi
  done < <(grep -o '\[[^][]*\]([^()]*)' "$doc" | sed 's/^.*(//; s/)$//')
done

if [ "$status" -ne 0 ]; then
  exit "$status"
fi
echo "check_doc_links.sh: all relative links resolve"
