//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), range / `any` /
//! tuple / `prop_map` / `prop::collection::vec` strategies, and the
//! `prop_assert!` family. Failing cases report the case number and the
//! deterministic per-test seed; there is no shrinking (failures are
//! already reproducible because generation is seeded by test name).

#![deny(unsafe_code)]

use std::ops::Range;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (`cases` = property evaluations per test).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The inputs were rejected by `prop_assume!` (case is retried).
    Reject(String),
}

/// The RNG handed to strategies.
pub type TestRng = SmallRng;

/// Builds the deterministic RNG for one test (used by `proptest!`).
pub fn rng_for(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}

/// FNV-1a hash of the test name: the deterministic per-test seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A generator of values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A value always generated as-is.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a whole-domain default strategy (the `any::<T>()` surface).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, wide-range floats (no NaN/inf — matches how the tests
        // use `any::<f64>()` upstream with the default strategy filtered).
        let mag = rng.gen_range(-300i32..300) as f64;
        let mantissa: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        mantissa * 10f64.powf(mag / 10.0)
    }
}

/// Strategy wrapper produced by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! strategy_for_tuple {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
strategy_for_tuple! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// A strategy for `Vec<S::Value>` with length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose length is uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror of `proptest::prop` (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a property inside `proptest!`, failing the case (not
/// panicking directly) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__pa, __pb) = (&$a, &$b);
        $crate::prop_assert!(
            *__pa == *__pb,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            __pa,
            __pb
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__pa, __pb) = (&$a, &$b);
        $crate::prop_assert!(*__pa == *__pb, $($fmt)+);
    }};
}

/// Asserts inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__pa, __pb) = (&$a, &$b);
        $crate::prop_assert!(
            *__pa != *__pb,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            __pa
        );
    }};
}

/// Rejects the current case (retried with fresh inputs).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// The property-test entry macro: turns `fn name(x in strategy, ...)`
/// items into `#[test]` functions running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut __rng: $crate::TestRng = $crate::rng_for(__seed);
            let mut __passed: u32 = 0;
            let mut __attempts: u32 = 0;
            while __passed < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __config.cases.saturating_mul(16).max(1024),
                    "proptest {}: too many rejected cases ({} attempts)",
                    stringify!($name),
                    __attempts
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { { $body } ::std::result::Result::Ok(()) })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => panic!(
                        "proptest {} failed at case {} (seed {:#x}):\n{}",
                        stringify!($name),
                        __passed,
                        __seed,
                        __msg
                    ),
                }
            }
        }
        $crate::__proptest_items!{ cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges respect their bounds.
        fn range_bounds(x in -50i64..50, u in 0usize..10, f in -1.5f64..2.5) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!(u < 10);
            prop_assert!((-1.5..2.5).contains(&f));
        }

        /// Vectors hit the requested length window and map applies.
        fn vec_and_map(
            v in collection::vec((0i64..10).prop_map(|x| x * 2), 1..20),
            b in any::<bool>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|x| x % 2 == 0));
            prop_assume!(b | !b);
        }

        /// Tuple strategies generate componentwise.
        fn tuples(pair in (0u64..5, -1.0f64..1.0)) {
            prop_assert!(pair.0 < 5);
            prop_assert!((-1.0..1.0).contains(&pair.1));
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(crate::seed_for("a::b"), crate::seed_for("a::c"));
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    #[allow(unnameable_test_items)]
    fn failures_panic_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn inner(x in 0i64..10) {
                prop_assert!(x < 0, "x was {}", x);
            }
        }
        inner();
    }
}
