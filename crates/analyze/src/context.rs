//! What the analyzer knows besides the plan: catalog metadata, synopsis
//! metadata, and the routing policy's thresholds.

use aqp_storage::Catalog;

use crate::technique::MIN_SAMPLING_BLOCKS;

/// The routing-policy thresholds the analyzer folds into its verdicts.
/// Mirrors the session's configuration; `Default` matches
/// `SessionConfig::default()` so `lint_plan` against a default session
/// needs no explicit policy.
#[derive(Debug, Clone, Copy)]
pub struct LintPolicy {
    /// Maximum synopsis staleness at which the offline family is trusted.
    pub max_staleness: f64,
    /// Minimum fact-table blocks for pilot-planned sampling.
    pub min_sampling_blocks: u64,
    /// Minimum per-group sample rows the rewrite demands at runtime (used
    /// for the support-risk lint, not for a static verdict).
    pub rewrite_min_group_support: u64,
    /// Whether progressive online aggregation participates in routing.
    pub progressive: bool,
}

impl Default for LintPolicy {
    fn default() -> Self {
        Self {
            max_staleness: 0.1,
            min_sampling_blocks: MIN_SAMPLING_BLOCKS,
            rewrite_min_group_support: 30,
            progressive: true,
        }
    }
}

/// Metadata of one offline synopsis, as the analyzer sees it. The session
/// derives these from its `OfflineStore`; standalone users construct them
/// by hand (or pass none).
#[derive(Debug, Clone)]
pub struct SynopsisMeta {
    /// The fact table the synopsis summarizes.
    pub table: String,
    /// The column the stratified sample is stratified on.
    pub stratified_on: String,
    /// Relative row-count divergence from the live base table; `None` when
    /// the base table no longer exists in the catalog.
    pub staleness: Option<f64>,
}

/// One active quarantine, as the analyzer sees it. The session derives
/// these from its accuracy scoreboard; like [`SynopsisMeta`] they are
/// session metadata the analyzer folds in so predicted and enforced
/// decline reasons compare `==`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantineMeta {
    /// The quarantined technique.
    pub technique: crate::TechniqueKind,
    /// Observed coverage over the audit window, in basis points.
    pub coverage_bp: u32,
    /// The configured coverage floor, in basis points.
    pub floor_bp: u32,
}

/// Everything [`crate::lint_plan`] consults besides the plan itself.
/// Metadata-only by contract — analysis must never touch base-table data.
#[derive(Debug, Clone)]
pub struct LintContext<'a> {
    /// The catalog (table existence, block counts — metadata only).
    pub catalog: &'a Catalog,
    /// Known offline synopses.
    pub synopses: Vec<SynopsisMeta>,
    /// Techniques currently quarantined by the accuracy auditor.
    pub quarantines: Vec<QuarantineMeta>,
    /// Policy thresholds.
    pub policy: LintPolicy,
}

impl<'a> LintContext<'a> {
    /// A context with no synopses and the default policy.
    pub fn new(catalog: &'a Catalog) -> Self {
        Self {
            catalog,
            synopses: Vec::new(),
            quarantines: Vec::new(),
            policy: LintPolicy::default(),
        }
    }

    /// Adds one synopsis' metadata.
    pub fn with_synopsis(mut self, meta: SynopsisMeta) -> Self {
        self.synopses.push(meta);
        self
    }

    /// Adds one active quarantine.
    pub fn with_quarantine(mut self, meta: QuarantineMeta) -> Self {
        self.quarantines.push(meta);
        self
    }

    /// Replaces the policy.
    pub fn with_policy(mut self, policy: LintPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The synopsis covering `table`, if any.
    pub fn synopsis_for(&self, table: &str) -> Option<&SynopsisMeta> {
        self.synopses.iter().find(|s| s.table == table)
    }

    /// The active quarantine for `technique`, if any.
    pub fn quarantine_for(&self, technique: crate::TechniqueKind) -> Option<&QuarantineMeta> {
        self.quarantines.iter().find(|q| q.technique == technique)
    }
}
