//! The analyzer's output: per-family verdicts on the guarantee lattice,
//! plus the diagnostics stream.

use std::fmt::Write as _;

use crate::code::{LintCode, Severity};
use crate::diag::Diagnostic;
use crate::technique::{DeclineReason, TechniqueKind};

/// Where an answer can land on the guarantee lattice, ordered best-first:
///
/// ```text
/// Exact  >  APriori  >  APosteriori  >  PointEstimate  >  Unattainable
/// ```
///
/// `Exact` dominates because its "interval" is a point of width zero known
/// before execution; `Unattainable` is the bottom (the family cannot answer
/// at all). `Ord` follows the lattice, so `max()` over verdicts is "the
/// best answer this plan can statically get".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuaranteeClass {
    /// The family cannot answer this plan at all.
    Unattainable,
    /// Point estimates only; no interval is carried.
    PointEstimate,
    /// Error known only after (or during) execution.
    APosteriori,
    /// Error contract honored before execution.
    APriori,
    /// Exact execution: zero-width intervals, known a priori.
    Exact,
}

impl GuaranteeClass {
    /// Position on the lattice (higher = stronger).
    fn rank(&self) -> u8 {
        match self {
            Self::Unattainable => 0,
            Self::PointEstimate => 1,
            Self::APosteriori => 2,
            Self::APriori => 3,
            Self::Exact => 4,
        }
    }

    /// Stable kebab-case name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Unattainable => "unattainable",
            Self::PointEstimate => "point-estimate",
            Self::APosteriori => "a-posteriori",
            Self::APriori => "a-priori",
            Self::Exact => "exact",
        }
    }
}

impl PartialOrd for GuaranteeClass {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for GuaranteeClass {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.rank().cmp(&other.rank())
    }
}

impl std::fmt::Display for GuaranteeClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The analyzer's static verdict on one family: either the guarantee class
/// it can attain for this plan, or the exact [`DeclineReason`] its
/// eligibility probe would return.
#[derive(Debug, Clone, PartialEq)]
pub struct TechniqueVerdict {
    /// The family.
    pub kind: TechniqueKind,
    /// Best statically attainable guarantee ([`GuaranteeClass::Unattainable`]
    /// iff `blocked_by` is set).
    pub guarantee: GuaranteeClass,
    /// The predicted a-priori decline. For routable families this is, by
    /// the consistency contract, *identical* to what the family's
    /// `eligibility` probe would return — the router skips the probe on
    /// the strength of it.
    pub blocked_by: Option<DeclineReason>,
}

/// The full result of statically analyzing one plan: one verdict per
/// family (policy order, exact last) and the diagnostics stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Diagnostics in emission order (pass order, stable).
    pub diagnostics: Vec<Diagnostic>,
    /// One verdict per family, in routing-policy order.
    pub verdicts: Vec<TechniqueVerdict>,
    /// Whether the plan normalized to the star linear-aggregate shape.
    pub normalized: bool,
    /// Static upper bound on the root aggregation's group count, when the
    /// key shapes imply one (`x % k` has at most `|k|` non-negative
    /// residues, a literal key has one value, a global aggregate has one
    /// group). Consumers use it to pre-size aggregation hash maps — it is
    /// a sizing hint, not a semantic guarantee, so an under-estimate only
    /// costs a rehash. `None` when no bound is derivable or the plan's
    /// root is not an aggregation.
    pub group_cardinality_hint: Option<u64>,
}

impl Analysis {
    /// The verdict for `kind`.
    ///
    /// # Panics
    /// Panics if `kind` has no verdict (every [`TechniqueKind`] does).
    pub fn verdict(&self, kind: TechniqueKind) -> &TechniqueVerdict {
        self.verdicts
            .iter()
            .find(|v| v.kind == kind)
            .unwrap_or_else(|| panic!("no verdict for {kind}"))
    }

    /// The predicted decline for `kind`, if the analyzer blocks it.
    pub fn blocked_by(&self, kind: TechniqueKind) -> Option<&DeclineReason> {
        self.verdict(kind).blocked_by.as_ref()
    }

    /// Whether `kind` is statically eligible (no predicted decline).
    pub fn statically_eligible(&self, kind: TechniqueKind) -> bool {
        self.verdict(kind).blocked_by.is_none()
    }

    /// The strongest guarantee any family (exact included) can attain.
    pub fn best_attainable(&self) -> GuaranteeClass {
        self.verdicts
            .iter()
            .map(|v| v.guarantee)
            .max()
            .unwrap_or(GuaranteeClass::Unattainable)
    }

    /// The strongest guarantee any *approximate* family can attain —
    /// [`GuaranteeClass::Unattainable`] means only exact remains.
    pub fn best_approximate(&self) -> GuaranteeClass {
        self.verdicts
            .iter()
            .filter(|v| v.kind != TechniqueKind::Exact)
            .map(|v| v.guarantee)
            .max()
            .unwrap_or(GuaranteeClass::Unattainable)
    }

    /// The first diagnostic with `code`, if any.
    pub fn diag(&self, code: LintCode) -> Option<&Diagnostic> {
        self.diagnostics.iter().find(|d| d.code == code)
    }

    /// Whether any diagnostic with `code` was emitted.
    pub fn has(&self, code: LintCode) -> bool {
        self.diag(code).is_some()
    }

    /// The worst severity present, `None` when the plan is lint-clean.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Multi-line rendering of verdicts + diagnostics — the `lints:` table
    /// `explain_analyze` embeds.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "best attainable: {} (approximate: {})",
            self.best_attainable(),
            self.best_approximate()
        );
        for v in &self.verdicts {
            match &v.blocked_by {
                Some(r) => {
                    let _ = writeln!(out, "{:<20} {:<14} blocked: {r}", v.kind.name(), "—");
                }
                None => {
                    let _ = writeln!(out, "{:<20} {:<14}", v.kind.name(), v.guarantee.name());
                }
            }
        }
        if self.diagnostics.is_empty() {
            let _ = writeln!(out, "no lints");
        }
        for d in &self.diagnostics {
            let _ = writeln!(out, "{}", d.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_order() {
        use GuaranteeClass::*;
        assert!(Exact > APriori);
        assert!(APriori > APosteriori);
        assert!(APosteriori > PointEstimate);
        assert!(PointEstimate > Unattainable);
        assert_eq!([APriori, Exact, PointEstimate].iter().max(), Some(&Exact));
    }

    #[test]
    fn verdict_lookup_and_best() {
        let a = Analysis {
            diagnostics: vec![],
            verdicts: vec![
                TechniqueVerdict {
                    kind: TechniqueKind::OnlineSampling,
                    guarantee: GuaranteeClass::Unattainable,
                    blocked_by: Some(DeclineReason::TableTooSmall {
                        blocks: 1,
                        min_blocks: 4,
                    }),
                },
                TechniqueVerdict {
                    kind: TechniqueKind::MiddlewareRewrite,
                    guarantee: GuaranteeClass::PointEstimate,
                    blocked_by: None,
                },
                TechniqueVerdict {
                    kind: TechniqueKind::Exact,
                    guarantee: GuaranteeClass::Exact,
                    blocked_by: None,
                },
            ],
            normalized: true,
            group_cardinality_hint: None,
        };
        assert!(!a.statically_eligible(TechniqueKind::OnlineSampling));
        assert!(a.statically_eligible(TechniqueKind::MiddlewareRewrite));
        assert_eq!(a.best_attainable(), GuaranteeClass::Exact);
        assert_eq!(a.best_approximate(), GuaranteeClass::PointEstimate);
        let table = a.render_table();
        assert!(table.contains("online-sampling"));
        assert!(table.contains("blocked: table too small"));
        assert!(table.contains("no lints"));
    }
}
