//! The normalized aggregation-query form the AQP planner understands.
//!
//! Online AQP systems intercept plans whose shape they can reason about
//! statistically and pass everything else through to exact execution —
//! NSB's generality axis in code. [`AggQuery::from_plan`] is that
//! interceptor: it recognizes star-shaped linear-aggregate plans
//! (`Aggregate(Filter?(fact ⋈ dim ⋈ …))`) and declines the rest.
//!
//! Lives here (rather than in `aqp-core`, which re-exports it) so the
//! static analyzer normalizes plans with the *same* code the router uses —
//! the two cannot disagree about which plans are in shape.

use aqp_engine::{AggExpr, AggFunc, LogicalPlan, Query};
use aqp_expr::Expr;

/// One foreign-key join from the fact table to a dimension table.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinSpec {
    /// Dimension table name.
    pub dim_table: String,
    /// FK column on the fact side.
    pub fact_key: String,
    /// Key column on the dimension side.
    pub dim_key: String,
}

/// The linear aggregates the sampling theory covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinearAgg {
    /// `COUNT(*)`.
    CountStar,
    /// `SUM(expr)`.
    Sum,
    /// `AVG(expr)` (ratio of two linear totals).
    Avg,
}

/// One aggregate of an [`AggQuery`].
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// The aggregate kind.
    pub kind: LinearAgg,
    /// Argument expression (ignored for `COUNT(*)`).
    pub expr: Expr,
    /// Output alias.
    pub alias: String,
}

/// A normalized star aggregation query.
#[derive(Debug, Clone, PartialEq)]
pub struct AggQuery {
    /// The fact table (the sampling target).
    pub fact_table: String,
    /// FK joins to dimension tables.
    pub joins: Vec<JoinSpec>,
    /// Optional row predicate (may reference fact and dimension columns).
    pub predicate: Option<Expr>,
    /// Group-by expressions with output names.
    pub group_by: Vec<(Expr, String)>,
    /// Aggregates (all linear).
    pub aggregates: Vec<AggSpec>,
}

impl AggQuery {
    /// Reconstructs the equivalent engine plan.
    pub fn to_plan(&self) -> LogicalPlan {
        let mut q = Query::scan(&self.fact_table);
        for j in &self.joins {
            q = q.join(
                Query::scan(&j.dim_table),
                aqp_expr::col(&j.fact_key),
                aqp_expr::col(&j.dim_key),
            );
        }
        if let Some(p) = &self.predicate {
            q = q.filter(p.clone());
        }
        let aggs = self
            .aggregates
            .iter()
            .map(|a| match a.kind {
                LinearAgg::CountStar => AggExpr::count_star(&a.alias),
                LinearAgg::Sum => AggExpr::sum(a.expr.clone(), &a.alias),
                LinearAgg::Avg => AggExpr::avg(a.expr.clone(), &a.alias),
            })
            .collect();
        q.aggregate(self.group_by.clone(), aggs).build()
    }

    /// Attempts to normalize an engine plan. Returns `None` when the plan
    /// is outside the supported shape — the caller then runs it exactly.
    ///
    /// Supported shape (inside-out): `Scan(fact)`, zero or more
    /// `Join(chain, Scan(dim))` on bare column keys, at most one `Filter`,
    /// exactly one `Aggregate` whose aggregates are all linear.
    pub fn from_plan(plan: &LogicalPlan) -> Option<AggQuery> {
        let LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
        } = plan
        else {
            return None;
        };
        let aggs: Option<Vec<AggSpec>> = aggregates
            .iter()
            .map(|a| {
                let kind = match a.func {
                    AggFunc::CountStar => LinearAgg::CountStar,
                    AggFunc::Sum => LinearAgg::Sum,
                    AggFunc::Avg => LinearAgg::Avg,
                    _ => return None,
                };
                Some(AggSpec {
                    kind,
                    expr: a.expr.clone(),
                    alias: a.alias.clone(),
                })
            })
            .collect();
        let aggs = aggs?;
        if aggs.is_empty() {
            return None;
        }

        // Peel an optional filter.
        let (predicate, mut node): (Option<Expr>, &LogicalPlan) = match input.as_ref() {
            LogicalPlan::Filter {
                input: inner,
                predicate,
            } => (Some(predicate.clone()), inner.as_ref()),
            other => (None, other),
        };

        // Peel the join chain down to the fact scan.
        let mut joins_rev = Vec::new();
        loop {
            match node {
                LogicalPlan::Join {
                    left,
                    right,
                    left_key,
                    right_key,
                } => {
                    let LogicalPlan::Scan { table: dim } = right.as_ref() else {
                        return None;
                    };
                    let (Expr::Column(fk), Expr::Column(dk)) = (left_key, right_key) else {
                        return None;
                    };
                    joins_rev.push(JoinSpec {
                        dim_table: dim.clone(),
                        fact_key: fk.clone(),
                        dim_key: dk.clone(),
                    });
                    node = left.as_ref();
                }
                LogicalPlan::Scan { table } => {
                    joins_rev.reverse();
                    return Some(AggQuery {
                        fact_table: table.clone(),
                        joins: joins_rev,
                        predicate,
                        group_by: group_by.clone(),
                        aggregates: aggs,
                    });
                }
                _ => return None,
            }
        }
    }

    /// Total number of aggregate estimates per group (for Boole splitting).
    pub fn num_aggregates(&self) -> usize {
        self.aggregates.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqp_expr::{col, lit};

    fn star_plan() -> LogicalPlan {
        Query::scan("lineitem")
            .join(Query::scan("orders"), col("l_orderkey"), col("o_key"))
            .filter(col("l_sel").lt(lit(0.1)))
            .aggregate(
                vec![(col("o_priority"), "o_priority".to_string())],
                vec![
                    AggExpr::sum(col("l_price"), "rev"),
                    AggExpr::count_star("n"),
                ],
            )
            .build()
    }

    #[test]
    fn roundtrip_through_from_plan_and_to_plan() {
        let plan = star_plan();
        let q = AggQuery::from_plan(&plan).expect("supported shape");
        assert_eq!(q.fact_table, "lineitem");
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.joins[0].dim_table, "orders");
        assert_eq!(q.joins[0].fact_key, "l_orderkey");
        assert!(q.predicate.is_some());
        assert_eq!(q.num_aggregates(), 2);
        assert_eq!(q.to_plan(), plan);
    }

    #[test]
    fn simple_scan_aggregate() {
        let plan = Query::scan("t")
            .aggregate(vec![], vec![AggExpr::avg(col("v"), "a")])
            .build();
        let q = AggQuery::from_plan(&plan).unwrap();
        assert!(q.joins.is_empty());
        assert!(q.predicate.is_none());
        assert_eq!(q.aggregates[0].kind, LinearAgg::Avg);
        assert_eq!(q.to_plan(), plan);
    }

    #[test]
    fn rejects_nonlinear_aggregates() {
        let plan = Query::scan("t")
            .aggregate(vec![], vec![AggExpr::min(col("v"), "m")])
            .build();
        assert!(AggQuery::from_plan(&plan).is_none());
        let plan = Query::scan("t")
            .aggregate(vec![], vec![AggExpr::count_distinct(col("v"), "d")])
            .build();
        assert!(AggQuery::from_plan(&plan).is_none());
    }

    #[test]
    fn rejects_non_aggregate_roots() {
        let plan = Query::scan("t").filter(col("v").gt(lit(1i64))).build();
        assert!(AggQuery::from_plan(&plan).is_none());
    }

    #[test]
    fn rejects_exotic_shapes() {
        // Join whose right side is not a bare scan.
        let plan = Query::scan("t")
            .join(
                Query::scan("u").filter(col("w").gt(lit(0i64))),
                col("id"),
                col("id"),
            )
            .aggregate(vec![], vec![AggExpr::count_star("n")])
            .build();
        assert!(AggQuery::from_plan(&plan).is_none());
        // Join on computed keys.
        let plan = Query::scan("t")
            .join(Query::scan("u"), col("id").add(lit(1i64)), col("id"))
            .aggregate(vec![], vec![AggExpr::count_star("n")])
            .build();
        assert!(AggQuery::from_plan(&plan).is_none());
        // Union root under aggregate.
        let plan = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::UnionAll {
                inputs: vec![LogicalPlan::Scan { table: "t".into() }],
            }),
            group_by: vec![],
            aggregates: vec![AggExpr::count_star("n")],
        };
        assert!(AggQuery::from_plan(&plan).is_none());
    }

    #[test]
    fn two_dim_star() {
        let plan = Query::scan("lineitem")
            .join(Query::scan("orders"), col("l_orderkey"), col("o_key"))
            .join(Query::scan("part"), col("l_partkey"), col("p_key"))
            .aggregate(vec![], vec![AggExpr::sum(col("l_price"), "s")])
            .build();
        let q = AggQuery::from_plan(&plan).unwrap();
        assert_eq!(q.joins.len(), 2);
        assert_eq!(q.joins[0].dim_table, "orders");
        assert_eq!(q.joins[1].dim_table, "part");
        assert_eq!(q.to_plan(), plan);
    }
}
