//! The shared routing vocabulary: technique identities, guarantee classes,
//! and machine-readable decline reasons.
//!
//! These types used to live in `aqp-core`'s `technique` module, next to
//! the `Technique` trait. They moved here so the static analyzer and the
//! runtime router speak the *same* language — a lint that predicts a
//! decline carries the identical [`DeclineReason`] the eligibility probe
//! would return, and the consistency proptest can compare them with `==`
//! instead of a lossy mapping. `aqp-core` re-exports everything at the old
//! paths.

use std::fmt;

/// The fewest blocks a fact table may have for pilot-planned block
/// sampling to estimate spread. Shared between the online sampler's
/// eligibility probe and the static analyzer so the two cannot drift.
pub const MIN_SAMPLING_BLOCKS: u64 = 4;

/// Identifies one routable AQP family (plus the exact terminal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TechniqueKind {
    /// Pre-built offline synopsis.
    OfflineSynopsis,
    /// Pilot-planned two-phase online sampling.
    OnlineSampling,
    /// Progressive online aggregation.
    OnlineAggregation,
    /// Middleware rewrite over a weighted sample.
    MiddlewareRewrite,
    /// Exact execution — the terminal every chain ends in.
    Exact,
}

impl TechniqueKind {
    /// Stable kebab-case name (used in reports, logs, and BENCH json).
    pub fn name(&self) -> &'static str {
        match self {
            Self::OfflineSynopsis => "offline-synopsis",
            Self::OnlineSampling => "online-sampling",
            Self::OnlineAggregation => "online-aggregation",
            Self::MiddlewareRewrite => "rewrite-middleware",
            Self::Exact => "exact",
        }
    }

    /// The four routable families plus the exact terminal, in routing
    /// policy order (the order [`crate::lint_plan`] reports verdicts in).
    pub fn all() -> [TechniqueKind; 5] {
        [
            Self::OfflineSynopsis,
            Self::OnlineSampling,
            Self::OnlineAggregation,
            Self::MiddlewareRewrite,
            Self::Exact,
        ]
    }
}

impl fmt::Display for TechniqueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a technique cannot (or would not) serve a query — machine-readable,
/// so routing decisions, lint predictions, and the capability matrix can
/// all be derived from it.
#[derive(Debug, Clone, PartialEq)]
pub enum DeclineReason {
    /// The plan is outside the normalized star linear-aggregate shape.
    UnsupportedShape {
        /// What about the shape is unsupported.
        detail: String,
    },
    /// One of the query's aggregates is outside what the technique covers.
    UnsupportedAggregate {
        /// Alias of the offending aggregate.
        alias: String,
        /// What the technique would have needed.
        detail: String,
    },
    /// The technique cannot serve queries with joins.
    JoinsUnsupported,
    /// The technique cannot serve grouped queries.
    GroupByUnsupported,
    /// No synopsis has been built for the fact table.
    NoSynopsis {
        /// The table lacking a synopsis.
        table: String,
    },
    /// A synopsis exists but was stratified on a different column set than
    /// the query groups by — per-group coverage would be silently lost
    /// (the E8 group-drift failure mode).
    SynopsisMismatch {
        /// Column the synopsis is stratified on.
        stratified_on: String,
        /// Column(s) the query groups by.
        requested: String,
    },
    /// The synopsis is too stale to trust (base data moved on).
    StaleSynopsis {
        /// Relative row-count divergence.
        staleness: f64,
        /// The routing policy's freshness threshold.
        max_staleness: f64,
    },
    /// The table is too small for the design's spread estimation.
    TableTooSmall {
        /// Blocks in the fact table.
        blocks: u64,
        /// Minimum blocks the design needs.
        min_blocks: u64,
    },
    /// The pilot sample matched nothing — no basis for planning.
    EmptyPilot,
    /// The planned sampling rate exceeds the pay-off cap; sampling would
    /// not beat exact execution while honoring the contract.
    RateAboveCap {
        /// The rate the error spec would require.
        required: f64,
        /// The configured cap.
        cap: f64,
    },
    /// Too few sample rows support the answer for it to be trustworthy.
    InsufficientSupport {
        /// Smallest per-group supporting row count observed.
        rows: u64,
        /// The configured minimum.
        min_rows: u64,
    },
    /// The referenced table does not exist in the catalog.
    MissingTable {
        /// The missing table.
        table: String,
    },
    /// The session's accuracy auditor quarantined the technique: its
    /// windowed observed coverage fell below the configured floor, so
    /// the guarantee it advertises is not the guarantee it delivers.
    Quarantined {
        /// Observed coverage over the audit window, in basis points
        /// (integer so predicted and probed reasons compare `==`).
        coverage_bp: u32,
        /// The configured coverage floor, in basis points.
        floor_bp: u32,
    },
}

impl DeclineReason {
    /// Stable kebab-case tag naming the variant (no payload) — the label
    /// value for the `aqp_decline_total` metric series, so cardinality
    /// stays bounded no matter what tables or rates the payloads carry.
    pub fn tag(&self) -> &'static str {
        match self {
            Self::UnsupportedShape { .. } => "unsupported-shape",
            Self::UnsupportedAggregate { .. } => "unsupported-aggregate",
            Self::JoinsUnsupported => "joins-unsupported",
            Self::GroupByUnsupported => "group-by-unsupported",
            Self::NoSynopsis { .. } => "no-synopsis",
            Self::SynopsisMismatch { .. } => "synopsis-mismatch",
            Self::StaleSynopsis { .. } => "stale-synopsis",
            Self::TableTooSmall { .. } => "table-too-small",
            Self::EmptyPilot => "empty-pilot",
            Self::RateAboveCap { .. } => "rate-above-cap",
            Self::InsufficientSupport { .. } => "insufficient-support",
            Self::MissingTable { .. } => "missing-table",
            Self::Quarantined { .. } => "quarantined",
        }
    }

    /// Whether this reason is decidable from the plan and catalog/synopsis
    /// metadata alone — i.e. the static analyzer can (and must) predict it
    /// before execution. Dynamic reasons (empty pilot, rate above cap,
    /// starved support) depend on the data and only ever surface as
    /// *runtime* declines; the analyzer flags them as risks, never as
    /// verdicts. The analyzer/router consistency proptest pivots on this
    /// split: a statically eligible technique may decline at runtime only
    /// for a reason where `is_static()` is `false`.
    pub fn is_static(&self) -> bool {
        match self {
            Self::UnsupportedShape { .. }
            | Self::UnsupportedAggregate { .. }
            | Self::JoinsUnsupported
            | Self::GroupByUnsupported
            | Self::NoSynopsis { .. }
            | Self::SynopsisMismatch { .. }
            | Self::StaleSynopsis { .. }
            | Self::TableTooSmall { .. }
            | Self::MissingTable { .. }
            // Quarantine is session metadata fed into the lint context,
            // so the analyzer predicts it exactly like synopsis state.
            | Self::Quarantined { .. } => true,
            Self::EmptyPilot | Self::RateAboveCap { .. } | Self::InsufficientSupport { .. } => {
                false
            }
        }
    }
}

impl fmt::Display for DeclineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnsupportedShape { detail } => write!(f, "unsupported plan shape: {detail}"),
            Self::UnsupportedAggregate { alias, detail } => {
                write!(f, "aggregate `{alias}` unsupported: {detail}")
            }
            Self::JoinsUnsupported => write!(f, "joins unsupported"),
            Self::GroupByUnsupported => write!(f, "GROUP BY unsupported"),
            Self::NoSynopsis { table } => write!(f, "no synopsis for `{table}`"),
            Self::SynopsisMismatch {
                stratified_on,
                requested,
            } => write!(
                f,
                "synopsis stratified on `{stratified_on}`, query groups by `{requested}`"
            ),
            Self::StaleSynopsis {
                staleness,
                max_staleness,
            } => write!(f, "synopsis stale ({staleness:.2} > {max_staleness:.2})"),
            Self::TableTooSmall { blocks, min_blocks } => {
                write!(f, "table too small ({blocks} blocks < {min_blocks})")
            }
            Self::EmptyPilot => write!(f, "pilot sample matched nothing"),
            Self::RateAboveCap { required, cap } => {
                write!(f, "required rate {required:.3} exceeds cap {cap:.3}")
            }
            Self::InsufficientSupport { rows, min_rows } => {
                write!(f, "sample support {rows} rows < minimum {min_rows}")
            }
            Self::MissingTable { table } => write!(f, "table `{table}` not found"),
            Self::Quarantined {
                coverage_bp,
                floor_bp,
            } => write!(
                f,
                "quarantined by accuracy audits (observed coverage {:.2} < floor {:.2})",
                *coverage_bp as f64 / 10_000.0,
                *floor_bp as f64 / 10_000.0
            ),
        }
    }
}

/// The error-guarantee class a technique offers — one of NSB's three axes,
/// carried on the `Technique` trait so the capability matrix derives from
/// code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Guarantee {
    /// Error contract honored *before* execution (pilot-planned rates,
    /// design-based synopsis estimators).
    APriori,
    /// Error known only *after* (or during) execution — progressive
    /// intervals with the peeking caveat.
    APosteriori,
    /// Point estimates only; no interval is carried.
    PointEstimate,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(TechniqueKind::OfflineSynopsis.name(), "offline-synopsis");
        assert_eq!(TechniqueKind::OnlineSampling.name(), "online-sampling");
        assert_eq!(
            TechniqueKind::OnlineAggregation.name(),
            "online-aggregation"
        );
        assert_eq!(
            TechniqueKind::MiddlewareRewrite.name(),
            "rewrite-middleware"
        );
        assert_eq!(TechniqueKind::Exact.name(), "exact");
    }

    #[test]
    fn decline_reasons_render() {
        let r = DeclineReason::RateAboveCap {
            required: 0.45,
            cap: 0.2,
        };
        assert!(r.to_string().contains("0.450"));
        assert!(DeclineReason::EmptyPilot.to_string().contains("pilot"));
        assert!(DeclineReason::StaleSynopsis {
            staleness: 0.3,
            max_staleness: 0.1
        }
        .to_string()
        .contains("stale"));
    }

    #[test]
    fn static_dynamic_split() {
        assert!(DeclineReason::JoinsUnsupported.is_static());
        assert!(DeclineReason::NoSynopsis { table: "t".into() }.is_static());
        assert!(DeclineReason::TableTooSmall {
            blocks: 1,
            min_blocks: 4
        }
        .is_static());
        assert!(!DeclineReason::EmptyPilot.is_static());
        assert!(!DeclineReason::RateAboveCap {
            required: 0.5,
            cap: 0.2
        }
        .is_static());
        assert!(!DeclineReason::InsufficientSupport {
            rows: 3,
            min_rows: 30
        }
        .is_static());
        assert!(DeclineReason::Quarantined {
            coverage_bp: 5_000,
            floor_bp: 8_000
        }
        .is_static());
    }

    #[test]
    fn quarantined_renders_and_tags() {
        let r = DeclineReason::Quarantined {
            coverage_bp: 5_000,
            floor_bp: 8_000,
        };
        assert_eq!(r.tag(), "quarantined");
        assert!(r.to_string().contains("0.50"), "{r}");
        assert!(r.to_string().contains("0.80"), "{r}");
    }
}
