//! # aqp-analyze — static plan analysis for the AQP router (aqp-lint)
//!
//! NSB's central claim is that every AQP technique buys speed by narrowing
//! generality or weakening guarantees — and that most of that narrowing is
//! *decidable before execution*. This crate operationalizes the claim: a
//! pass-based analyzer walks a typed [`LogicalPlan`], consults catalog and
//! synopsis *metadata* (never data), and produces an [`Analysis`]:
//!
//! - one [`TechniqueVerdict`] per family — the best statically attainable
//!   [`GuaranteeClass`] or the exact [`DeclineReason`] the family's runtime
//!   eligibility probe would return, and
//! - a stream of structured [`Diagnostic`]s with stable codes
//!   ([`LintCode`] `A001`–`A014`), severities, offending-node paths, and
//!   machine-readable [`Suggestion`]s.
//!
//! ## The consistency contract
//!
//! Each family pass in [`passes`](crate) mirrors that family's
//! `eligibility` probe check-for-check, in the same order, against the
//! same thresholds ([`LintPolicy`]) — so a predicted decline is `==` to
//! the probe's. `AqpSession` exploits this to skip probes for statically
//! blocked families, and a property test pins it: a statically eligible
//! family never declines at runtime for a *static* reason
//! ([`DeclineReason::is_static`]), and every static runtime decline is
//! predicted.
//!
//! ## Example
//!
//! ```
//! use aqp_analyze::{lint_plan, GuaranteeClass, LintContext, TechniqueKind};
//! use aqp_engine::{AggExpr, Query};
//! use aqp_expr::col;
//! use aqp_storage::Catalog;
//! use aqp_workload::uniform_table;
//!
//! let catalog = Catalog::new();
//! catalog.register(uniform_table("t", 4_096, 256, 7)).unwrap();
//! let plan = Query::scan("t")
//!     .aggregate(vec![], vec![AggExpr::sum(col("v"), "s")])
//!     .build();
//!
//! let analysis = lint_plan(&plan, &LintContext::new(&catalog));
//! assert!(analysis.statically_eligible(TechniqueKind::OnlineSampling));
//! assert_eq!(analysis.best_attainable(), GuaranteeClass::Exact);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod code;
mod context;
mod diag;
mod passes;
mod query;
mod technique;

pub use analysis::{Analysis, GuaranteeClass, TechniqueVerdict};
pub use code::{LintCode, Severity};
pub use context::{LintContext, LintPolicy, QuarantineMeta, SynopsisMeta};
pub use diag::{Diagnostic, Suggestion};
pub use query::{AggQuery, AggSpec, JoinSpec, LinearAgg};
pub use technique::{DeclineReason, Guarantee, TechniqueKind, MIN_SAMPLING_BLOCKS};

use aqp_engine::LogicalPlan;

/// Statically analyzes `plan`: normalizes it, runs every pass, and returns
/// the verdicts + diagnostics. Metadata-only — no base-table data is read,
/// so cost is linear in plan size, independent of table size.
pub fn lint_plan(plan: &LogicalPlan, ctx: &LintContext) -> Analysis {
    let query = AggQuery::from_plan(plan);
    passes::run(plan, query.as_ref(), ctx)
}

/// [`lint_plan`] for callers that already normalized the plan (the session
/// does, and must not pay `from_plan` twice). `query` must be the result
/// of [`AggQuery::from_plan`] on this same `plan`.
pub fn lint_with(plan: &LogicalPlan, query: Option<&AggQuery>, ctx: &LintContext) -> Analysis {
    passes::run(plan, query, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqp_engine::{AggExpr, Query};
    use aqp_expr::{col, lit};
    use aqp_storage::Catalog;
    use aqp_workload::uniform_table;

    fn catalog() -> Catalog {
        let c = Catalog::new();
        c.register(uniform_table("t", 4_096, 256, 7)).unwrap();
        c
    }

    #[test]
    fn clean_ungrouped_sum_is_widely_eligible() {
        let c = catalog();
        let plan = Query::scan("t")
            .aggregate(vec![], vec![AggExpr::sum(col("v"), "s")])
            .build();
        let a = lint_plan(&plan, &LintContext::new(&c));
        assert!(a.normalized);
        assert!(a.statically_eligible(TechniqueKind::OnlineSampling));
        assert!(a.statically_eligible(TechniqueKind::OnlineAggregation));
        assert!(a.statically_eligible(TechniqueKind::MiddlewareRewrite));
        assert!(!a.statically_eligible(TechniqueKind::OfflineSynopsis));
        assert!(a.has(LintCode::A005NoSynopsis));
        assert_eq!(a.best_approximate(), GuaranteeClass::APriori);
    }

    #[test]
    fn nonlinear_aggregate_fires_a001_and_blocks_everything() {
        let c = catalog();
        let plan = Query::scan("t")
            .aggregate(vec![], vec![AggExpr::min(col("v"), "m")])
            .build();
        let a = lint_plan(&plan, &LintContext::new(&c));
        assert!(!a.normalized);
        assert!(a.has(LintCode::A001NonClosedAggregate));
        assert!(!a.has(LintCode::A002UnsupportedShape));
        for k in [
            TechniqueKind::OfflineSynopsis,
            TechniqueKind::OnlineSampling,
            TechniqueKind::OnlineAggregation,
            TechniqueKind::MiddlewareRewrite,
        ] {
            assert!(!a.statically_eligible(k), "{k} should be shape-blocked");
        }
        assert!(a.statically_eligible(TechniqueKind::Exact));
        assert_eq!(a.best_attainable(), GuaranteeClass::Exact);
    }

    #[test]
    fn non_aggregate_root_fires_a002() {
        let c = catalog();
        let plan = Query::scan("t").filter(col("v").gt(lit(1i64))).build();
        let a = lint_plan(&plan, &LintContext::new(&c));
        assert!(a.has(LintCode::A002UnsupportedShape));
        assert!(!a.has(LintCode::A001NonClosedAggregate));
    }

    #[test]
    fn missing_table_fires_a009_and_blocks_exact() {
        let c = Catalog::new();
        let plan = Query::scan("ghost")
            .aggregate(vec![], vec![AggExpr::sum(col("v"), "s")])
            .build();
        let a = lint_plan(&plan, &LintContext::new(&c));
        let d = a.diag(LintCode::A009MissingTable).expect("A009");
        assert_eq!(d.severity, Severity::Error);
        assert!(!a.statically_eligible(TechniqueKind::Exact));
        assert_eq!(a.best_attainable(), GuaranteeClass::Unattainable);
    }

    #[test]
    fn universe_sampling_predicate_silences_a012() {
        let c = catalog();
        let dim = uniform_table("d", 1_024, 256, 9);
        c.register(dim).unwrap();
        let star = |pred: aqp_expr::Expr| {
            Query::scan("t")
                .join(Query::scan("d"), col("fk"), col("pk"))
                .filter(pred)
                .aggregate(vec![], vec![AggExpr::sum(col("v"), "s")])
                .build()
        };
        let plain = lint_plan(&star(col("v").gt(lit(0i64))), &LintContext::new(&c));
        assert!(plain.has(LintCode::A012SampledJoinPrecondition));
        let universe = lint_plan(
            &star(col("fk").hash64().modulo(lit(10i64)).lt(lit(3i64))),
            &LintContext::new(&c),
        );
        assert!(!universe.has(LintCode::A012SampledJoinPrecondition));
    }
}
