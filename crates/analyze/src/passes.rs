//! The analyzer passes.
//!
//! Each family pass mirrors that family's runtime eligibility probe —
//! same checks, same order, same thresholds — so the predicted
//! [`DeclineReason`] compares equal (`==`) to what the probe would
//! return. That mirror is the consistency contract the router relies on
//! when it skips probes for statically blocked families, and the
//! property `tests/lint.rs` pins.
//!
//! Pass order (also the diagnostic emission order):
//!   shape → catalog → offline → sampling → progressive → rewrite → risk

use aqp_engine::LogicalPlan;
use aqp_expr::Expr;

use crate::analysis::{Analysis, GuaranteeClass, TechniqueVerdict};
use crate::code::{LintCode, Severity};
use crate::context::LintContext;
use crate::diag::{Diagnostic, Suggestion};
use crate::query::{AggQuery, LinearAgg};
use crate::technique::{DeclineReason, TechniqueKind};

/// The detail string `AqpSession` records when a plan falls outside the
/// normalized shape — the analyzer must predict the identical reason.
pub(crate) const NOT_NORMALIZED: &str = "plan is not a normalized star linear-aggregate query";

fn blocked(kind: TechniqueKind, reason: DeclineReason) -> TechniqueVerdict {
    TechniqueVerdict {
        kind,
        guarantee: GuaranteeClass::Unattainable,
        blocked_by: Some(reason),
    }
}

fn eligible(kind: TechniqueKind, guarantee: GuaranteeClass) -> TechniqueVerdict {
    TechniqueVerdict {
        kind,
        guarantee,
        blocked_by: None,
    }
}

/// Shared head of every family pass: a technique the accuracy auditor
/// quarantined is blocked before any shape or catalog check runs — the
/// session will not route to it no matter how eligible it looks.
fn quarantine_check(
    kind: TechniqueKind,
    ctx: &LintContext,
    diags: &mut Vec<Diagnostic>,
) -> Option<TechniqueVerdict> {
    let q = ctx.quarantine_for(kind)?;
    let reason = DeclineReason::Quarantined {
        coverage_bp: q.coverage_bp,
        floor_bp: q.floor_bp,
    };
    diags.push(Diagnostic {
        code: LintCode::A014TechniqueQuarantined,
        severity: Severity::Warn,
        technique: Some(kind),
        path: "session".to_string(),
        message: format!(
            "{kind} is quarantined: audited coverage {:.2} fell below the floor {:.2}; \
             it recovers when coverage does (or after synopsis maintenance)",
            q.coverage_bp as f64 / 10_000.0,
            q.floor_bp as f64 / 10_000.0
        ),
        suggestion: None,
        predicts: Some(reason.clone()),
    });
    Some(blocked(kind, reason))
}

/// Runs every pass over `plan` (pre-normalized as `query` when it is in
/// shape) and assembles the [`Analysis`].
pub(crate) fn run(plan: &LogicalPlan, query: Option<&AggQuery>, ctx: &LintContext) -> Analysis {
    let mut diags = Vec::new();
    let missing = missing_tables(plan, ctx);
    let group_cardinality_hint = group_cardinality_hint(plan);

    let Some(q) = query else {
        shape_pass(plan, &mut diags);
        catalog_pass(&missing, &mut diags);
        let shape_reason = DeclineReason::UnsupportedShape {
            detail: NOT_NORMALIZED.to_string(),
        };
        let verdicts = vec![
            blocked(TechniqueKind::OfflineSynopsis, shape_reason.clone()),
            blocked(TechniqueKind::OnlineSampling, shape_reason.clone()),
            blocked(TechniqueKind::OnlineAggregation, shape_reason.clone()),
            blocked(TechniqueKind::MiddlewareRewrite, shape_reason),
            exact_pass(&missing),
        ];
        return Analysis {
            diagnostics: diags,
            verdicts,
            normalized: false,
            group_cardinality_hint,
        };
    };

    catalog_pass(&missing, &mut diags);
    let verdicts = vec![
        offline_pass(q, ctx, &mut diags),
        sampling_pass(q, ctx, &mut diags),
        progressive_pass(q, ctx, &mut diags),
        rewrite_pass(q, ctx, &mut diags),
        exact_pass(&missing),
    ];
    risk_pass(q, &verdicts, ctx, &mut diags);
    Analysis {
        diagnostics: diags,
        verdicts,
        normalized: true,
        group_cardinality_hint,
    }
}

/// Static bound on the root aggregation's group count, from key shapes
/// alone: a global aggregate has one group, `x % k` at most `|k|`
/// non-negative residues, a literal key one value; composite keys
/// multiply. `None` when the root is not an aggregation or any key is
/// unbounded. Purely shape-based — never touches data — so it holds for
/// any catalog contents (up to sign: a negative `x` yields negative
/// residues too, which at worst doubles the estimate; consumers treat
/// this as a sizing hint, not a guarantee).
fn group_cardinality_hint(plan: &LogicalPlan) -> Option<u64> {
    let LogicalPlan::Aggregate { group_by, .. } = plan else {
        return None;
    };
    group_by.iter().try_fold(1u64, |bound, (e, _)| {
        bound.checked_mul(key_cardinality_bound(e)?)
    })
}

fn key_cardinality_bound(e: &Expr) -> Option<u64> {
    match e {
        Expr::Literal(_) => Some(1),
        Expr::Binary {
            op: aqp_expr::BinaryOp::Mod,
            right,
            ..
        } => match right.as_ref() {
            Expr::Literal(aqp_storage::Value::Int64(k)) if *k != 0 => Some(k.unsigned_abs()),
            _ => None,
        },
        _ => None,
    }
}

/// Tables the plan scans that the catalog does not know, in scan order.
fn missing_tables(plan: &LogicalPlan, ctx: &LintContext) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for t in plan.scanned_tables() {
        if ctx.catalog.get(t).is_err() && !out.iter().any(|m| m == t) {
            out.push(t.to_string());
        }
    }
    out
}

/// Shape pass — only runs when normalization failed. Distinguishes "an
/// aggregate is not closed under sampling" (A001, the theory says no) from
/// "the plan is outside the normalized form" (A002, this implementation
/// says no).
fn shape_pass(plan: &LogicalPlan, diags: &mut Vec<Diagnostic>) {
    let mut non_closed = 0usize;
    if let LogicalPlan::Aggregate { aggregates, .. } = plan {
        for (i, a) in aggregates.iter().enumerate() {
            if a.func.is_linear() {
                continue;
            }
            non_closed += 1;
            let synopsis_kind = match a.func {
                aqp_engine::AggFunc::CountDistinct => "distinct-sketch",
                aqp_engine::AggFunc::VarSamp => "second-moment",
                _ => "extreme-value",
            };
            diags.push(Diagnostic {
                code: LintCode::A001NonClosedAggregate,
                severity: Severity::Error,
                technique: None,
                path: format!("aggregate.aggregates[{i}]"),
                message: format!(
                    "`{}` computes {} — not closed under uniform sampling, no \
                     sampling-based estimator can bound its error",
                    a.alias, a.func
                ),
                suggestion: Some(Suggestion::UseOfflineSynopsisForAggregate {
                    alias: a.alias.clone(),
                    synopsis_kind,
                }),
                predicts: Some(DeclineReason::UnsupportedAggregate {
                    alias: a.alias.clone(),
                    detail: "not closed under uniform sampling".to_string(),
                }),
            });
        }
    }
    if non_closed == 0 {
        // Normalization failed for a structural reason (non-aggregate root,
        // exotic join shape, COUNT(expr), ...), not a theoretical one.
        diags.push(Diagnostic {
            code: LintCode::A002UnsupportedShape,
            severity: Severity::Error,
            technique: None,
            path: "plan".to_string(),
            message: NOT_NORMALIZED.to_string(),
            suggestion: Some(Suggestion::RouteExact),
            predicts: Some(DeclineReason::UnsupportedShape {
                detail: NOT_NORMALIZED.to_string(),
            }),
        });
    }
}

/// Catalog pass: one A009 per missing table. Blocks every family, exact
/// included, so it is the only `Error` a normalized plan can carry.
fn catalog_pass(missing: &[String], diags: &mut Vec<Diagnostic>) {
    for table in missing {
        diags.push(Diagnostic {
            code: LintCode::A009MissingTable,
            severity: Severity::Error,
            technique: None,
            path: format!("scan({table})"),
            message: format!("table `{table}` not found in the catalog"),
            suggestion: None,
            predicts: Some(DeclineReason::MissingTable {
                table: table.clone(),
            }),
        });
    }
}

/// The column a stratified synopsis for this query should cover: the
/// grouping column when there is one, else the first aggregated column.
fn stratify_column(q: &AggQuery) -> Option<String> {
    for (expr, _) in &q.group_by {
        if let Expr::Column(name) = expr {
            return Some(name.clone());
        }
    }
    for a in &q.aggregates {
        if let Expr::Column(name) = &a.expr {
            return Some(name.clone());
        }
    }
    None
}

/// Mirrors `OfflineTechnique::eligibility`: joins → synopsis existence →
/// stratification/grouping match → staleness (where a vanished base table
/// surfaces as `MissingTable`, exactly as `OfflineStore::staleness` errors).
fn offline_pass(q: &AggQuery, ctx: &LintContext, diags: &mut Vec<Diagnostic>) -> TechniqueVerdict {
    let kind = TechniqueKind::OfflineSynopsis;
    if let Some(v) = quarantine_check(kind, ctx, diags) {
        return v;
    }
    if !q.joins.is_empty() {
        // One A003 covers both single-relation families (offline + OLA);
        // both verdicts still carry the exact predicted reason.
        diags.push(Diagnostic {
            code: LintCode::A003JoinsExcludeFamily,
            severity: Severity::Note,
            technique: None,
            path: "joins".to_string(),
            message: format!(
                "{} join(s) statically exclude offline-synopsis and online-aggregation \
                 (single-relation families)",
                q.joins.len()
            ),
            suggestion: None,
            predicts: Some(DeclineReason::JoinsUnsupported),
        });
        return blocked(kind, DeclineReason::JoinsUnsupported);
    }
    let Some(syn) = ctx.synopsis_for(&q.fact_table) else {
        let reason = DeclineReason::NoSynopsis {
            table: q.fact_table.clone(),
        };
        diags.push(Diagnostic {
            code: LintCode::A005NoSynopsis,
            severity: Severity::Warn,
            technique: Some(kind),
            path: format!("scan({})", q.fact_table),
            message: format!("no offline synopsis has been built for `{}`", q.fact_table),
            suggestion: stratify_column(q).map(|column| Suggestion::BuildStratifiedSynopsis {
                table: q.fact_table.clone(),
                column,
            }),
            predicts: Some(reason.clone()),
        });
        return blocked(kind, reason);
    };
    for (i, (expr, _)) in q.group_by.iter().enumerate() {
        let covered = matches!(expr, Expr::Column(name) if *name == syn.stratified_on);
        if !covered {
            let reason = DeclineReason::SynopsisMismatch {
                stratified_on: syn.stratified_on.clone(),
                requested: expr.to_string(),
            };
            diags.push(Diagnostic {
                code: LintCode::A006SynopsisMismatch,
                severity: Severity::Warn,
                technique: Some(kind),
                path: format!("group_by[{i}]"),
                message: format!(
                    "synopsis for `{}` is stratified on `{}` but the query groups by \
                     `{expr}`; per-group coverage would be lost",
                    q.fact_table, syn.stratified_on
                ),
                suggestion: Some(Suggestion::RestratifySynopsis {
                    table: q.fact_table.clone(),
                    column: expr.to_string(),
                }),
                predicts: Some(reason.clone()),
            });
            return blocked(kind, reason);
        }
    }
    match syn.staleness {
        None => blocked(
            kind,
            // Base table gone: `OfflineStore::staleness` errors and the
            // probe maps that to MissingTable. A009 already reported it.
            DeclineReason::MissingTable {
                table: q.fact_table.clone(),
            },
        ),
        Some(s) if s > ctx.policy.max_staleness => {
            let reason = DeclineReason::StaleSynopsis {
                staleness: s,
                max_staleness: ctx.policy.max_staleness,
            };
            diags.push(Diagnostic {
                code: LintCode::A007StaleSynopsis,
                severity: Severity::Warn,
                technique: Some(kind),
                path: format!("scan({})", q.fact_table),
                message: format!(
                    "synopsis staleness {s:.2} exceeds the freshness threshold {:.2}",
                    ctx.policy.max_staleness
                ),
                suggestion: Some(Suggestion::RefreshSynopsis {
                    table: q.fact_table.clone(),
                }),
                predicts: Some(reason.clone()),
            });
            blocked(kind, reason)
        }
        Some(_) => eligible(kind, GuaranteeClass::APriori),
    }
}

/// Mirrors `OnlineAqp::eligibility`: fact table exists → enough blocks for
/// the pilot to estimate spread.
fn sampling_pass(q: &AggQuery, ctx: &LintContext, diags: &mut Vec<Diagnostic>) -> TechniqueVerdict {
    let kind = TechniqueKind::OnlineSampling;
    if let Some(v) = quarantine_check(kind, ctx, diags) {
        return v;
    }
    let Ok(fact) = ctx.catalog.get(&q.fact_table) else {
        return blocked(
            kind,
            DeclineReason::MissingTable {
                table: q.fact_table.clone(),
            },
        );
    };
    let blocks = fact.block_count() as u64;
    if blocks < ctx.policy.min_sampling_blocks {
        let reason = DeclineReason::TableTooSmall {
            blocks,
            min_blocks: ctx.policy.min_sampling_blocks,
        };
        diags.push(Diagnostic {
            code: LintCode::A008TableTooSmall,
            severity: Severity::Note,
            technique: Some(kind),
            path: format!("scan({})", q.fact_table),
            message: format!(
                "`{}` has {blocks} block(s), fewer than the {} pilot-planned sampling \
                 needs; exact execution is cheaper anyway",
                q.fact_table, ctx.policy.min_sampling_blocks
            ),
            suggestion: Some(Suggestion::RouteExact),
            predicts: Some(reason.clone()),
        });
        return blocked(kind, reason);
    }
    eligible(kind, GuaranteeClass::APriori)
}

/// Mirrors `OlaTechnique::eligibility`: joins → group-by → exactly one
/// aggregate → SUM/AVG of a bare column → fact table exists.
fn progressive_pass(
    q: &AggQuery,
    ctx: &LintContext,
    diags: &mut Vec<Diagnostic>,
) -> TechniqueVerdict {
    let kind = TechniqueKind::OnlineAggregation;
    if let Some(v) = quarantine_check(kind, ctx, diags) {
        return v;
    }
    if !q.joins.is_empty() {
        // A003 was already emitted by the offline pass.
        return blocked(kind, DeclineReason::JoinsUnsupported);
    }
    if !q.group_by.is_empty() {
        diags.push(Diagnostic {
            code: LintCode::A004ProgressiveShape,
            severity: Severity::Note,
            technique: Some(kind),
            path: "group_by".to_string(),
            message: "progressive aggregation maintains one live interval; grouped \
                      queries are out of shape"
                .to_string(),
            suggestion: None,
            predicts: Some(DeclineReason::GroupByUnsupported),
        });
        return blocked(kind, DeclineReason::GroupByUnsupported);
    }
    let [agg] = q.aggregates.as_slice() else {
        let reason = DeclineReason::UnsupportedShape {
            detail: "progressive aggregation serves exactly one aggregate".to_string(),
        };
        diags.push(Diagnostic {
            code: LintCode::A004ProgressiveShape,
            severity: Severity::Note,
            technique: Some(kind),
            path: "aggregate.aggregates".to_string(),
            message: format!(
                "progressive aggregation serves exactly one aggregate, plan has {}",
                q.aggregates.len()
            ),
            suggestion: None,
            predicts: Some(reason.clone()),
        });
        return blocked(kind, reason);
    };
    if !matches!(agg.kind, LinearAgg::Sum | LinearAgg::Avg) || !matches!(agg.expr, Expr::Column(_))
    {
        let reason = DeclineReason::UnsupportedAggregate {
            alias: agg.alias.clone(),
            detail: "only SUM/AVG of a bare column".to_string(),
        };
        diags.push(Diagnostic {
            code: LintCode::A004ProgressiveShape,
            severity: Severity::Note,
            technique: Some(kind),
            path: "aggregate.aggregates[0]".to_string(),
            message: format!(
                "progressive aggregation covers only SUM/AVG of a bare column; \
                 `{}` is neither",
                agg.alias
            ),
            suggestion: None,
            predicts: Some(reason.clone()),
        });
        return blocked(kind, reason);
    }
    if ctx.catalog.get(&q.fact_table).is_err() {
        return blocked(
            kind,
            DeclineReason::MissingTable {
                table: q.fact_table.clone(),
            },
        );
    }
    eligible(kind, GuaranteeClass::APosteriori)
}

/// Mirrors `RewriteTechnique::eligibility`: the rewrite takes every
/// normalized shape; the only static gate is the fact table existing.
fn rewrite_pass(q: &AggQuery, ctx: &LintContext, diags: &mut Vec<Diagnostic>) -> TechniqueVerdict {
    let kind = TechniqueKind::MiddlewareRewrite;
    if let Some(v) = quarantine_check(kind, ctx, diags) {
        return v;
    }
    if ctx.catalog.get(&q.fact_table).is_err() {
        return blocked(
            kind,
            DeclineReason::MissingTable {
                table: q.fact_table.clone(),
            },
        );
    }
    eligible(kind, GuaranteeClass::PointEstimate)
}

/// Exact executes anything whose tables exist — zero-width intervals.
fn exact_pass(missing: &[String]) -> TechniqueVerdict {
    match missing.first() {
        Some(table) => blocked(
            TechniqueKind::Exact,
            DeclineReason::MissingTable {
                table: table.clone(),
            },
        ),
        None => eligible(TechniqueKind::Exact, GuaranteeClass::Exact),
    }
}

/// Whether the predicate contains a `hash64(...)` sub-expression — the
/// universe-sampling shape that makes sampled joins unbiased.
fn has_hash64(predicate: Option<&Expr>) -> bool {
    let Some(p) = predicate else { return false };
    let mut found = false;
    p.walk(&mut |e| {
        if matches!(e, Expr::Hash64(_)) {
            found = true;
        }
    });
    found
}

/// Risk pass: advisory lints about *dynamic* declines the analyzer can
/// foresee but not decide, plus the guarantee-erosion note. Never changes
/// a verdict — statically eligible stays eligible.
fn risk_pass(
    q: &AggQuery,
    verdicts: &[TechniqueVerdict],
    ctx: &LintContext,
    diags: &mut Vec<Diagnostic>,
) {
    let is_eligible = |kind: TechniqueKind| {
        verdicts
            .iter()
            .any(|v| v.kind == kind && v.blocked_by.is_none())
    };

    // A010: a grouped query riding an *unstratified* sampled path — small
    // groups can starve per-group support at runtime.
    if !q.group_by.is_empty()
        && is_eligible(TechniqueKind::MiddlewareRewrite)
        && !is_eligible(TechniqueKind::OfflineSynopsis)
    {
        diags.push(Diagnostic {
            code: LintCode::A010GroupSupportRisk,
            severity: Severity::Warn,
            technique: Some(TechniqueKind::MiddlewareRewrite),
            path: "group_by".to_string(),
            message: "grouped query over an unstratified sample: uniform sampling may \
                      starve small groups below the support minimum"
                .to_string(),
            suggestion: stratify_column(q).map(|column| Suggestion::BuildStratifiedSynopsis {
                table: q.fact_table.clone(),
                column,
            }),
            predicts: Some(DeclineReason::InsufficientSupport {
                rows: 0,
                min_rows: ctx.policy.rewrite_min_group_support,
            }),
        });
    }

    // A011: a predicate over a pilot-planned path — a selective one can
    // empty the pilot or push the planned rate past the pay-off cap.
    if is_eligible(TechniqueKind::OnlineSampling) {
        if let Some(p) = &q.predicate {
            diags.push(Diagnostic {
                code: LintCode::A011SelectivePredicateRisk,
                severity: Severity::Note,
                technique: Some(TechniqueKind::OnlineSampling),
                path: "filter.predicate".to_string(),
                message: format!(
                    "predicate `{p}` filters the pilot too: if it is selective the pilot \
                     can come back empty or the planned rate can exceed the cap"
                ),
                suggestion: Some(Suggestion::RelaxSpecOrRaiseBudget),
                predicts: Some(DeclineReason::EmptyPilot),
            });
        }
    }

    // A012: a sampled join without a universe-sampling key predicate is
    // only unbiased for FK joins into unsampled dimensions.
    if !q.joins.is_empty()
        && is_eligible(TechniqueKind::OnlineSampling)
        && !has_hash64(q.predicate.as_ref())
    {
        diags.push(Diagnostic {
            code: LintCode::A012SampledJoinPrecondition,
            severity: Severity::Note,
            technique: Some(TechniqueKind::OnlineSampling),
            path: "joins".to_string(),
            message: "sampled join relies on the FK-into-unsampled-dimension precondition; \
                      no universe-sampling (hash64) predicate found"
                .to_string(),
            suggestion: Some(Suggestion::UseUniverseSampling {
                key: q.joins[0].fact_key.clone(),
            }),
            predicts: None,
        });
    }

    // A013: every family with an interval is blocked; the best remaining
    // approximate answer carries no error guarantee at all.
    let best_approx = verdicts
        .iter()
        .filter(|v| v.kind != TechniqueKind::Exact)
        .map(|v| v.guarantee)
        .max()
        .unwrap_or(GuaranteeClass::Unattainable);
    if best_approx == GuaranteeClass::PointEstimate {
        diags.push(Diagnostic {
            code: LintCode::A013PointEstimateOnly,
            severity: Severity::Note,
            technique: Some(TechniqueKind::MiddlewareRewrite),
            path: "plan".to_string(),
            message: "the only statically attainable approximate answer is a point \
                      estimate — no error interval will be carried"
                .to_string(),
            suggestion: Some(Suggestion::RouteExact),
            predicts: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use aqp_engine::{AggExpr, Query};
    use aqp_expr::{col, lit};

    use super::group_cardinality_hint;

    #[test]
    fn cardinality_hint_follows_key_shapes() {
        // `id % 1000` bounds the residue count.
        let modk = Query::scan("t")
            .aggregate(
                vec![(col("id").modulo(lit(1_000i64)), "g".to_string())],
                vec![AggExpr::count_star("n")],
            )
            .build();
        assert_eq!(group_cardinality_hint(&modk), Some(1_000));

        // A global aggregate has exactly one group.
        let global = Query::scan("t")
            .aggregate(vec![], vec![AggExpr::sum(col("v"), "s")])
            .build();
        assert_eq!(group_cardinality_hint(&global), Some(1));

        // Composite keys multiply; a literal contributes one value.
        let composite = Query::scan("t")
            .aggregate(
                vec![
                    (col("id").modulo(lit(8i64)), "a".to_string()),
                    (lit(42i64), "b".to_string()),
                ],
                vec![AggExpr::count_star("n")],
            )
            .build();
        assert_eq!(group_cardinality_hint(&composite), Some(8));

        // A bare column key is unbounded; `% 0` never divides.
        let bare = Query::scan("t")
            .aggregate(
                vec![(col("g"), "g".to_string())],
                vec![AggExpr::count_star("n")],
            )
            .build();
        assert_eq!(group_cardinality_hint(&bare), None);
        let modzero = Query::scan("t")
            .aggregate(
                vec![(col("id").modulo(lit(0i64)), "g".to_string())],
                vec![AggExpr::count_star("n")],
            )
            .build();
        assert_eq!(group_cardinality_hint(&modzero), None);

        // Non-aggregate roots carry no hint.
        let scan = Query::scan("t").build();
        assert_eq!(group_cardinality_hint(&scan), None);
    }
}
