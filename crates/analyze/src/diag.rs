//! Structured diagnostics: what the analyzer found, where, and what to do
//! about it.

use std::fmt;

use crate::code::{LintCode, Severity};
use crate::technique::{DeclineReason, TechniqueKind};

/// A machine-readable suggested rewrite — the actionable half of a
/// diagnostic. Every variant names a concrete operation the user (or an
/// orchestrating layer) can apply; rendering is for humans, matching is
/// for tools.
#[derive(Debug, Clone, PartialEq)]
pub enum Suggestion {
    /// Run the query exactly; no approximate path is worth it.
    RouteExact,
    /// Build a stratified synopsis for `table` over `column` so the
    /// offline family can serve this (and similar) queries.
    BuildStratifiedSynopsis {
        /// Fact table to sample.
        table: String,
        /// Column to stratify on (the query's group key).
        column: String,
    },
    /// Rebuild the existing synopsis for `table`; the base data drifted.
    RefreshSynopsis {
        /// The stale synopsis' table.
        table: String,
    },
    /// The aggregate needs an offline extreme-value/distinct synopsis
    /// (sampling cannot bound it): route exact or precompute one.
    UseOfflineSynopsisForAggregate {
        /// Offending aggregate alias.
        alias: String,
        /// Synopsis kind that would serve it, e.g. "extreme-value",
        /// "distinct-sketch".
        synopsis_kind: &'static str,
    },
    /// Re-stratify the synopsis on the query's group column.
    RestratifySynopsis {
        /// The synopsis' table.
        table: String,
        /// Column the query groups by.
        column: String,
    },
    /// Loosen the error spec or raise the sampling budget; the plan is
    /// statically fine but the contract is at risk at runtime.
    RelaxSpecOrRaiseBudget,
    /// Add a universe-sampling (`hash64(key) % m < k`) predicate on the
    /// join key so both sides survive sampling consistently.
    UseUniverseSampling {
        /// The join key column to hash-partition on.
        key: String,
    },
}

impl fmt::Display for Suggestion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::RouteExact => write!(f, "route exact"),
            Self::BuildStratifiedSynopsis { table, column } => {
                write!(
                    f,
                    "build a stratified synopsis on `{table}` over `{column}`"
                )
            }
            Self::RefreshSynopsis { table } => write!(f, "rebuild the synopsis for `{table}`"),
            Self::UseOfflineSynopsisForAggregate {
                alias,
                synopsis_kind,
            } => write!(
                f,
                "route exact or precompute a {synopsis_kind} synopsis for `{alias}`"
            ),
            Self::RestratifySynopsis { table, column } => {
                write!(f, "re-stratify `{table}`'s synopsis on `{column}`")
            }
            Self::RelaxSpecOrRaiseBudget => {
                write!(f, "relax the error spec or raise the sampling budget")
            }
            Self::UseUniverseSampling { key } => {
                write!(f, "universe-sample both sides on `hash64({key})`")
            }
        }
    }
}

/// One analyzer finding: a stable code, a severity, the offending
/// sub-expression's path into the plan, prose, and — when the lint blocks
/// or threatens a specific family — which family and which
/// [`DeclineReason`] it predicts.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The stable lint code.
    pub code: LintCode,
    /// How bad it is.
    pub severity: Severity,
    /// The family this lint speaks about; `None` for plan-wide findings.
    pub technique: Option<TechniqueKind>,
    /// Dotted path to the offending plan/sub-expression node, e.g.
    /// `aggregate.aggregates[1]` or `filter.predicate`.
    pub path: String,
    /// Human-readable finding.
    pub message: String,
    /// Machine-readable suggested rewrite, when one exists.
    pub suggestion: Option<Suggestion>,
    /// The decline this lint predicts. For `Warn`-blocking lints this is
    /// the exact reason the family's eligibility probe would return; for
    /// risk lints it is the *dynamic* reason that may surface at runtime.
    pub predicts: Option<DeclineReason>,
}

impl Diagnostic {
    /// One-line rendering: `A005 warn [offline-synopsis] plan: no synopsis
    /// for `t` — suggest: build a stratified synopsis …`.
    pub fn render(&self) -> String {
        let mut out = format!("{} {:<5}", self.code, self.severity.label());
        if let Some(t) = self.technique {
            out.push_str(&format!(" [{t}]"));
        }
        out.push_str(&format!(" {}: {}", self.path, self.message));
        if let Some(s) = &self.suggestion {
            out.push_str(&format!(" — suggest: {s}"));
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_parts() {
        let d = Diagnostic {
            code: LintCode::A005NoSynopsis,
            severity: Severity::Warn,
            technique: Some(TechniqueKind::OfflineSynopsis),
            path: "plan".to_string(),
            message: "no synopsis for `t`".to_string(),
            suggestion: Some(Suggestion::BuildStratifiedSynopsis {
                table: "t".to_string(),
                column: "g".to_string(),
            }),
            predicts: Some(DeclineReason::NoSynopsis { table: "t".into() }),
        };
        let r = d.render();
        assert!(r.starts_with("A005 warn"));
        assert!(r.contains("[offline-synopsis]"));
        assert!(r.contains("no synopsis"));
        assert!(r.contains("suggest: build a stratified synopsis on `t` over `g`"));
    }

    #[test]
    fn suggestions_render() {
        assert_eq!(Suggestion::RouteExact.to_string(), "route exact");
        assert!(Suggestion::UseUniverseSampling { key: "k".into() }
            .to_string()
            .contains("hash64(k)"));
        assert!(Suggestion::RefreshSynopsis { table: "t".into() }
            .to_string()
            .contains("rebuild"));
    }
}
