//! The stable lint-code registry.
//!
//! Each code operationalizes one claim from NSB §2 ("no silver bullet"):
//! a concrete, statically checkable way a query falls off the
//! generality/accuracy/performance frontier. Codes are append-only —
//! `A001` will mean "aggregate not closed under sampling" forever, so
//! tooling (and the golden tests) can key on them.

use std::fmt;

/// A stable lint code (`A001`–`A014`). The discriminant order is the
/// registry order; new codes append.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LintCode {
    /// Aggregate is not closed under sampling (MAX/MIN/COUNT DISTINCT/…):
    /// no sampling-based estimator can bound its error.
    A001NonClosedAggregate,
    /// The plan is outside the normalized star linear-aggregate shape.
    A002UnsupportedShape,
    /// Joins statically exclude a family (offline synopses and progressive
    /// aggregation sample one relation and cannot replay a join chain).
    A003JoinsExcludeFamily,
    /// The plan's shape statically excludes progressive aggregation
    /// (GROUP BY, multiple aggregates, or a non-column argument).
    A004ProgressiveShape,
    /// No offline synopsis has been built for the fact table.
    A005NoSynopsis,
    /// A synopsis exists but is stratified on a different column than the
    /// query groups by — per-group coverage would be silently lost.
    A006SynopsisMismatch,
    /// The synopsis is stale: the base table moved past the freshness
    /// threshold since the synopsis was built.
    A007StaleSynopsis,
    /// The fact table has too few blocks for pilot-planned block sampling
    /// to estimate spread.
    A008TableTooSmall,
    /// A referenced table does not exist in the catalog.
    A009MissingTable,
    /// Skewed/grouped query over a sampled path: small groups risk
    /// starving per-group support at runtime (a dynamic decline the
    /// analyzer can flag but not decide).
    A010GroupSupportRisk,
    /// A selective predicate over a sampled path risks an empty pilot or a
    /// planned rate above the pay-off cap at runtime.
    A011SelectivePredicateRisk,
    /// A sampled join without a universe-sampling (hash-partitioned key)
    /// predicate: correct only for FK joins into unsampled dimensions.
    A012SampledJoinPrecondition,
    /// The best statically attainable answer is a point estimate — no
    /// error interval will be carried.
    A013PointEstimateOnly,
    /// The session's accuracy auditor quarantined a technique: its
    /// windowed observed coverage fell below the configured floor and it
    /// will not be routed to until coverage recovers (or its synopsis is
    /// maintained).
    A014TechniqueQuarantined,
}

impl LintCode {
    /// The stable wire code, e.g. `"A001"`.
    pub fn code(&self) -> &'static str {
        match self {
            Self::A001NonClosedAggregate => "A001",
            Self::A002UnsupportedShape => "A002",
            Self::A003JoinsExcludeFamily => "A003",
            Self::A004ProgressiveShape => "A004",
            Self::A005NoSynopsis => "A005",
            Self::A006SynopsisMismatch => "A006",
            Self::A007StaleSynopsis => "A007",
            Self::A008TableTooSmall => "A008",
            Self::A009MissingTable => "A009",
            Self::A010GroupSupportRisk => "A010",
            Self::A011SelectivePredicateRisk => "A011",
            Self::A012SampledJoinPrecondition => "A012",
            Self::A013PointEstimateOnly => "A013",
            Self::A014TechniqueQuarantined => "A014",
        }
    }

    /// One-line title for the registry table.
    pub fn title(&self) -> &'static str {
        match self {
            Self::A001NonClosedAggregate => "aggregate not closed under sampling",
            Self::A002UnsupportedShape => "plan outside the star linear-aggregate shape",
            Self::A003JoinsExcludeFamily => "joins statically exclude this family",
            Self::A004ProgressiveShape => "shape excludes progressive aggregation",
            Self::A005NoSynopsis => "no offline synopsis for the fact table",
            Self::A006SynopsisMismatch => "synopsis stratification does not cover the grouping",
            Self::A007StaleSynopsis => "synopsis staleness exceeds the freshness threshold",
            Self::A008TableTooSmall => "fact table too small for pilot-planned sampling",
            Self::A009MissingTable => "referenced table missing from the catalog",
            Self::A010GroupSupportRisk => "per-group support risk under skewed grouping",
            Self::A011SelectivePredicateRisk => "selective predicate risks pilot starvation",
            Self::A012SampledJoinPrecondition => "sampled join lacks a universe-sampling key",
            Self::A013PointEstimateOnly => "best attainable guarantee is a point estimate",
            Self::A014TechniqueQuarantined => "technique quarantined by accuracy audits",
        }
    }

    /// The NSB §2 claim this lint operationalizes (documented in
    /// `EXPERIMENTS.md` §E-lint).
    pub fn nsb_claim(&self) -> &'static str {
        match self {
            Self::A001NonClosedAggregate => {
                "sampling bounds error only for aggregates closed under it (SUM/COUNT/AVG); \
                 extremes and distinct counts need offline synopses or exact execution"
            }
            Self::A002UnsupportedShape => {
                "generality axis: AQP systems intercept the shapes their theory covers and \
                 must route the rest exact"
            }
            Self::A003JoinsExcludeFamily => {
                "single-relation synopses cannot answer join queries without join synopses"
            }
            Self::A004ProgressiveShape => {
                "online aggregation's live interval is defined per scalar estimator"
            }
            Self::A005NoSynopsis => {
                "offline AQP's speed comes from precomputation; without it the family \
                 cannot answer at all"
            }
            Self::A006SynopsisMismatch => {
                "stratified samples guarantee per-group coverage only for the columns they \
                 were stratified on (BlinkDB's optimizer makes the same static match)"
            }
            Self::A007StaleSynopsis => {
                "precomputed synopses trade freshness for speed; drift voids the guarantee"
            }
            Self::A008TableTooSmall => {
                "pilot-based designs need enough blocks to estimate spread; tiny tables are \
                 cheaper exact"
            }
            Self::A009MissingTable => "no technique, exact included, answers over missing data",
            Self::A010GroupSupportRisk => {
                "uniform sampling starves small groups (the skew failure mode stratification \
                 exists to fix)"
            }
            Self::A011SelectivePredicateRisk => {
                "fixed-rate sampling collapses under selective predicates (the selectivity \
                 cliff)"
            }
            Self::A012SampledJoinPrecondition => {
                "joining two independent samples is biased; universe sampling on the join \
                 key is the known precondition"
            }
            Self::A013PointEstimateOnly => {
                "middleware rewrites buy generality by giving up error guarantees"
            }
            Self::A014TechniqueQuarantined => {
                "AQP guarantees are conditional: when audited coverage falls below the \
                 promise, routing must stop trusting the technique until it is repaired"
            }
        }
    }

    /// Every code, in registry order.
    pub fn all() -> [LintCode; 14] {
        [
            Self::A001NonClosedAggregate,
            Self::A002UnsupportedShape,
            Self::A003JoinsExcludeFamily,
            Self::A004ProgressiveShape,
            Self::A005NoSynopsis,
            Self::A006SynopsisMismatch,
            Self::A007StaleSynopsis,
            Self::A008TableTooSmall,
            Self::A009MissingTable,
            Self::A010GroupSupportRisk,
            Self::A011SelectivePredicateRisk,
            Self::A012SampledJoinPrecondition,
            Self::A013PointEstimateOnly,
            Self::A014TechniqueQuarantined,
        ]
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: nothing is blocked, but the user should know.
    Note,
    /// A family is statically excluded, or a dynamic decline is likely.
    Warn,
    /// No approximate family (or no technique at all) can serve the plan.
    Error,
}

impl Severity {
    /// Lowercase label for rendering (`error`/`warn`/`note`).
    pub fn label(&self) -> &'static str {
        match self {
            Self::Error => "error",
            Self::Warn => "warn",
            Self::Note => "note",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let all = LintCode::all();
        for (i, c) in all.iter().enumerate() {
            assert_eq!(c.code(), format!("A{:03}", i + 1));
            assert!(!c.title().is_empty());
            assert!(!c.nsb_claim().is_empty());
        }
    }

    #[test]
    fn severity_orders_note_warn_error() {
        assert!(Severity::Note < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
        assert_eq!(Severity::Error.label(), "error");
    }
}
