//! Distribution-free concentration bounds and the sample-size planners AQP
//! derives from them.
//!
//! *No Silver Bullet* frames a-priori error guarantees as one of the hardest
//! asks in AQP. Before any data is seen, the only guarantees available are
//! distribution-free (Hoeffding/Chebyshev); once a pilot sample estimates the
//! variance, the far tighter CLT planner applies.

use crate::dist::Normal;

/// Hoeffding bound: for n i.i.d. observations bounded in `[a, b]`, the
/// probability that the sample mean deviates from the true mean by more than
/// `eps` is at most `2·exp(−2nε² / (b−a)²)`.
///
/// Returns that failure-probability bound.
///
/// # Panics
/// Panics if `b < a` or `eps <= 0` or `n == 0`.
pub fn hoeffding_bound(n: u64, range: (f64, f64), eps: f64) -> f64 {
    let (a, b) = range;
    assert!(b >= a, "range must satisfy b >= a");
    assert!(eps > 0.0, "eps must be positive");
    assert!(n > 0, "n must be positive");
    if b == a {
        return 0.0;
    }
    let w = b - a;
    (2.0 * (-2.0 * n as f64 * eps * eps / (w * w)).exp()).min(1.0)
}

/// Minimum sample size so that the Hoeffding bound on
/// `P(|mean − truth| > eps)` is at most `delta`.
///
/// # Panics
/// Panics on degenerate arguments (`eps <= 0`, `delta` outside (0,1), `b < a`).
pub fn hoeffding_sample_size(range: (f64, f64), eps: f64, delta: f64) -> u64 {
    let (a, b) = range;
    assert!(b >= a, "range must satisfy b >= a");
    assert!(eps > 0.0, "eps must be positive");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    if b == a {
        return 1;
    }
    let w = b - a;
    let n = w * w * (2.0 / delta).ln() / (2.0 * eps * eps);
    n.ceil() as u64
}

/// Chebyshev-based sample size: with population variance `var`, the sample
/// mean of n observations satisfies `P(|mean − μ| > eps) ≤ var / (n·ε²)`.
/// Returns the minimum n making that at most `delta`.
///
/// # Panics
/// Panics if `var < 0`, `eps <= 0`, or `delta` outside (0,1).
pub fn chebyshev_sample_size(var: f64, eps: f64, delta: f64) -> u64 {
    assert!(var >= 0.0, "variance must be non-negative");
    assert!(eps > 0.0, "eps must be positive");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    if var == 0.0 {
        return 1;
    }
    (var / (eps * eps * delta)).ceil() as u64
}

/// CLT-based sample size for an *absolute* error target: the minimum n such
/// that a `confidence`-level normal interval for the mean has half-width at
/// most `eps`, given population variance `var`.
pub fn clt_sample_size(var: f64, eps: f64, confidence: f64) -> u64 {
    assert!(var >= 0.0, "variance must be non-negative");
    assert!(eps > 0.0, "eps must be positive");
    if var == 0.0 {
        return 1;
    }
    let z = Normal::two_sided_critical(confidence);
    ((z * z * var) / (eps * eps)).ceil() as u64
}

/// CLT-based sample size for a *relative* error target on the mean: minimum n
/// such that the relative half-width is at most `rel_err`, given the
/// coefficient of variation `cv = σ/|μ|` (estimated from a pilot).
///
/// This is the planner at the heart of pilot-based a-priori AQP: `n ≥
/// (z·cv/ε_rel)²`.
pub fn clt_relative_sample_size(cv: f64, rel_err: f64, confidence: f64) -> u64 {
    assert!(cv >= 0.0, "coefficient of variation must be non-negative");
    assert!(rel_err > 0.0, "relative error target must be positive");
    if cv == 0.0 {
        return 1;
    }
    let z = Normal::two_sided_critical(confidence);
    ((z * cv / rel_err).powi(2)).ceil() as u64
}

/// Chernoff-style group-coverage planner: the minimum Bernoulli sampling rate
/// `q` such that a group of at least `group_size` rows appears in the sample
/// with probability at least `1 − delta`.
///
/// For Bernoulli(q) row sampling the miss probability of one group is
/// `(1 − q)^group_size ≤ exp(−q·group_size)`; union-bounding over
/// `num_groups` groups gives `q ≥ ln(num_groups/δ) / group_size`.
///
/// Used by E3/E12 and by the online planner's pilot-rate choice.
pub fn group_coverage_rate(group_size: u64, num_groups: u64, delta: f64) -> f64 {
    assert!(group_size > 0, "group_size must be positive");
    assert!(num_groups > 0, "num_groups must be positive");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    ((num_groups as f64 / delta).ln() / group_size as f64).min(1.0)
}

/// Probability that a group of `group_size` rows is entirely missed by
/// Bernoulli(q) row sampling: `(1 − q)^group_size`.
pub fn group_miss_probability(group_size: u64, q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1]");
    (1.0 - q).powf(group_size as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hoeffding_bound_decreases_in_n() {
        let b1 = hoeffding_bound(100, (0.0, 1.0), 0.05);
        let b2 = hoeffding_bound(1000, (0.0, 1.0), 0.05);
        assert!(b2 < b1);
        assert!(b1 <= 1.0);
    }

    #[test]
    fn hoeffding_bound_reference() {
        // 2 exp(-2 * 1000 * 0.0025) = 2 e^{-5}.
        let b = hoeffding_bound(1000, (0.0, 1.0), 0.05);
        assert!((b - 2.0 * (-5.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn hoeffding_degenerate_range() {
        assert_eq!(hoeffding_bound(10, (3.0, 3.0), 0.1), 0.0);
        assert_eq!(hoeffding_sample_size((3.0, 3.0), 0.1, 0.05), 1);
    }

    #[test]
    fn hoeffding_sample_size_achieves_bound() {
        let n = hoeffding_sample_size((0.0, 1.0), 0.02, 0.05);
        assert!(hoeffding_bound(n, (0.0, 1.0), 0.02) <= 0.05 + 1e-12);
        assert!(hoeffding_bound(n - 1, (0.0, 1.0), 0.02) > 0.05);
    }

    #[test]
    fn chebyshev_vs_hoeffding() {
        // For bounded [0,1] data with var 1/4 (worst case) Hoeffding is
        // tighter than Chebyshev at small delta.
        let h = hoeffding_sample_size((0.0, 1.0), 0.05, 0.01);
        let c = chebyshev_sample_size(0.25, 0.05, 0.01);
        assert!(h < c);
    }

    #[test]
    fn clt_is_tightest() {
        let clt = clt_sample_size(0.25, 0.05, 0.99);
        let h = hoeffding_sample_size((0.0, 1.0), 0.05, 0.01);
        assert!(clt < h);
    }

    #[test]
    fn clt_relative_sample_size_reference() {
        // cv=1, 5% rel err, 95% conf: (1.96/0.05)^2 ≈ 1537.
        let n = clt_relative_sample_size(1.0, 0.05, 0.95);
        assert!((1530..=1545).contains(&n), "n = {n}");
    }

    #[test]
    fn clt_zero_variance() {
        assert_eq!(clt_sample_size(0.0, 0.01, 0.95), 1);
        assert_eq!(clt_relative_sample_size(0.0, 0.01, 0.95), 1);
    }

    #[test]
    fn group_coverage_rate_bounds_miss_prob() {
        let q = group_coverage_rate(1000, 50, 0.01);
        // Union bound: 50 * miss <= 0.01.
        assert!(50.0 * group_miss_probability(1000, q) <= 0.0101);
    }

    #[test]
    fn group_coverage_rate_caps_at_one() {
        assert_eq!(group_coverage_rate(1, 1_000_000, 0.001), 1.0);
    }

    #[test]
    fn group_miss_probability_monotone() {
        assert!(group_miss_probability(100, 0.05) > group_miss_probability(100, 0.10));
        assert_eq!(group_miss_probability(100, 1.0), 0.0);
        assert_eq!(group_miss_probability(100, 0.0), 1.0);
    }
}
