//! Special functions underpinning the distribution implementations.
//!
//! All routines are implemented from first principles (Lanczos
//! approximation, power series, and continued fractions) so the crate has no
//! dependency on an external statistics library. Accuracies are on the order
//! of 1e-10 across the domains AQP needs (tail probabilities down to ~1e-12).

/// Natural log of the gamma function, via the Lanczos approximation (g = 7).
///
/// Accurate to ~15 significant digits for `x > 0`.
///
/// # Panics
/// Panics if `x <= 0` (the AQP layers only evaluate gamma on positive reals).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7, n = 9.
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// Uses the power series for `x < a + 1` and the continued fraction for the
/// complementary function otherwise (Numerical Recipes §6.2 strategy).
pub fn reg_lower_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "reg_lower_gamma domain: a > 0, x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cont_frac(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn reg_upper_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "reg_upper_gamma domain: a > 0, x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_series(a, x)
    } else {
        gamma_cont_frac(a, x)
    }
}

/// Series expansion of P(a, x); converges fast for x < a + 1.
fn gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction expansion of Q(a, x) (modified Lentz's method).
fn gamma_cont_frac(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// Continued-fraction evaluation with the symmetry transform for fast
/// convergence (Numerical Recipes §6.4).
pub fn reg_inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "reg_inc_beta requires a, b > 0");
    assert!((0.0..=1.0).contains(&x), "reg_inc_beta requires x in [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cont_frac(a, b, x) / a
    } else {
        1.0 - front * beta_cont_frac(b, a, 1.0 - x) / b
    }
}

/// Lentz continued fraction for the incomplete beta.
fn beta_cont_frac(a: f64, b: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..300 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h
}

/// Error function, computed through the incomplete gamma identity
/// `erf(x) = P(1/2, x²)` for `x ≥ 0` (odd extension for `x < 0`).
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        -erf(-x)
    } else {
        reg_lower_gamma(0.5, x * x)
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)`, evaluated through
/// the *upper* incomplete gamma so the right tail keeps full relative
/// precision (important for small tail probabilities in sample planning).
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        2.0 - erfc(-x)
    } else {
        reg_upper_gamma(0.5, x * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "expected {b}, got {a} (tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n−1)!
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            close(ln_gamma(n as f64), fact.ln(), 1e-12);
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π.
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Γ(3/2) = √π / 2.
        close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    fn ln_gamma_reflection_small_x() {
        // Γ(0.25) ≈ 3.625609908.
        close(ln_gamma(0.25), 3.625_609_908_221_908f64.ln(), 1e-10);
    }

    #[test]
    fn incomplete_gamma_boundaries() {
        assert_eq!(reg_lower_gamma(2.0, 0.0), 0.0);
        close(reg_lower_gamma(1.0, 1e9), 1.0, 1e-12);
        assert_eq!(reg_upper_gamma(2.0, 0.0), 1.0);
    }

    #[test]
    fn incomplete_gamma_exponential_identity() {
        // P(1, x) = 1 − e^{−x}.
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
            close(reg_lower_gamma(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
    }

    #[test]
    fn incomplete_gamma_complement() {
        for &a in &[0.5, 1.0, 3.0, 10.0] {
            for &x in &[0.1, 1.0, 5.0, 20.0] {
                close(reg_lower_gamma(a, x) + reg_upper_gamma(a, x), 1.0, 1e-12);
            }
        }
    }

    #[test]
    fn erf_reference_values() {
        // Abramowitz & Stegun table values.
        close(erf(0.0), 0.0, 1e-15);
        close(erf(0.5), 0.520_499_877_813_046_5, 1e-10);
        close(erf(1.0), 0.842_700_792_949_714_9, 1e-10);
        close(erf(2.0), 0.995_322_265_018_952_7, 1e-10);
        close(erf(-1.0), -0.842_700_792_949_714_9, 1e-10);
    }

    #[test]
    fn erfc_right_tail_precision() {
        // erfc(3) ≈ 2.209e-5; relative accuracy matters in the tail.
        let v = erfc(3.0);
        assert!((v - 2.209_049_699_858_544e-5).abs() / v < 1e-8);
    }

    #[test]
    fn inc_beta_symmetry_and_bounds() {
        assert_eq!(reg_inc_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(reg_inc_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 − I_{1−x}(b,a).
        for &x in &[0.1, 0.3, 0.5, 0.7, 0.9] {
            close(
                reg_inc_beta(2.5, 4.0, x),
                1.0 - reg_inc_beta(4.0, 2.5, 1.0 - x),
                1e-12,
            );
        }
    }

    #[test]
    fn inc_beta_uniform_identity() {
        // I_x(1, 1) = x.
        for &x in &[0.0, 0.2, 0.5, 0.8, 1.0] {
            close(reg_inc_beta(1.0, 1.0, x), x, 1e-12);
        }
    }

    #[test]
    fn inc_beta_reference_value() {
        // I_{0.5}(2, 3) = 0.6875 (binomial CDF identity).
        close(reg_inc_beta(2.0, 3.0, 0.5), 0.6875, 1e-12);
    }
}
