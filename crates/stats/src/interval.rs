//! Confidence intervals and coverage accounting.

use serde::{Deserialize, Serialize};

use crate::dist::Normal;

/// A closed real interval `[lo, hi]` carrying a nominal confidence level.
///
/// Intervals are the lingua franca of every AQP answer in this workspace:
/// estimators produce them, experiments measure their empirical coverage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
    /// Nominal confidence level in (0, 1), e.g. `0.95`.
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Creates an interval, normalizing endpoint order.
    ///
    /// # Panics
    /// Panics if `confidence` is outside (0, 1) or either endpoint is NaN.
    pub fn new(lo: f64, hi: f64, confidence: f64) -> Self {
        assert!(
            !lo.is_nan() && !hi.is_nan(),
            "interval endpoints must not be NaN"
        );
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0,1), got {confidence}"
        );
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        Self { lo, hi, confidence }
    }

    /// The degenerate interval around an exactly-known value.
    pub fn exact(value: f64, confidence: f64) -> Self {
        Self::new(value, value, confidence)
    }

    /// Interval width `hi − lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint of the interval.
    pub fn midpoint(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }

    /// Half-width (the ± margin around the midpoint).
    pub fn half_width(&self) -> f64 {
        self.width() / 2.0
    }

    /// Whether the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Half-width divided by |midpoint| — the *relative* margin users reason
    /// about ("answer is within ±2%"). Returns `f64::INFINITY` when the
    /// midpoint is zero.
    pub fn relative_half_width(&self) -> f64 {
        let m = self.midpoint().abs();
        if m == 0.0 {
            f64::INFINITY
        } else {
            self.half_width() / m
        }
    }
}

/// Empirical coverage accounting across repeated trials: the workhorse of the
/// CI-validity experiments (E2 in `EXPERIMENTS.md`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoverageCounter {
    hits: u64,
    trials: u64,
}

impl CoverageCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one trial: did the interval contain the ground truth?
    pub fn record(&mut self, interval: &ConfidenceInterval, truth: f64) {
        self.trials += 1;
        if interval.contains(truth) {
            self.hits += 1;
        }
    }

    /// Records a pre-judged boolean outcome.
    pub fn record_hit(&mut self, hit: bool) {
        self.trials += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Number of trials recorded so far.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Number of trials whose interval covered the truth.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Empirical coverage fraction; NaN if no trials recorded.
    pub fn coverage(&self) -> f64 {
        if self.trials == 0 {
            f64::NAN
        } else {
            self.hits as f64 / self.trials as f64
        }
    }

    /// Wilson score interval for the coverage proportion itself, so coverage
    /// experiments can distinguish sampling noise from genuine under-coverage.
    pub fn coverage_interval(&self, confidence: f64) -> ConfidenceInterval {
        let n = self.trials as f64;
        assert!(n > 0.0, "coverage_interval requires at least one trial");
        let p = self.coverage();
        let z = Normal::two_sided_critical(confidence);
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let margin = z * ((p * (1.0 - p) + z2 / (4.0 * n)) / n).sqrt() / denom;
        ConfidenceInterval::new(
            (center - margin).max(0.0),
            (center + margin).min(1.0),
            confidence,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_basics() {
        let ci = ConfidenceInterval::new(1.0, 3.0, 0.95);
        assert_eq!(ci.width(), 2.0);
        assert_eq!(ci.midpoint(), 2.0);
        assert_eq!(ci.half_width(), 1.0);
        assert!(ci.contains(1.0) && ci.contains(3.0) && ci.contains(2.5));
        assert!(!ci.contains(0.99) && !ci.contains(3.01));
        assert!((ci.relative_half_width() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn interval_normalizes_order() {
        let ci = ConfidenceInterval::new(5.0, 2.0, 0.9);
        assert_eq!((ci.lo, ci.hi), (2.0, 5.0));
    }

    #[test]
    fn exact_interval_has_zero_width() {
        let ci = ConfidenceInterval::exact(7.0, 0.95);
        assert_eq!(ci.width(), 0.0);
        assert!(ci.contains(7.0));
    }

    #[test]
    fn relative_half_width_zero_midpoint() {
        let ci = ConfidenceInterval::new(-1.0, 1.0, 0.95);
        assert!(ci.relative_half_width().is_infinite());
    }

    #[test]
    #[should_panic(expected = "confidence must be in (0,1)")]
    fn rejects_bad_confidence() {
        ConfidenceInterval::new(0.0, 1.0, 1.0);
    }

    #[test]
    fn coverage_counter_counts() {
        let mut c = CoverageCounter::new();
        let ci = ConfidenceInterval::new(0.0, 1.0, 0.95);
        c.record(&ci, 0.5);
        c.record(&ci, 2.0);
        c.record(&ci, 1.0);
        assert_eq!(c.trials(), 3);
        assert_eq!(c.hits(), 2);
        assert!((c.coverage() - 2.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn wilson_interval_sane() {
        let mut c = CoverageCounter::new();
        for i in 0..1000 {
            c.record_hit(i % 20 != 0); // 95% hit rate.
        }
        let ci = c.coverage_interval(0.95);
        assert!(ci.contains(0.95));
        assert!(ci.lo > 0.9 && ci.hi < 1.0);
    }

    #[test]
    fn empty_counter_is_nan() {
        assert!(CoverageCounter::new().coverage().is_nan());
    }
}
