//! The [`Estimate`] type: a point estimate with a variance estimate, plus
//! the delta-method propagation rules that let composite aggregates (AVG as
//! SUM/COUNT, products, linear combinations) inherit valid intervals.

use serde::{Deserialize, Serialize};

use crate::dist::{Normal, StudentT};
use crate::interval::ConfidenceInterval;

/// A point estimate together with an estimate of its sampling variance and
/// the (effective) sample size that produced it.
///
/// `Estimate` is what every approximate operator in this workspace returns.
/// Converting to a [`ConfidenceInterval`] applies the CLT: a Student-t
/// interval when the sample size is small, a normal interval otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// The point estimate.
    pub value: f64,
    /// Estimated variance of the *estimator* (already divided by n where
    /// applicable — this is `Var(θ̂)`, not the population variance).
    pub variance: f64,
    /// Number of independent sampling units behind the estimate (rows for
    /// row-level designs, blocks for block designs, strata-summed for
    /// stratified designs). Drives the t-vs-normal choice.
    pub n: u64,
}

/// Below this many sampling units the CLT interval switches from the normal
/// to the Student-t critical value.
const T_THRESHOLD: u64 = 100;

impl Estimate {
    /// Creates an estimate.
    ///
    /// # Panics
    /// Panics if `variance` is negative or NaN, or `value` is NaN.
    pub fn new(value: f64, variance: f64, n: u64) -> Self {
        assert!(!value.is_nan(), "estimate value must not be NaN");
        assert!(
            variance >= 0.0 && !variance.is_nan(),
            "estimator variance must be >= 0, got {variance}"
        );
        Self { value, variance, n }
    }

    /// An exactly-known quantity (zero variance).
    pub fn exact(value: f64) -> Self {
        Self::new(value, 0.0, u64::MAX)
    }

    /// Standard error of the estimator.
    pub fn std_err(&self) -> f64 {
        self.variance.sqrt()
    }

    /// CLT-based two-sided confidence interval at the given confidence.
    ///
    /// Uses Student-t critical values when fewer than 100 sampling units
    /// back the estimate, normal critical values otherwise.
    pub fn ci(&self, confidence: f64) -> ConfidenceInterval {
        let crit = if self.n < T_THRESHOLD && self.n >= 2 {
            StudentT::new((self.n - 1) as f64).two_sided_critical(confidence)
        } else {
            Normal::two_sided_critical(confidence)
        };
        let margin = crit * self.std_err();
        ConfidenceInterval::new(self.value - margin, self.value + margin, confidence)
    }

    /// Relative standard error `se / |value|`; infinite when value is 0.
    pub fn relative_std_err(&self) -> f64 {
        if self.value == 0.0 {
            f64::INFINITY
        } else {
            self.std_err() / self.value.abs()
        }
    }

    /// Relative error of this estimate against a known ground truth.
    pub fn relative_error(&self, truth: f64) -> f64 {
        if truth == 0.0 {
            if self.value == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.value - truth).abs() / truth.abs()
        }
    }

    /// Sum of two *independent* estimates: values add, variances add.
    pub fn add_independent(&self, other: &Estimate) -> Estimate {
        Estimate::new(
            self.value + other.value,
            self.variance + other.variance,
            self.n.min(other.n),
        )
    }

    /// Difference of two independent estimates.
    pub fn sub_independent(&self, other: &Estimate) -> Estimate {
        Estimate::new(
            self.value - other.value,
            self.variance + other.variance,
            self.n.min(other.n),
        )
    }

    /// Scales the estimate by a deterministic constant `c`: variance scales
    /// by `c²`. This is the Horvitz–Thompson "inverse inclusion probability"
    /// upscaling step.
    pub fn scale(&self, c: f64) -> Estimate {
        Estimate::new(self.value * c, self.variance * c * c, self.n)
    }

    /// Product of two independent estimates via the delta method:
    /// `Var(XY) ≈ Y²Var(X) + X²Var(Y)`.
    pub fn mul_independent(&self, other: &Estimate) -> Estimate {
        let v =
            other.value * other.value * self.variance + self.value * self.value * other.variance;
        Estimate::new(self.value * other.value, v, self.n.min(other.n))
    }

    /// Ratio of two estimates with known covariance, via the delta method:
    ///
    /// `Var(X/Y) ≈ (X/Y)² [ Var(X)/X² + Var(Y)/Y² − 2Cov(X,Y)/(XY) ]`.
    ///
    /// This is the textbook ratio estimator used for `AVG = SUM / COUNT`
    /// under Bernoulli sampling, where numerator and denominator are highly
    /// correlated. Returns an estimate with infinite variance when the
    /// denominator is zero.
    pub fn ratio(&self, denom: &Estimate, cov: f64) -> Estimate {
        if denom.value == 0.0 {
            return Estimate::new(0.0, f64::MAX, self.n.min(denom.n));
        }
        let r = self.value / denom.value;
        let rel = self.variance / (self.value * self.value).max(f64::MIN_POSITIVE)
            + denom.variance / (denom.value * denom.value)
            - 2.0 * cov / (self.value * denom.value).abs().max(f64::MIN_POSITIVE)
                * (self.value * denom.value).signum();
        let v = (r * r * rel).max(0.0);
        Estimate::new(r, v, self.n.min(denom.n))
    }

    /// Ratio of two *independent* estimates (zero covariance).
    pub fn ratio_independent(&self, denom: &Estimate) -> Estimate {
        self.ratio(denom, 0.0)
    }
}

/// Computes the minimum per-aggregate confidence when a query carries `k`
/// aggregates (or groups) that must *jointly* satisfy the user's confidence
/// `gamma`, via Boole's inequality: each aggregate gets `1 − (1 − γ)/k`.
///
/// This is the standard union-bound confidence split used by a-priori AQP
/// planners.
///
/// # Panics
/// Panics if `k == 0` or `gamma` not in (0, 1).
pub fn boole_split(gamma: f64, k: usize) -> f64 {
    assert!(k > 0, "boole_split requires at least one aggregate");
    assert!(
        gamma > 0.0 && gamma < 1.0,
        "gamma must be in (0,1), got {gamma}"
    );
    1.0 - (1.0 - gamma) / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_normal_regime() {
        // se = 2, n large => 95% margin ≈ 1.96 * 2.
        let e = Estimate::new(100.0, 4.0, 10_000);
        let ci = e.ci(0.95);
        assert!((ci.half_width() - 3.919_927_969).abs() < 1e-6);
        assert!((ci.midpoint() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn ci_t_regime_is_wider() {
        let small = Estimate::new(100.0, 4.0, 10);
        let large = Estimate::new(100.0, 4.0, 10_000);
        assert!(small.ci(0.95).width() > large.ci(0.95).width());
    }

    #[test]
    fn exact_estimate_zero_width() {
        let e = Estimate::exact(5.0);
        assert_eq!(e.ci(0.99).width(), 0.0);
        assert_eq!(e.std_err(), 0.0);
    }

    #[test]
    fn add_sub_independent() {
        let a = Estimate::new(10.0, 1.0, 50);
        let b = Estimate::new(20.0, 3.0, 80);
        let s = a.add_independent(&b);
        assert_eq!(s.value, 30.0);
        assert_eq!(s.variance, 4.0);
        assert_eq!(s.n, 50);
        let d = a.sub_independent(&b);
        assert_eq!(d.value, -10.0);
        assert_eq!(d.variance, 4.0);
    }

    #[test]
    fn scale_squares_variance() {
        let e = Estimate::new(10.0, 2.0, 100).scale(10.0);
        assert_eq!(e.value, 100.0);
        assert_eq!(e.variance, 200.0);
    }

    #[test]
    fn product_delta_method() {
        let a = Estimate::new(3.0, 0.01, 1000);
        let b = Estimate::new(4.0, 0.04, 1000);
        let p = a.mul_independent(&b);
        assert_eq!(p.value, 12.0);
        // 16*0.01 + 9*0.04 = 0.52
        assert!((p.variance - 0.52).abs() < 1e-12);
    }

    #[test]
    fn ratio_independent_delta_method() {
        let num = Estimate::new(100.0, 25.0, 1000); // rel var 25/10000 = 0.0025
        let den = Estimate::new(50.0, 4.0, 1000); // rel var 4/2500 = 0.0016
        let r = num.ratio_independent(&den);
        assert!((r.value - 2.0).abs() < 1e-12);
        assert!((r.variance - 4.0 * 0.0041).abs() < 1e-10);
    }

    #[test]
    fn ratio_positive_covariance_shrinks_variance() {
        let num = Estimate::new(100.0, 25.0, 1000);
        let den = Estimate::new(50.0, 4.0, 1000);
        let indep = num.ratio(&den, 0.0);
        let corr = num.ratio(&den, 5.0);
        assert!(corr.variance < indep.variance);
    }

    #[test]
    fn ratio_zero_denominator() {
        let num = Estimate::new(10.0, 1.0, 100);
        let den = Estimate::new(0.0, 1.0, 100);
        let r = num.ratio_independent(&den);
        assert_eq!(r.variance, f64::MAX);
    }

    #[test]
    fn relative_error_cases() {
        let e = Estimate::new(105.0, 0.0, 10);
        assert!((e.relative_error(100.0) - 0.05).abs() < 1e-12);
        assert_eq!(Estimate::new(0.0, 0.0, 1).relative_error(0.0), 0.0);
        assert_eq!(
            Estimate::new(1.0, 0.0, 1).relative_error(0.0),
            f64::INFINITY
        );
    }

    #[test]
    fn boole_split_values() {
        assert!((boole_split(0.95, 1) - 0.95).abs() < 1e-15);
        assert!((boole_split(0.95, 5) - 0.99).abs() < 1e-12);
        assert!((boole_split(0.9, 10) - 0.99).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one aggregate")]
    fn boole_split_zero_k() {
        boole_split(0.95, 0);
    }

    #[test]
    #[should_panic(expected = "variance must be >= 0")]
    fn rejects_negative_variance() {
        Estimate::new(1.0, -0.5, 10);
    }
}
