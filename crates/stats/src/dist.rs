//! Probability distributions used for confidence-interval construction.
//!
//! Each distribution exposes a CDF and a quantile function (inverse CDF).
//! Quantiles use analytic initial guesses refined by Newton iterations on the
//! CDF, giving ~1e-10 accuracy across the range AQP needs.

use crate::special::{erf, reg_inc_beta, reg_lower_gamma};

/// The standard normal distribution N(0, 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Normal;

impl Normal {
    /// Probability density function.
    pub fn pdf(x: f64) -> f64 {
        (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
    }

    /// Cumulative distribution function Φ(x).
    pub fn cdf(x: f64) -> f64 {
        0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
    }

    /// Quantile function Φ⁻¹(p) via Acklam's rational approximation, refined
    /// with one Halley step for full double precision.
    ///
    /// # Panics
    /// Panics if `p` is outside the open interval (0, 1).
    pub fn quantile(p: f64) -> f64 {
        assert!(
            p > 0.0 && p < 1.0,
            "normal quantile requires p in (0,1), got {p}"
        );
        // Acklam's coefficients.
        #[allow(clippy::excessive_precision)]
        const A: [f64; 6] = [
            -3.969_683_028_665_376e1,
            2.209_460_984_245_205e2,
            -2.759_285_104_469_687e2,
            1.383_577_518_672_690e2,
            -3.066_479_806_614_716e1,
            2.506_628_277_459_239,
        ];
        const B: [f64; 5] = [
            -5.447_609_879_822_406e1,
            1.615_858_368_580_409e2,
            -1.556_989_798_598_866e2,
            6.680_131_188_771_972e1,
            -1.328_068_155_288_572e1,
        ];
        const C: [f64; 6] = [
            -7.784_894_002_430_293e-3,
            -3.223_964_580_411_365e-1,
            -2.400_758_277_161_838,
            -2.549_732_539_343_734,
            4.374_664_141_464_968,
            2.938_163_982_698_783,
        ];
        const D: [f64; 4] = [
            7.784_695_709_041_462e-3,
            3.224_671_290_700_398e-1,
            2.445_134_137_142_996,
            3.754_408_661_907_416,
        ];
        const P_LOW: f64 = 0.024_25;
        let x = if p < P_LOW {
            let q = (-2.0 * p.ln()).sqrt();
            (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
                / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
        } else if p <= 1.0 - P_LOW {
            let q = p - 0.5;
            let r = q * q;
            (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
                / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
        } else {
            let q = (-2.0 * (1.0 - p).ln()).sqrt();
            -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
                / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
        };
        // One Halley refinement step.
        let e = Self::cdf(x) - p;
        let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
        x - u / (1.0 + x * u / 2.0)
    }

    /// The two-sided critical value `z` such that P(|Z| ≤ z) = `confidence`.
    pub fn two_sided_critical(confidence: f64) -> f64 {
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0,1), got {confidence}"
        );
        Self::quantile(0.5 + confidence / 2.0)
    }
}

/// Student's *t* distribution with `df` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentT {
    df: f64,
}

impl StudentT {
    /// Creates a Student-t distribution.
    ///
    /// # Panics
    /// Panics if `df <= 0`.
    pub fn new(df: f64) -> Self {
        assert!(df > 0.0, "Student-t requires df > 0, got {df}");
        Self { df }
    }

    /// Degrees of freedom.
    pub fn df(&self) -> f64 {
        self.df
    }

    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        let v = self.df;
        let ln_c = crate::special::ln_gamma((v + 1.0) / 2.0)
            - crate::special::ln_gamma(v / 2.0)
            - 0.5 * (v * std::f64::consts::PI).ln();
        (ln_c - (v + 1.0) / 2.0 * (1.0 + x * x / v).ln()).exp()
    }

    /// Cumulative distribution function, through the incomplete beta.
    pub fn cdf(&self, x: f64) -> f64 {
        let v = self.df;
        if x == 0.0 {
            return 0.5;
        }
        let ib = reg_inc_beta(v / 2.0, 0.5, v / (v + x * x));
        if x > 0.0 {
            1.0 - 0.5 * ib
        } else {
            0.5 * ib
        }
    }

    /// Quantile function: normal-start Newton iteration on the CDF.
    ///
    /// # Panics
    /// Panics if `p` is outside (0, 1).
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(
            p > 0.0 && p < 1.0,
            "t quantile requires p in (0,1), got {p}"
        );
        if (p - 0.5).abs() < 1e-16 {
            return 0.0;
        }
        // Symmetry: solve for the upper half only.
        if p < 0.5 {
            return -self.quantile(1.0 - p);
        }
        // Initial guess: the normal quantile, inflated by the Cornish–Fisher
        // leading correction for heavy tails.
        let z = Normal::quantile(p);
        let v = self.df;
        let guess = z + (z * z * z + z) / (4.0 * v);
        bracketed_newton(|x| self.cdf(x), |x| self.pdf(x), p, guess.max(1e-8), 0.0)
    }

    /// Two-sided critical value `t` with P(|T| ≤ t) = `confidence`.
    pub fn two_sided_critical(&self, confidence: f64) -> f64 {
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0,1), got {confidence}"
        );
        self.quantile(0.5 + confidence / 2.0)
    }
}

/// Chi-squared distribution with `df` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    df: f64,
}

impl ChiSquared {
    /// Creates a chi-squared distribution.
    ///
    /// # Panics
    /// Panics if `df <= 0`.
    pub fn new(df: f64) -> Self {
        assert!(df > 0.0, "chi-squared requires df > 0, got {df}");
        Self { df }
    }

    /// Degrees of freedom.
    pub fn df(&self) -> f64 {
        self.df
    }

    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let k = self.df / 2.0;
        ((k - 1.0) * x.ln() - x / 2.0 - k * 2.0f64.ln() - crate::special::ln_gamma(k)).exp()
    }

    /// Cumulative distribution function, through the incomplete gamma.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        reg_lower_gamma(self.df / 2.0, x / 2.0)
    }

    /// Quantile function: Wilson–Hilferty start, Newton refinement.
    ///
    /// # Panics
    /// Panics if `p` is outside (0, 1).
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(
            p > 0.0 && p < 1.0,
            "chi2 quantile requires p in (0,1), got {p}"
        );
        let v = self.df;
        // Wilson–Hilferty approximation.
        let z = Normal::quantile(p);
        let c = 2.0 / (9.0 * v);
        let guess = (v * (1.0 - c + z * c.sqrt()).powi(3)).max(1e-8);
        bracketed_newton(|x| self.cdf(x), |x| self.pdf(x), p, guess, 0.0)
    }
}

/// Solves `cdf(x) = p` for `x > floor` by Newton's method confined to a
/// bracket. The bracket's upper end is found by doubling from the initial
/// guess; any Newton step leaving the bracket falls back to bisection, so the
/// iteration cannot diverge even where the density is tiny.
fn bracketed_newton(
    cdf: impl Fn(f64) -> f64,
    pdf: impl Fn(f64) -> f64,
    p: f64,
    guess: f64,
    floor: f64,
) -> f64 {
    let mut lo = floor;
    let mut hi = guess.max(floor + 1e-8);
    // Expand the upper bracket until it encloses the quantile.
    for _ in 0..1100 {
        if cdf(hi) >= p {
            break;
        }
        lo = hi;
        hi = hi * 2.0 + 1.0;
    }
    let mut x = guess.clamp(lo + (hi - lo) * 1e-6, hi - (hi - lo) * 1e-6);
    for _ in 0..200 {
        let f = cdf(x) - p;
        if f > 0.0 {
            hi = x;
        } else {
            lo = x;
        }
        let d = pdf(x);
        let mut next = if d > 0.0 { x - f / d } else { f64::NAN };
        if !(next > lo && next < hi) {
            next = 0.5 * (lo + hi);
        }
        if (next - x).abs() <= 1e-14 * (1.0 + x.abs()) {
            return next;
        }
        x = next;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "expected {b}, got {a}"
        );
    }

    #[test]
    fn normal_cdf_reference() {
        close(Normal::cdf(0.0), 0.5, 1e-14);
        close(Normal::cdf(1.0), 0.841_344_746_068_542_9, 1e-10);
        close(Normal::cdf(-1.96), 0.024_997_895_148_220_43, 1e-8);
        close(Normal::cdf(2.575_829), 0.995, 1e-6);
    }

    #[test]
    fn normal_quantile_reference() {
        close(Normal::quantile(0.975), 1.959_963_984_540_054, 1e-10);
        close(Normal::quantile(0.5), 0.0, 1e-12);
        close(Normal::quantile(0.995), 2.575_829_303_548_901, 1e-10);
        close(Normal::quantile(0.05), -1.644_853_626_951_472, 1e-10);
    }

    #[test]
    fn normal_quantile_tails() {
        // Deep tails should still round-trip through the CDF.
        for &p in &[1e-10, 1e-6, 1e-3, 0.999, 1.0 - 1e-6] {
            let x = Normal::quantile(p);
            close(Normal::cdf(x), p, 1e-9);
        }
    }

    #[test]
    fn normal_two_sided_critical() {
        close(
            Normal::two_sided_critical(0.95),
            1.959_963_984_540_054,
            1e-9,
        );
        close(
            Normal::two_sided_critical(0.99),
            2.575_829_303_548_901,
            1e-9,
        );
    }

    #[test]
    fn t_cdf_reference() {
        // With df → ∞, t approaches normal; with df = 1 it is Cauchy.
        let t1 = StudentT::new(1.0);
        close(t1.cdf(1.0), 0.75, 1e-10); // Cauchy CDF at 1.
        let t10 = StudentT::new(10.0);
        close(t10.cdf(0.0), 0.5, 1e-14);
        // Reference: P(T_10 <= 1.812461) = 0.95.
        close(t10.cdf(1.812_461_122_811_68), 0.95, 1e-9);
    }

    #[test]
    fn t_quantile_reference() {
        let t10 = StudentT::new(10.0);
        close(t10.quantile(0.95), 1.812_461_122_811_68, 1e-8);
        close(t10.quantile(0.975), 2.228_138_851_986_27, 1e-8);
        let t2 = StudentT::new(2.0);
        close(t2.quantile(0.975), 4.302_652_729_911_28, 1e-8);
        // Symmetry.
        close(t10.quantile(0.025), -t10.quantile(0.975), 1e-10);
    }

    #[test]
    fn t_converges_to_normal() {
        let t = StudentT::new(1e7);
        close(t.quantile(0.975), Normal::quantile(0.975), 1e-5);
    }

    #[test]
    fn t_quantile_roundtrip() {
        for &df in &[1.0, 3.0, 7.0, 30.0, 200.0] {
            let t = StudentT::new(df);
            for &p in &[0.01, 0.1, 0.5, 0.9, 0.999] {
                let x = t.quantile(p);
                close(t.cdf(x), p, 1e-9);
            }
        }
    }

    #[test]
    fn chi2_cdf_reference() {
        let c2 = ChiSquared::new(2.0);
        // χ²(2) is Exp(1/2): CDF = 1 − e^{−x/2}.
        for &x in &[0.5, 1.0, 3.0, 10.0] {
            close(c2.cdf(x), 1.0 - (-x / 2.0f64).exp(), 1e-12);
        }
    }

    #[test]
    fn chi2_quantile_reference() {
        let c1 = ChiSquared::new(1.0);
        // χ²(1) 95th percentile = z_{0.975}² ≈ 3.84146.
        close(c1.quantile(0.95), 3.841_458_820_694_124, 1e-8);
        let c10 = ChiSquared::new(10.0);
        close(c10.quantile(0.95), 18.307_038_053_275_146, 1e-8);
    }

    #[test]
    fn chi2_quantile_roundtrip() {
        for &df in &[1.0, 4.0, 17.0, 100.0] {
            let c = ChiSquared::new(df);
            for &p in &[0.005, 0.05, 0.5, 0.95, 0.995] {
                let x = c.quantile(p);
                close(c.cdf(x), p, 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "p in (0,1)")]
    fn normal_quantile_rejects_zero() {
        Normal::quantile(0.0);
    }

    #[test]
    #[should_panic(expected = "df > 0")]
    fn t_rejects_nonpositive_df() {
        StudentT::new(0.0);
    }
}
