//! Streaming moment accumulators (Welford's algorithm), plain and weighted.
//!
//! These are the single-pass building blocks every sampler-fed estimator
//! uses: numerically stable mean/variance without storing the sample.

use aqp_mergeable::{tag, wire, CodecError, MergeError, Partial};
use bytes::{BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Streaming count / mean / variance accumulator (Welford).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Moments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Accumulates one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Builds from a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut m = Self::new();
        for &x in xs {
            m.push(x);
        }
        m
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; NaN when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Running sum.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Minimum observed value; +∞ when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observed value; −∞ when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Unbiased sample variance (divides by n−1); NaN when n < 2.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population variance (divides by n); NaN when empty.
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Variance of the sample mean, `s²/n`; NaN when n < 2.
    pub fn variance_of_mean(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.variance() / self.n as f64
        }
    }

    /// Merges two accumulators (parallel Welford / Chan et al.).
    pub fn merge(&self, other: &Moments) -> Moments {
        if other.n == 0 {
            return *self;
        }
        if self.n == 0 {
            return *other;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        Moments {
            n,
            mean,
            m2,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            sum: self.sum + other.sum,
        }
    }
}

/// Moments merge via the parallel-Welford combine: exact for `n`, `sum`,
/// `min`, `max`; mean and m2 agree with single-pass accumulation up to
/// floating-point round-off.
impl Partial for Moments {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        *self = Moments::merge(self, other);
        Ok(())
    }

    fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(2 + 6 * 8);
        wire::write_header(&mut buf, tag::MOMENTS);
        buf.put_u64(self.n);
        wire::write_f64(&mut buf, self.mean);
        wire::write_f64(&mut buf, self.m2);
        wire::write_f64(&mut buf, self.min);
        wire::write_f64(&mut buf, self.max);
        wire::write_f64(&mut buf, self.sum);
        buf.freeze()
    }

    fn from_bytes(mut buf: &[u8]) -> Result<Self, CodecError> {
        let buf = &mut buf;
        wire::read_header(buf, tag::MOMENTS)?;
        Ok(Moments {
            n: wire::read_u64(buf)?,
            mean: wire::read_f64(buf)?,
            m2: wire::read_f64(buf)?,
            min: wire::read_f64(buf)?,
            max: wire::read_f64(buf)?,
            sum: wire::read_f64(buf)?,
        })
    }
}

/// Weighted streaming moments, for Horvitz–Thompson-weighted samples
/// (stratified, distinct, measure-biased designs produce unequal weights).
///
/// Uses reliability-weighted Welford; `variance()` is the frequency-weighted
/// unbiased estimate with Bessel-style correction via effective sample size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WeightedMoments {
    n: u64,
    w_sum: f64,
    w2_sum: f64,
    mean: f64,
    m2: f64,
    weighted_sum: f64,
}

impl WeightedMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates an observation `x` with weight `w > 0`.
    ///
    /// # Panics
    /// Panics if `w` is not finite and positive.
    pub fn push(&mut self, x: f64, w: f64) {
        assert!(
            w > 0.0 && w.is_finite(),
            "weight must be positive and finite, got {w}"
        );
        self.n += 1;
        self.w_sum += w;
        self.w2_sum += w * w;
        self.weighted_sum += w * x;
        let delta = x - self.mean;
        self.mean += (w / self.w_sum) * delta;
        self.m2 += w * delta * (x - self.mean);
    }

    /// Number of observations (not weight mass).
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Total weight mass Σw — the HT estimate of the population count when
    /// weights are inverse inclusion probabilities.
    pub fn weight_sum(&self) -> f64 {
        self.w_sum
    }

    /// Weighted sum Σ w·x — the HT estimate of the population SUM.
    pub fn weighted_sum(&self) -> f64 {
        self.weighted_sum
    }

    /// Weighted mean Σwx / Σw; NaN when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Effective sample size `(Σw)² / Σw²` (Kish). Equals n for equal
    /// weights; smaller when weights are uneven.
    pub fn effective_sample_size(&self) -> f64 {
        if self.w2_sum == 0.0 {
            0.0
        } else {
            self.w_sum * self.w_sum / self.w2_sum
        }
    }

    /// Frequency-weighted unbiased variance; NaN when effective n ≤ 1.
    pub fn variance(&self) -> f64 {
        let neff = self.effective_sample_size();
        if neff <= 1.0 {
            return f64::NAN;
        }
        (self.m2 / self.w_sum) * (neff / (neff - 1.0))
    }

    /// Variance of the weighted mean, `s² / n_eff`.
    pub fn variance_of_mean(&self) -> f64 {
        let neff = self.effective_sample_size();
        if neff <= 1.0 {
            return f64::NAN;
        }
        self.variance() / neff
    }

    /// Merges two accumulators.
    pub fn merge(&self, other: &WeightedMoments) -> WeightedMoments {
        if other.n == 0 {
            return *self;
        }
        if self.n == 0 {
            return *other;
        }
        let w_sum = self.w_sum + other.w_sum;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.w_sum / w_sum;
        let m2 = self.m2 + other.m2 + delta * delta * self.w_sum * other.w_sum / w_sum;
        WeightedMoments {
            n: self.n + other.n,
            w_sum,
            w2_sum: self.w2_sum + other.w2_sum,
            mean,
            m2,
            weighted_sum: self.weighted_sum + other.weighted_sum,
        }
    }
}

/// Same contract as [`Moments`]: exact counts and weight masses, combined
/// mean/m2 within floating-point round-off of single-pass accumulation.
impl Partial for WeightedMoments {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        *self = WeightedMoments::merge(self, other);
        Ok(())
    }

    fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(2 + 6 * 8);
        wire::write_header(&mut buf, tag::WEIGHTED_MOMENTS);
        buf.put_u64(self.n);
        wire::write_f64(&mut buf, self.w_sum);
        wire::write_f64(&mut buf, self.w2_sum);
        wire::write_f64(&mut buf, self.mean);
        wire::write_f64(&mut buf, self.m2);
        wire::write_f64(&mut buf, self.weighted_sum);
        buf.freeze()
    }

    fn from_bytes(mut buf: &[u8]) -> Result<Self, CodecError> {
        let buf = &mut buf;
        wire::read_header(buf, tag::WEIGHTED_MOMENTS)?;
        Ok(WeightedMoments {
            n: wire::read_u64(buf)?,
            w_sum: wire::read_f64(buf)?,
            w2_sum: wire::read_f64(buf)?,
            mean: wire::read_f64(buf)?,
            m2: wire::read_f64(buf)?,
            weighted_sum: wire::read_f64(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_basic() {
        let m = Moments::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        assert!((m.population_variance() - 4.0).abs() < 1e-12);
        assert!((m.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(m.min(), 2.0);
        assert_eq!(m.max(), 9.0);
        assert_eq!(m.sum(), 40.0);
    }

    #[test]
    fn moments_empty_and_singleton() {
        let e = Moments::new();
        assert!(e.mean().is_nan());
        assert!(e.variance().is_nan());
        let mut s = Moments::new();
        s.push(3.0);
        assert_eq!(s.mean(), 3.0);
        assert!(s.variance().is_nan());
        assert_eq!(s.population_variance(), 0.0);
    }

    #[test]
    fn moments_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let all = Moments::from_slice(&xs);
        let left = Moments::from_slice(&xs[..37]);
        let right = Moments::from_slice(&xs[37..]);
        let merged = left.merge(&right);
        assert_eq!(merged.count(), all.count());
        assert!((merged.mean() - all.mean()).abs() < 1e-10);
        assert!((merged.variance() - all.variance()).abs() < 1e-10);
    }

    #[test]
    fn moments_merge_with_empty() {
        let m = Moments::from_slice(&[1.0, 2.0]);
        assert_eq!(m.merge(&Moments::new()), m);
        assert_eq!(Moments::new().merge(&m), m);
    }

    #[test]
    fn weighted_equal_weights_match_unweighted() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let m = Moments::from_slice(&xs);
        let mut w = WeightedMoments::new();
        for &x in &xs {
            w.push(x, 3.0);
        }
        assert!((w.mean() - m.mean()).abs() < 1e-12);
        assert!((w.variance() - m.variance()).abs() < 1e-12);
        assert!((w.effective_sample_size() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_ht_sums() {
        let mut w = WeightedMoments::new();
        w.push(10.0, 2.0);
        w.push(20.0, 4.0);
        assert_eq!(w.weight_sum(), 6.0);
        assert_eq!(w.weighted_sum(), 100.0);
        assert!((w.mean() - 100.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_effective_size_shrinks_with_skewed_weights() {
        let mut even = WeightedMoments::new();
        let mut skew = WeightedMoments::new();
        for i in 0..10 {
            even.push(i as f64, 1.0);
            skew.push(i as f64, if i == 0 { 100.0 } else { 1.0 });
        }
        assert!(skew.effective_sample_size() < even.effective_sample_size());
    }

    #[test]
    fn weighted_merge_equals_sequential() {
        let data: Vec<(f64, f64)> = (1..50).map(|i| (i as f64, 1.0 + (i % 5) as f64)).collect();
        let mut all = WeightedMoments::new();
        let mut a = WeightedMoments::new();
        let mut b = WeightedMoments::new();
        for (i, &(x, w)) in data.iter().enumerate() {
            all.push(x, w);
            if i < 20 {
                a.push(x, w);
            } else {
                b.push(x, w);
            }
        }
        let merged = a.merge(&b);
        assert!((merged.mean() - all.mean()).abs() < 1e-10);
        assert!((merged.variance() - all.variance()).abs() < 1e-10);
        assert!((merged.weight_sum() - all.weight_sum()).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn weighted_rejects_zero_weight() {
        WeightedMoments::new().push(1.0, 0.0);
    }

    #[test]
    fn partial_roundtrip_and_header_checks() {
        let m = Moments::from_slice(&[2.0, 4.0, 9.0]);
        let bytes = Partial::to_bytes(&m);
        assert_eq!(Moments::from_bytes(&bytes).unwrap(), m);
        // Empty state roundtrips too (±∞ min/max survive the wire).
        let e = Moments::new();
        assert_eq!(Moments::from_bytes(&Partial::to_bytes(&e)).unwrap(), e);

        let mut w = WeightedMoments::new();
        w.push(10.0, 2.0);
        w.push(20.0, 4.0);
        assert_eq!(
            WeightedMoments::from_bytes(&Partial::to_bytes(&w)).unwrap(),
            w
        );

        // Cross-type decode is rejected by the tag.
        assert!(matches!(
            WeightedMoments::from_bytes(&bytes),
            Err(CodecError::BadMagic(t)) if t == tag::MOMENTS
        ));
        // Truncation at every cut errors, never panics.
        for cut in 0..bytes.len() {
            assert_eq!(
                Moments::from_bytes(&bytes[..cut]),
                Err(CodecError::Truncated),
                "cut {cut}"
            );
        }
        // A future version is rejected.
        let mut future = bytes.to_vec();
        future[1] += 1;
        assert!(matches!(
            Moments::from_bytes(&future),
            Err(CodecError::BadVersion(_))
        ));
    }

    #[test]
    fn partial_merge_matches_inherent() {
        let a = Moments::from_slice(&[1.0, 2.0, 3.0]);
        let b = Moments::from_slice(&[10.0, 20.0]);
        let mut via_trait = a;
        Partial::merge(&mut via_trait, &b).unwrap();
        assert_eq!(via_trait, a.merge(&b));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn moments_wire_roundtrip(xs in proptest::collection::vec(-1e9f64..1e9, 0..50)) {
            let m = Moments::from_slice(&xs);
            prop_assert_eq!(Moments::from_bytes(&Partial::to_bytes(&m)).unwrap(), m);
        }

        #[test]
        fn weighted_wire_roundtrip(
            xs in proptest::collection::vec((-1e6f64..1e6, 0.1f64..100.0), 0..50),
        ) {
            let mut w = WeightedMoments::new();
            for &(x, wt) in &xs {
                w.push(x, wt);
            }
            prop_assert_eq!(
                WeightedMoments::from_bytes(&Partial::to_bytes(&w)).unwrap(),
                w
            );
        }

        #[test]
        fn truncated_moments_never_panic(
            xs in proptest::collection::vec(-1e9f64..1e9, 0..20),
            frac in 0.0f64..1.0,
        ) {
            let bytes = Partial::to_bytes(&Moments::from_slice(&xs));
            let cut = ((bytes.len() - 1) as f64 * frac) as usize;
            prop_assert!(Moments::from_bytes(&bytes[..cut]).is_err());
        }
    }
}
