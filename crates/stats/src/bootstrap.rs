//! Percentile-bootstrap confidence intervals for arbitrary statistics.
//!
//! NSB highlights the bootstrap as the error-estimation technique of choice
//! for aggregates whose sampling distribution has no closed form (e.g.
//! quantiles of a sample, or complex expressions over several aggregates).
//! This module implements the classic nonparametric bootstrap: resample the
//! observed sample with replacement `replicates` times, recompute the
//! statistic, and read the interval off the empirical percentiles.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::interval::ConfidenceInterval;

/// Configuration for a bootstrap run.
#[derive(Debug, Clone, Copy)]
pub struct BootstrapConfig {
    /// Number of bootstrap replicates (re-computations of the statistic).
    pub replicates: usize,
    /// RNG seed, for reproducibility.
    pub seed: u64,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        Self {
            replicates: 1000,
            seed: 0xB007_57A9,
        }
    }
}

/// Percentile-bootstrap confidence interval for `statistic` evaluated on
/// `sample`.
///
/// `statistic` receives a resampled-with-replacement view of the data each
/// replicate. The returned interval takes the empirical `(1±confidence)/2`
/// percentiles of the replicate distribution.
///
/// # Panics
/// Panics if the sample is empty, `replicates == 0`, or `confidence` is
/// outside (0, 1).
pub fn bootstrap_ci<F>(
    sample: &[f64],
    statistic: F,
    confidence: f64,
    config: BootstrapConfig,
) -> ConfidenceInterval
where
    F: Fn(&[f64]) -> f64,
{
    assert!(!sample.is_empty(), "bootstrap requires a non-empty sample");
    assert!(
        config.replicates > 0,
        "bootstrap requires at least one replicate"
    );
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1), got {confidence}"
    );
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let n = sample.len();
    let mut resample = vec![0.0f64; n];
    let mut stats = Vec::with_capacity(config.replicates);
    for _ in 0..config.replicates {
        for slot in resample.iter_mut() {
            *slot = sample[rng.gen_range(0..n)];
        }
        stats.push(statistic(&resample));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("bootstrap statistic produced NaN"));
    let alpha = (1.0 - confidence) / 2.0;
    ConfidenceInterval::new(
        percentile_sorted(&stats, alpha),
        percentile_sorted(&stats, 1.0 - alpha),
        confidence,
    )
}

/// Linear-interpolated percentile of an already-sorted slice, `p` in [0, 1].
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::distributions::Distribution;

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn percentile_interpolation() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile_sorted(&xs, 0.0), 1.0);
        assert_eq!(percentile_sorted(&xs, 1.0), 5.0);
        assert_eq!(percentile_sorted(&xs, 0.5), 3.0);
        assert_eq!(percentile_sorted(&xs, 0.25), 2.0);
        assert!((percentile_sorted(&xs, 0.1) - 1.4).abs() < 1e-12);
    }

    #[test]
    fn percentile_singleton() {
        assert_eq!(percentile_sorted(&[42.0], 0.3), 42.0);
    }

    #[test]
    fn bootstrap_mean_interval_contains_sample_mean() {
        let xs: Vec<f64> = (0..200).map(|i| (i % 13) as f64).collect();
        let ci = bootstrap_ci(&xs, mean, 0.95, BootstrapConfig::default());
        assert!(ci.contains(mean(&xs)));
        assert!(ci.width() > 0.0);
    }

    #[test]
    fn bootstrap_is_deterministic_per_seed() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let cfg = BootstrapConfig {
            replicates: 200,
            seed: 7,
        };
        let a = bootstrap_ci(&xs, mean, 0.9, cfg);
        let b = bootstrap_ci(&xs, mean, 0.9, cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn bootstrap_width_shrinks_with_sample_size() {
        let small: Vec<f64> = (0..50).map(|i| (i % 17) as f64).collect();
        let large: Vec<f64> = (0..5000).map(|i| (i % 17) as f64).collect();
        let cfg = BootstrapConfig::default();
        let ws = bootstrap_ci(&small, mean, 0.95, cfg).width();
        let wl = bootstrap_ci(&large, mean, 0.95, cfg).width();
        assert!(wl < ws);
    }

    #[test]
    fn bootstrap_coverage_close_to_nominal() {
        // Normal(10, 2²) population; bootstrap 95% CI for the mean should
        // cover ~95% of the time. Allow slack for 200 trials.
        let normal = rand::distributions::Uniform::new(0.0f64, 1.0);
        let mut rng = SmallRng::seed_from_u64(99);
        let mut hits = 0;
        let trials = 200;
        for t in 0..trials {
            // Sum of 12 uniforms − 6 ≈ N(0,1).
            let sample: Vec<f64> = (0..60)
                .map(|_| {
                    let z: f64 = (0..12).map(|_| normal.sample(&mut rng)).sum::<f64>() - 6.0;
                    10.0 + 2.0 * z
                })
                .collect();
            let ci = bootstrap_ci(
                &sample,
                mean,
                0.95,
                BootstrapConfig {
                    replicates: 400,
                    seed: t,
                },
            );
            if ci.contains(10.0) {
                hits += 1;
            }
        }
        let coverage = hits as f64 / trials as f64;
        assert!(coverage > 0.85, "bootstrap coverage too low: {coverage}");
    }

    #[test]
    fn bootstrap_nonlinear_statistic() {
        // Median of a skewed sample: percentile bootstrap still brackets it.
        let xs: Vec<f64> = (1..=101).map(|i| (i as f64).powi(2)).collect();
        let median = |s: &[f64]| {
            let mut v = s.to_vec();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            percentile_sorted(&v, 0.5)
        };
        let ci = bootstrap_ci(&xs, median, 0.95, BootstrapConfig::default());
        assert!(ci.contains(51.0 * 51.0));
    }

    #[test]
    #[should_panic(expected = "non-empty sample")]
    fn bootstrap_rejects_empty() {
        bootstrap_ci(&[], mean, 0.95, BootstrapConfig::default());
    }
}
