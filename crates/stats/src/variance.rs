//! Design-based variance estimators for the sampling designs the AQP layers
//! use: simple random sampling, Bernoulli sampling, stratified sampling, and
//! cluster (block) sampling.
//!
//! Each function consumes sample-level statistics and returns an
//! [`Estimate`] whose variance field is the *estimator's* variance, ready to
//! be turned into a CLT interval. The formulas are the classical ones from
//! survey sampling (Cochran), which is exactly the machinery the AQP systems
//! NSB surveys rely on.

use crate::estimate::Estimate;
use crate::moments::Moments;

/// Simple-random-sampling (without replacement) estimator of the population
/// mean, with finite-population correction.
///
/// `sample` holds the observed values; `population_size` is N.
pub fn srs_mean(sample: &Moments, population_size: u64) -> Estimate {
    let n = sample.count();
    assert!(n >= 2, "SRS mean needs at least 2 observations, got {n}");
    assert!(
        population_size >= n,
        "population must be at least the sample"
    );
    let fpc = 1.0 - n as f64 / population_size as f64;
    Estimate::new(sample.mean(), fpc * sample.variance() / n as f64, n)
}

/// SRS estimator of the population total: `N · ȳ`.
pub fn srs_total(sample: &Moments, population_size: u64) -> Estimate {
    srs_mean(sample, population_size).scale(population_size as f64)
}

/// Horvitz–Thompson estimator of the population SUM under Bernoulli(q) row
/// sampling: `Σ_{i∈S} x_i / q`, with unbiased variance estimate
/// `(1−q)/q² · Σ_{i∈S} x_i²`.
///
/// `sum_x` and `sum_x2` are the sample's Σx and Σx²; `n` its size.
pub fn bernoulli_sum(sum_x: f64, sum_x2: f64, n: u64, q: f64) -> Estimate {
    assert!(
        q > 0.0 && q <= 1.0,
        "sampling rate must be in (0,1], got {q}"
    );
    let value = sum_x / q;
    let variance = (1.0 - q) / (q * q) * sum_x2;
    Estimate::new(value, variance.max(0.0), n)
}

/// Horvitz–Thompson estimator of the population COUNT under Bernoulli(q):
/// `n/q`, with variance estimate `(1−q)/q² · n`.
pub fn bernoulli_count(n: u64, q: f64) -> Estimate {
    assert!(
        q > 0.0 && q <= 1.0,
        "sampling rate must be in (0,1], got {q}"
    );
    let value = n as f64 / q;
    let variance = (1.0 - q) / (q * q) * n as f64;
    Estimate::new(value, variance, n)
}

/// Ratio estimator of the population AVG under Bernoulli(q): `Σx/n` with the
/// delta-method variance for SUM/COUNT including their covariance
/// `Cov ≈ (1−q)/q² · Σ_{i∈S} x_i`.
pub fn bernoulli_avg(sum_x: f64, sum_x2: f64, n: u64, q: f64) -> Estimate {
    assert!(
        q > 0.0 && q <= 1.0,
        "sampling rate must be in (0,1], got {q}"
    );
    if n == 0 {
        return Estimate::new(0.0, f64::MAX, 0);
    }
    let num = bernoulli_sum(sum_x, sum_x2, n, q);
    let den = bernoulli_count(n, q);
    let cov = (1.0 - q) / (q * q) * sum_x;
    num.ratio(&den, cov)
}

/// One stratum's contribution to a stratified estimator.
#[derive(Debug, Clone, Copy)]
pub struct Stratum {
    /// Stratum population size N_h.
    pub population_size: u64,
    /// Sample moments observed inside the stratum.
    pub sample: Moments,
}

/// Stratified estimator of the population mean:
/// `ȳ_st = Σ_h W_h ȳ_h` with `Var = Σ_h W_h² (1 − f_h) s_h²/n_h`.
///
/// Strata with a single sampled row contribute zero estimated variance
/// (their variance is unobservable); strata with zero sampled rows are
/// skipped in the value but make the estimate *biased* — callers should use
/// coverage accounting to detect that.
pub fn stratified_mean(strata: &[Stratum]) -> Estimate {
    assert!(
        !strata.is_empty(),
        "stratified_mean requires at least one stratum"
    );
    let total_n: u64 = strata.iter().map(|s| s.population_size).sum();
    assert!(total_n > 0, "population must be non-empty");
    let mut value = 0.0;
    let mut variance = 0.0;
    let mut units = 0u64;
    for s in strata {
        let w = s.population_size as f64 / total_n as f64;
        let n = s.sample.count();
        if n == 0 {
            continue; // missed stratum: bias, reported via coverage elsewhere
        }
        value += w * s.sample.mean();
        units += n;
        if n >= 2 {
            let fpc = 1.0 - n as f64 / s.population_size as f64;
            variance += w * w * fpc.max(0.0) * s.sample.variance() / n as f64;
        }
    }
    Estimate::new(value, variance, units)
}

/// Stratified estimator of the population total.
pub fn stratified_total(strata: &[Stratum]) -> Estimate {
    let total_n: u64 = strata.iter().map(|s| s.population_size).sum();
    stratified_mean(strata).scale(total_n as f64)
}

/// Neyman allocation: given per-stratum sizes and standard deviations,
/// splits a total budget of `n` sampled rows to minimize the variance of the
/// stratified mean: `n_h ∝ N_h σ_h`.
///
/// Returns one allocation per stratum (each at least 1 when the budget
/// allows, capped at the stratum size).
pub fn neyman_allocation(sizes: &[u64], std_devs: &[f64], budget: u64) -> Vec<u64> {
    assert_eq!(
        sizes.len(),
        std_devs.len(),
        "sizes/std_devs length mismatch"
    );
    assert!(!sizes.is_empty(), "need at least one stratum");
    let weights: Vec<f64> = sizes
        .iter()
        .zip(std_devs)
        .map(|(&n, &s)| n as f64 * s.max(0.0))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut alloc: Vec<u64> = if total <= 0.0 {
        // Degenerate: fall back to proportional.
        let pop: u64 = sizes.iter().sum();
        sizes
            .iter()
            .map(|&n| ((n as f64 / pop as f64) * budget as f64).round() as u64)
            .collect()
    } else {
        weights
            .iter()
            .map(|w| ((w / total) * budget as f64).round() as u64)
            .collect()
    };
    for (a, &n) in alloc.iter_mut().zip(sizes) {
        *a = (*a).clamp(u64::from(n > 0), n);
    }
    alloc
}

/// Cluster (block) sampling estimator of the population total from an SRS of
/// `m` blocks out of `num_blocks`: `T̂ = M/m Σ t_j` with
/// `Var = M² (1 − m/M) s_t²/m`, where `t_j` are block totals.
///
/// This is the estimator behind `TABLESAMPLE SYSTEM`-style block sampling;
/// the sampling unit is the *block*, so n is the number of blocks.
pub fn cluster_total(block_totals: &Moments, num_blocks: u64) -> Estimate {
    let m = block_totals.count();
    assert!(
        m >= 2,
        "cluster_total needs at least 2 sampled blocks, got {m}"
    );
    assert!(
        num_blocks >= m,
        "num_blocks must be at least the sampled count"
    );
    let big_m = num_blocks as f64;
    let value = big_m * block_totals.mean();
    let fpc = 1.0 - m as f64 / big_m;
    let variance = big_m * big_m * fpc * block_totals.variance() / m as f64;
    Estimate::new(value, variance.max(0.0), m)
}

/// Cluster (block) sampling ratio estimator of the population mean:
/// `ȳ = Σ t_j / Σ c_j` over sampled blocks (block totals over block counts),
/// with the standard cluster ratio variance
/// `Var(ȳ) ≈ (1−f)/(m·c̄²) · s²_{t − ȳc}`.
///
/// `block_totals[j]` and `block_counts[j]` must be aligned per block.
pub fn cluster_mean(block_totals: &[f64], block_counts: &[f64], num_blocks: u64) -> Estimate {
    assert_eq!(block_totals.len(), block_counts.len(), "blocks misaligned");
    let m = block_totals.len();
    assert!(
        m >= 2,
        "cluster_mean needs at least 2 sampled blocks, got {m}"
    );
    let sum_t: f64 = block_totals.iter().sum();
    let sum_c: f64 = block_counts.iter().sum();
    assert!(sum_c > 0.0, "sampled blocks contain no rows");
    let ybar = sum_t / sum_c;
    let cbar = sum_c / m as f64;
    // Residual variance of t_j − ȳ·c_j.
    let mut resid = Moments::new();
    for (t, c) in block_totals.iter().zip(block_counts) {
        resid.push(t - ybar * c);
    }
    let f = m as f64 / num_blocks as f64;
    let variance = (1.0 - f).max(0.0) * resid.variance() / (m as f64 * cbar * cbar);
    Estimate::new(ybar, variance.max(0.0), m as u64)
}

/// The design effect of cluster sampling relative to SRS at equal row
/// budget: `deff = 1 + (b̄ − 1)·ρ`, where `b̄` is the mean block size and `ρ`
/// the intra-class correlation. NSB's block-vs-row statistical-efficiency
/// discussion is exactly this quantity.
pub fn design_effect(mean_block_size: f64, intraclass_corr: f64) -> f64 {
    assert!(mean_block_size >= 1.0, "block size must be at least 1");
    assert!(
        (-1.0..=1.0).contains(&intraclass_corr),
        "intraclass correlation must be in [-1,1]"
    );
    (1.0 + (mean_block_size - 1.0) * intraclass_corr).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn srs_mean_with_fpc() {
        let m = Moments::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let e = srs_mean(&m, 10);
        assert!((e.value - 3.0).abs() < 1e-12);
        // s² = 2.5, fpc = 0.5, var = 0.5*2.5/5 = 0.25.
        assert!((e.variance - 0.25).abs() < 1e-12);
    }

    #[test]
    fn srs_census_has_zero_variance() {
        let m = Moments::from_slice(&[1.0, 2.0, 3.0]);
        let e = srs_mean(&m, 3);
        assert_eq!(e.variance, 0.0);
    }

    #[test]
    fn srs_total_scales() {
        let m = Moments::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let e = srs_total(&m, 10);
        assert!((e.value - 30.0).abs() < 1e-12);
        assert!((e.variance - 25.0).abs() < 1e-12);
    }

    #[test]
    fn bernoulli_sum_unbiased_scaling() {
        let e = bernoulli_sum(50.0, 600.0, 10, 0.1);
        assert!((e.value - 500.0).abs() < 1e-12);
        // (0.9/0.01)*600 = 54000.
        assert!((e.variance - 54_000.0).abs() < 1e-9);
    }

    #[test]
    fn bernoulli_full_rate_is_exact() {
        let e = bernoulli_sum(50.0, 600.0, 10, 1.0);
        assert_eq!(e.value, 50.0);
        assert_eq!(e.variance, 0.0);
        let c = bernoulli_count(10, 1.0);
        assert_eq!(c.value, 10.0);
        assert_eq!(c.variance, 0.0);
    }

    #[test]
    fn bernoulli_count_scaling() {
        let e = bernoulli_count(100, 0.01);
        assert!((e.value - 10_000.0).abs() < 1e-9);
        assert!(e.variance > 0.0);
    }

    #[test]
    fn bernoulli_avg_is_sample_mean() {
        // Ratio estimator point value = Σx / n regardless of q.
        let e = bernoulli_avg(50.0, 600.0, 10, 0.1);
        assert!((e.value - 5.0).abs() < 1e-12);
        // Positive correlation between num and den should make the AVG far
        // tighter than the SUM in relative terms.
        assert!(e.relative_std_err() < bernoulli_sum(50.0, 600.0, 10, 0.1).relative_std_err());
    }

    #[test]
    fn bernoulli_avg_empty_sample() {
        let e = bernoulli_avg(0.0, 0.0, 0, 0.1);
        assert_eq!(e.variance, f64::MAX);
    }

    #[test]
    fn stratified_mean_exact_weighting() {
        // Two strata: sizes 80/20, means 10/100.
        let strata = [
            Stratum {
                population_size: 80,
                sample: Moments::from_slice(&[9.0, 10.0, 11.0]),
            },
            Stratum {
                population_size: 20,
                sample: Moments::from_slice(&[99.0, 100.0, 101.0]),
            },
        ];
        let e = stratified_mean(&strata);
        assert!((e.value - (0.8 * 10.0 + 0.2 * 100.0)).abs() < 1e-12);
        assert!(e.variance > 0.0);
    }

    #[test]
    fn stratified_beats_srs_on_segregated_data() {
        // When strata separate the variance, stratified variance << pooled.
        let s1: Vec<f64> = (0..50).map(|i| 10.0 + (i % 3) as f64).collect();
        let s2: Vec<f64> = (0..50).map(|i| 1000.0 + (i % 3) as f64).collect();
        let strata = [
            Stratum {
                population_size: 5000,
                sample: Moments::from_slice(&s1),
            },
            Stratum {
                population_size: 5000,
                sample: Moments::from_slice(&s2),
            },
        ];
        let strat = stratified_mean(&strata);
        let pooled: Vec<f64> = s1.iter().chain(&s2).copied().collect();
        let srs = srs_mean(&Moments::from_slice(&pooled), 10_000);
        assert!(strat.variance < srs.variance / 100.0);
    }

    #[test]
    fn stratified_skips_empty_stratum() {
        let strata = [
            Stratum {
                population_size: 50,
                sample: Moments::from_slice(&[1.0, 2.0]),
            },
            Stratum {
                population_size: 50,
                sample: Moments::new(),
            },
        ];
        let e = stratified_mean(&strata);
        // Only the observed stratum contributes: biased toward it.
        assert!((e.value - 0.75).abs() < 1e-12);
    }

    #[test]
    fn neyman_allocation_prefers_variable_strata() {
        let alloc = neyman_allocation(&[1000, 1000], &[1.0, 9.0], 100);
        assert_eq!(alloc.iter().sum::<u64>(), 100);
        assert!(alloc[1] > alloc[0] * 5);
    }

    #[test]
    fn neyman_allocation_caps_at_stratum_size() {
        let alloc = neyman_allocation(&[5, 1000], &[100.0, 1.0], 100);
        assert!(alloc[0] <= 5);
    }

    #[test]
    fn neyman_degenerate_falls_back_to_proportional() {
        let alloc = neyman_allocation(&[300, 700], &[0.0, 0.0], 100);
        assert_eq!(alloc, vec![30, 70]);
    }

    #[test]
    fn cluster_total_scaling() {
        let m = Moments::from_slice(&[10.0, 12.0, 8.0, 10.0]);
        let e = cluster_total(&m, 100);
        assert!((e.value - 1000.0).abs() < 1e-9);
        assert!(e.variance > 0.0);
        assert_eq!(e.n, 4);
    }

    #[test]
    fn cluster_mean_ratio_estimator() {
        let totals = [20.0, 30.0, 25.0];
        let counts = [10.0, 15.0, 12.0];
        let e = cluster_mean(&totals, &counts, 50);
        assert!((e.value - 75.0 / 37.0).abs() < 1e-12);
        assert!(e.variance >= 0.0);
    }

    #[test]
    fn cluster_mean_homogeneous_blocks_low_variance() {
        // Every block has identical mean 2.0: residuals vanish.
        let totals = [20.0, 30.0, 24.0];
        let counts = [10.0, 15.0, 12.0];
        let e = cluster_mean(&totals, &counts, 50);
        assert!(e.variance < 1e-20);
    }

    #[test]
    fn design_effect_extremes() {
        assert!((design_effect(10.0, 0.0) - 1.0).abs() < 1e-15);
        assert!((design_effect(10.0, 1.0) - 10.0).abs() < 1e-15);
        assert_eq!(design_effect(10.0, -1.0), 0.0); // clamped at 0
    }
}
