//! Statistical foundations for approximate query processing.
//!
//! This crate implements, from scratch, everything the AQP layers above it
//! need to turn a random sample into an *answer with a guarantee*:
//!
//! * [`special`] — log-gamma, regularized incomplete gamma/beta, `erf`.
//! * [`dist`] — standard normal, Student's *t*, and chi-squared
//!   distributions with CDFs and quantile (inverse-CDF) functions.
//! * [`estimate`] — the [`Estimate`] type: a point value
//!   plus a variance estimate, convertible to a CLT confidence interval, with
//!   error-propagation rules for ratios, products, and sums.
//! * [`interval`] — confidence intervals and coverage accounting.
//! * [`bounds`] — distribution-free concentration bounds (Hoeffding,
//!   Chebyshev, Chernoff) and the sample-size planners derived from them.
//! * [`bootstrap`] — percentile-bootstrap confidence intervals for arbitrary
//!   statistics.
//! * [`variance`] — design-based variance estimators for simple random,
//!   Bernoulli, stratified, and cluster (block) sampling designs.
//! * [`moments`] — streaming (Welford) moment accumulators, plain and
//!   weighted.
//!
//! The survey *Approximate Query Processing: No Silver Bullet* (SIGMOD 2017)
//! treats the error model as one of the three axes of the AQP design space;
//! this crate is that axis made executable.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bootstrap;
pub mod bounds;
pub mod dist;
pub mod estimate;
pub mod interval;
pub mod moments;
pub mod special;
pub mod variance;

pub use bootstrap::{bootstrap_ci, BootstrapConfig};
pub use bounds::{chebyshev_sample_size, hoeffding_bound, hoeffding_sample_size};
pub use dist::{ChiSquared, Normal, StudentT};
pub use estimate::Estimate;
pub use interval::ConfidenceInterval;
pub use moments::{Moments, WeightedMoments};
