//! Property-based tests for the statistical foundations: distribution
//! identities, planner monotonicity, and estimator algebra.

use proptest::prelude::*;

use aqp_stats::bounds::{
    chebyshev_sample_size, clt_relative_sample_size, group_miss_probability, hoeffding_bound,
    hoeffding_sample_size,
};
use aqp_stats::{ChiSquared, Estimate, Normal, StudentT};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Φ is monotone and Φ⁻¹ inverts it.
    #[test]
    fn normal_cdf_quantile_roundtrip(p in 1e-6f64..(1.0 - 1e-6)) {
        let x = Normal::quantile(p);
        let back = Normal::cdf(x);
        prop_assert!((back - p).abs() < 1e-8, "p={p} x={x} back={back}");
    }

    #[test]
    fn normal_cdf_monotone(a in -8.0f64..8.0, d in 1e-6f64..4.0) {
        prop_assert!(Normal::cdf(a + d) >= Normal::cdf(a));
    }

    /// Student-t is symmetric: F(−x) = 1 − F(x).
    #[test]
    fn t_symmetry(df in 1.0f64..200.0, x in 0.0f64..20.0) {
        let t = StudentT::new(df);
        prop_assert!((t.cdf(-x) - (1.0 - t.cdf(x))).abs() < 1e-10);
    }

    /// Student-t quantiles dominate normal quantiles in the upper tail
    /// (heavier tails), approaching them as df grows.
    #[test]
    fn t_dominates_normal(df in 1.0f64..500.0, p in 0.51f64..0.999) {
        let t = StudentT::new(df);
        prop_assert!(t.quantile(p) >= Normal::quantile(p) - 1e-9);
    }

    /// χ² CDF/quantile round-trip.
    #[test]
    fn chi2_roundtrip(df in 0.5f64..200.0, p in 1e-4f64..0.9999) {
        let c = ChiSquared::new(df);
        let x = c.quantile(p);
        prop_assert!(x > 0.0);
        prop_assert!((c.cdf(x) - p).abs() < 1e-7, "df={df} p={p} x={x}");
    }

    /// Hoeffding sample size achieves its own bound and is monotone.
    #[test]
    fn hoeffding_planner_consistency(
        eps in 0.001f64..0.3,
        delta in 0.001f64..0.3,
        width in 0.1f64..100.0,
    ) {
        let n = hoeffding_sample_size((0.0, width), eps, delta);
        prop_assert!(hoeffding_bound(n, (0.0, width), eps) <= delta + 1e-12);
        // Tighter eps needs more samples.
        let n_tighter = hoeffding_sample_size((0.0, width), eps / 2.0, delta);
        prop_assert!(n_tighter >= n);
        // Wider data needs more samples.
        let n_wider = hoeffding_sample_size((0.0, width * 2.0), eps, delta);
        prop_assert!(n_wider >= n);
    }

    /// CLT planner is monotone in cv and eps, and never beats 1 sample.
    #[test]
    fn clt_planner_monotone(cv in 0.0f64..10.0, eps in 0.005f64..0.5) {
        let n = clt_relative_sample_size(cv, eps, 0.95);
        prop_assert!(n >= 1);
        prop_assert!(clt_relative_sample_size(cv * 2.0, eps, 0.95) >= n);
        prop_assert!(clt_relative_sample_size(cv, eps / 2.0, 0.95) >= n);
        prop_assert!(clt_relative_sample_size(cv, eps, 0.99) >= n);
    }

    /// Chebyshev is never tighter than CLT for the same inputs (it is
    /// distribution-free, so it must pay).
    #[test]
    fn chebyshev_weaker_than_clt(var in 0.01f64..100.0, eps in 0.01f64..1.0) {
        let cheb = chebyshev_sample_size(var, eps, 0.05);
        let clt = aqp_stats::bounds::clt_sample_size(var, eps, 0.95);
        prop_assert!(cheb >= clt);
    }

    /// Group miss probability is monotone in both arguments.
    #[test]
    fn miss_probability_monotone(size in 1u64..10_000, q in 0.0f64..1.0) {
        let p = group_miss_probability(size, q);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(group_miss_probability(size + 1, q) <= p + 1e-15);
        if q < 0.99 {
            prop_assert!(group_miss_probability(size, (q + 0.01).min(1.0)) <= p + 1e-15);
        }
    }

    /// Estimator algebra: scaling and independent addition compose the way
    /// variances must.
    #[test]
    fn estimate_algebra(
        v1 in -1e6f64..1e6,
        var1 in 0.0f64..1e6,
        v2 in -1e6f64..1e6,
        var2 in 0.0f64..1e6,
        c in -100.0f64..100.0,
    ) {
        let a = Estimate::new(v1, var1, 100);
        let b = Estimate::new(v2, var2, 100);
        let s = a.add_independent(&b);
        prop_assert!((s.value - (v1 + v2)).abs() < 1e-9 * (1.0 + v1.abs() + v2.abs()));
        prop_assert!((s.variance - (var1 + var2)).abs() < 1e-9 * (1.0 + var1 + var2));
        let sc = a.scale(c);
        prop_assert!((sc.variance - var1 * c * c).abs() < 1e-9 * (1.0 + var1 * c * c));
        // CIs widen with confidence.
        if var1 > 0.0 {
            prop_assert!(a.ci(0.99).width() >= a.ci(0.9).width());
        }
    }

    /// A CLT interval always contains its own point estimate, and the
    /// width scales with the standard error.
    #[test]
    fn ci_contains_center(v in -1e9f64..1e9, var in 0.0f64..1e12, n in 2u64..1_000_000) {
        let e = Estimate::new(v, var, n);
        let ci = e.ci(0.95);
        prop_assert!(ci.contains(v));
        prop_assert!((ci.midpoint() - v).abs() <= 1e-6 * (1.0 + v.abs()));
    }
}
