//! Offline stand-in for `parking_lot`.
//!
//! Wraps the std locks behind `parking_lot`'s non-poisoning API (`lock()`
//! and `read()`/`write()` return guards directly, no `Result`). A
//! poisoned std lock is recovered rather than propagated, matching
//! `parking_lot`'s behavior of not poisoning at all.

#![deny(unsafe_code)]

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutex whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards never fail.
#[derive(Debug, Default)]
pub struct RwLock<T>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        Self(StdRwLock::new(value))
    }

    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
