//! Property-based tests for the exact engine: relational-algebra laws
//! checked against proptest-generated tables and predicates.

use proptest::prelude::*;

use aqp_engine::{execute, AggExpr, Query, SortKey};
use aqp_expr::{col, lit, Expr};
use aqp_storage::{Catalog, DataType, Field, Schema, TableBuilder, Value};

/// A generated test table of (id, v, flag) rows.
fn register(rows: &[(i64, f64, bool)], block_cap: usize) -> Catalog {
    let c = Catalog::new();
    let schema = Schema::new(vec![
        Field::new("id", DataType::Int64),
        Field::new("v", DataType::Float64),
        Field::new("flag", DataType::Bool),
    ]);
    let mut b = TableBuilder::with_block_capacity("t", schema, block_cap);
    for &(id, v, flag) in rows {
        b.push_row(&[Value::Int64(id), Value::Float64(v), Value::Bool(flag)])
            .unwrap();
    }
    c.register(b.finish()).unwrap();
    c
}

fn rows_strategy() -> impl Strategy<Value = Vec<(i64, f64, bool)>> {
    prop::collection::vec(
        (
            -50i64..50,
            (-1e3f64..1e3).prop_map(|v| (v * 100.0).round() / 100.0),
            any::<bool>(),
        ),
        0..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Filter conjunction splits: σ(p ∧ q) = σ(p) then σ(q).
    #[test]
    fn filter_conjunction_splits(rows in rows_strategy(), threshold in -1e3f64..1e3) {
        let c = register(&rows, 16);
        let p: Expr = col("v").gt(lit(threshold));
        let q: Expr = col("flag").eq(lit(true));
        let combined = execute(
            &Query::scan("t").filter(p.clone().and(q.clone())).build(),
            &c,
        )
        .unwrap();
        let chained = execute(
            &Query::scan("t").filter(p).filter(q).build(),
            &c,
        )
        .unwrap();
        prop_assert_eq!(combined.rows(), chained.rows());
    }

    /// COUNT(*) equals the row count of the unaggregated result.
    #[test]
    fn count_star_matches_cardinality(rows in rows_strategy(), threshold in -1e3f64..1e3) {
        let c = register(&rows, 8);
        let filtered = execute(
            &Query::scan("t").filter(col("v").lt_eq(lit(threshold))).build(),
            &c,
        )
        .unwrap();
        let counted = execute(
            &Query::scan("t")
                .filter(col("v").lt_eq(lit(threshold)))
                .aggregate(vec![], vec![AggExpr::count_star("n")])
                .build(),
            &c,
        )
        .unwrap();
        prop_assert_eq!(
            counted.rows()[0][0].as_i64().unwrap() as usize,
            filtered.num_rows()
        );
    }

    /// Group-by SUMs add up to the global SUM.
    #[test]
    fn group_sums_partition_global_sum(rows in rows_strategy()) {
        prop_assume!(!rows.is_empty());
        let c = register(&rows, 8);
        let global = execute(
            &Query::scan("t")
                .aggregate(vec![], vec![AggExpr::sum(col("v"), "s")])
                .build(),
            &c,
        )
        .unwrap();
        let grouped = execute(
            &Query::scan("t")
                .aggregate(
                    vec![(col("id").modulo(lit(7i64)), "g".to_string())],
                    vec![AggExpr::sum(col("v"), "s")],
                )
                .build(),
            &c,
        )
        .unwrap();
        let total = global.rows()[0][0].as_f64().unwrap_or(0.0);
        let parts: f64 = grouped.column_f64("s").unwrap().iter().sum();
        prop_assert!((total - parts).abs() < 1e-6 * (1.0 + total.abs()));
    }

    /// Sorting is a permutation and is ordered.
    #[test]
    fn sort_is_an_ordered_permutation(rows in rows_strategy()) {
        let c = register(&rows, 8);
        let sorted = execute(
            &Query::scan("t").sort(vec![SortKey::asc("v")]).build(),
            &c,
        )
        .unwrap();
        let vs = sorted.column_f64("v").unwrap();
        prop_assert!(vs.windows(2).all(|w| w[0] <= w[1]));
        let mut original: Vec<f64> = rows.iter().map(|r| r.1).collect();
        let mut got = vs;
        original.sort_by(|a, b| a.partial_cmp(b).unwrap());
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(original, got);
    }

    /// Limit then count = min(n, count).
    #[test]
    fn limit_caps_cardinality(rows in rows_strategy(), n in 0usize..300) {
        let c = register(&rows, 8);
        let limited = execute(&Query::scan("t").limit(n).build(), &c).unwrap();
        prop_assert_eq!(limited.num_rows(), n.min(rows.len()));
    }

    /// Union with self doubles every aggregate count.
    #[test]
    fn union_doubles(rows in rows_strategy()) {
        let c = register(&rows, 8);
        let doubled = execute(
            &Query::scan("t")
                .union_all(Query::scan("t"))
                .aggregate(vec![], vec![AggExpr::count_star("n")])
                .build(),
            &c,
        )
        .unwrap();
        prop_assert_eq!(
            doubled.rows()[0][0].as_i64().unwrap() as usize,
            rows.len() * 2
        );
    }

    /// Self-join on a unique key is the identity (same cardinality).
    #[test]
    fn unique_key_self_join_preserves_cardinality(n in 0usize..120) {
        let rows: Vec<(i64, f64, bool)> =
            (0..n).map(|i| (i as i64, i as f64, i % 2 == 0)).collect();
        let c = register(&rows, 8);
        let joined = execute(
            &Query::scan("t")
                .join(Query::scan("t"), col("id"), col("id"))
                .aggregate(vec![], vec![AggExpr::count_star("n")])
                .build(),
            &c,
        )
        .unwrap();
        prop_assert_eq!(joined.rows()[0][0].as_i64().unwrap() as usize, n);
    }

    /// Results are independent of the physical block size.
    #[test]
    fn block_size_is_invisible(rows in rows_strategy(), cap in 1usize..64) {
        let small = register(&rows, cap);
        let large = register(&rows, 1024);
        let plan = Query::scan("t")
            .filter(col("flag").eq(lit(true)))
            .aggregate(
                vec![(col("id").modulo(lit(5i64)), "g".to_string())],
                vec![AggExpr::count_star("n"), AggExpr::sum(col("v"), "s")],
            )
            .sort(vec![SortKey::asc("g")])
            .build();
        let a = execute(&plan, &small).unwrap();
        let b = execute(&plan, &large).unwrap();
        prop_assert_eq!(a.rows(), b.rows());
    }
}
