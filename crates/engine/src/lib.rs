//! An exact relational engine over block-structured columnar tables.
//!
//! This is the *baseline* every AQP experiment compares against, and the
//! execution substrate the AQP layers rewrite queries onto. It deliberately
//! mirrors the shape of analytical engines NSB's systems run on:
//!
//! * [`plan`] — logical plans built through a typed builder
//!   ([`Query`]): scan, filter, project, inner hash join,
//!   group-by aggregate, sort, limit, union-all.
//! * [`exec`] — morsel-driven physical execution: per-block morsels on a
//!   scoped worker pool ([`pool`]), fused scan→filter→project chains, and
//!   two-phase (partial + in-order merge) hash aggregation and join, with
//!   scan accounting ([`ExecStats`]) so experiments can report *data
//!   touched*, the scale-free proxy for I/O cost. Results are identical
//!   at every thread count ([`ExecOptions`]); `threads == 1` is the
//!   bit-for-bit serial fold.
//! * [`agg`] — hash aggregation with SQL NULL semantics, including the
//!   weighted aggregates (`SUM(x·w)`) middleware AQP rewrites rely on.
//! * [`result`] — materialized result sets.
//!
//! The engine is exact by construction; approximation lives entirely in the
//! layers above (`aqp-sampling`, `aqp-core`), which is precisely the
//! middleware architecture (VerdictDB-style) that NSB identifies as the
//! deployable form of AQP.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod agg;
pub mod error;
pub mod exec;
pub mod kernel;
pub mod plan;
pub mod pool;
pub mod result;

pub use agg::{AggExpr, AggFunc};
pub use error::EngineError;
pub use exec::{execute, execute_with};
pub use plan::{LogicalPlan, Query, SortKey};
pub use pool::{ExecOptions, PoolShare, PoolSlot};
pub use result::{ExecStats, ResultSet};
