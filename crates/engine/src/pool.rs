//! Morsel scheduling: a scoped worker pool with an order-preserving
//! parallel map over indexed morsels.
//!
//! A *morsel* is one unit of work — in this engine, one input block. The
//! pool hands morsels to workers through a shared work queue (idle workers
//! pull the next morsel, so skewed per-morsel costs self-balance), and
//! every result is tagged with its morsel index so callers get outputs in
//! input order no matter which worker produced them. That index tagging is
//! what makes parallel execution deterministic: downstream merge phases
//! fold partial states in morsel order, a reduction tree fixed by data
//! layout rather than by scheduling.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::result::ExecStats;

/// Options controlling how a plan is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Number of worker threads for morsel-parallel operators. `1` runs
    /// the serial path (bit-for-bit identical to the pre-parallel engine);
    /// values above 1 enable the scoped worker pool. Never 0 (clamped).
    pub threads: usize,
    /// Whether fused scans may skip whole blocks whose zone map proves the
    /// predicate can never select a row. Pruning decisions depend only on
    /// data layout, so results and stats stay thread-count independent.
    pub zone_pruning: bool,
    /// Whether aggregation may compile to typed column kernels (selection
    /// masks feeding typed accumulators) instead of the scalar
    /// `Value`-materializing path. Kernel-path results are bit-for-bit
    /// identical across thread counts by construction.
    pub kernels: bool,
    /// Expected group cardinality for aggregations, when a planner or the
    /// static analyzer can bound it (e.g. `GROUP BY col % 1000` has at
    /// most 1000 groups). Pre-sizes kernel group maps so the hot loop
    /// never rehashes; `None` falls back to growth-on-demand.
    pub agg_hint: Option<usize>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        Self {
            threads: default_threads(),
            zone_pruning: true,
            kernels: true,
            agg_hint: None,
        }
    }
}

impl ExecOptions {
    /// Options pinned to the serial execution path.
    pub fn serial() -> Self {
        Self {
            threads: 1,
            ..Self::default()
        }
    }

    /// Options with an explicit worker count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            ..Self::default()
        }
    }

    /// Returns the options with zone-map block pruning enabled/disabled.
    pub fn with_zone_pruning(mut self, on: bool) -> Self {
        self.zone_pruning = on;
        self
    }

    /// Returns the options with typed aggregation kernels enabled/disabled.
    pub fn with_kernels(mut self, on: bool) -> Self {
        self.kernels = on;
        self
    }

    /// Returns the options with a group-cardinality hint attached.
    pub fn with_agg_hint(mut self, hint: Option<usize>) -> Self {
        self.agg_hint = hint;
        self
    }
}

/// The default worker count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// One machine-wide morsel-thread budget divided fairly among concurrent
/// queries.
///
/// A single query may use every core, but when a service runs many
/// queries at once, each grabbing `default_threads()` workers would
/// oversubscribe the machine `inflight`-fold — coordination overhead with
/// no added compute (the Block-STM failure mode). `PoolShare` is the
/// arbiter: callers [`join`](PoolShare::join) while a query is in flight
/// and size that query's [`ExecOptions::threads`] from
/// [`fair_threads`](PoolShare::fair_threads), which splits the budget
/// evenly over the current in-flight count (never below 1). Results are
/// unaffected by the split — engine output is thread-count invariant by
/// construction — only scheduling is.
#[derive(Debug)]
pub struct PoolShare {
    total: usize,
    active: std::sync::atomic::AtomicUsize,
}

impl PoolShare {
    /// A share over a budget of `total` worker threads (clamped to ≥ 1).
    pub fn new(total: usize) -> Self {
        Self {
            total: total.max(1),
            active: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// The total thread budget.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Queries currently holding a slot.
    pub fn active(&self) -> usize {
        self.active.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Registers one in-flight query; the returned guard releases the
    /// slot on drop.
    pub fn join(&self) -> PoolSlot<'_> {
        self.active
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        PoolSlot { share: self }
    }

    /// The per-query worker count at the current in-flight level: the
    /// budget divided by the number of active queries, floored at 1.
    pub fn fair_threads(&self) -> usize {
        (self.total / self.active().max(1)).max(1)
    }
}

/// RAII registration of one in-flight query in a [`PoolShare`].
#[derive(Debug)]
pub struct PoolSlot<'a> {
    share: &'a PoolShare,
}

impl Drop for PoolSlot<'_> {
    fn drop(&mut self) {
        self.share
            .active
            .fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
    }
}

/// Applies `f` to every item on up to `threads` workers, returning results
/// in item order. With `threads <= 1` (or fewer than two items) this runs
/// inline on the calling thread, in order, with no pool involved.
pub fn parallel_map<I, T, F>(items: Vec<I>, threads: usize, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    let (out, _) = parallel_map_with_stats(items, threads, |i, item, _| f(i, item));
    out
}

/// Like [`parallel_map`], but each worker also owns an [`ExecStats`]
/// accumulator; the per-worker partials are merged (order-insensitive
/// sums) and returned alongside the results. This is how scan accounting
/// flows out of fused morsel pipelines without any shared-counter traffic.
pub fn parallel_map_with_stats<I, T, F>(items: Vec<I>, threads: usize, f: F) -> (Vec<T>, ExecStats)
where
    I: Send,
    T: Send,
    F: Fn(usize, I, &mut ExecStats) -> T + Sync,
{
    if threads <= 1 || items.len() < 2 {
        let mut stats = ExecStats::default();
        let out = items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item, &mut stats))
            .collect();
        return (out, stats);
    }
    let n = items.len();
    let workers = threads.min(n);
    // lock-order: queue < results < total < busy_total
    // Workers drain `queue` with transient guards, publish under
    // `results`, then fold stats under `total` — which stays held across
    // the `busy_total` update, the only nested acquisition here.
    let queue: Mutex<VecDeque<(usize, I)>> = Mutex::new(items.into_iter().enumerate().collect());
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    let total: Mutex<ExecStats> = Mutex::new(ExecStats::default());
    // Pool telemetry is gated on the observability switch so the hot loop
    // reads no clock and touches no metric when it is off (the default).
    let obs_on = aqp_obs::is_enabled();
    let queue_wait = obs_on.then(|| {
        aqp_obs::metrics::global().histogram(
            aqp_obs::names::POOL_QUEUE_WAIT_US,
            aqp_obs::metrics::LATENCY_US_BOUNDS,
        )
    });
    let busy_total: Mutex<Duration> = Mutex::new(Duration::ZERO);
    let scope_start = obs_on.then(Instant::now);
    let scoped = crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| {
                let mut local: Vec<(usize, T)> = Vec::new();
                let mut stats = ExecStats::default();
                let mut busy = Duration::ZERO;
                loop {
                    let wait_start = queue_wait.as_ref().map(|_| Instant::now());
                    let next = queue.lock().pop_front();
                    if let (Some(h), Some(t0)) = (queue_wait.as_ref(), wait_start) {
                        h.observe(t0.elapsed().as_secs_f64() * 1e6);
                    }
                    let Some((i, item)) = next else { break };
                    let work_start = obs_on.then(Instant::now);
                    local.push((i, f(i, item, &mut stats)));
                    if let Some(t0) = work_start {
                        busy += t0.elapsed();
                    }
                }
                results.lock().extend(local);
                let mut t = total.lock();
                *t = t.merge(&stats);
                if obs_on {
                    *busy_total.lock() += busy;
                }
            });
        }
    });
    if let Err(payload) = scoped {
        // A worker panicked: re-raise the original payload on the calling
        // thread rather than wrapping it in a second panic.
        std::panic::resume_unwind(payload);
    }
    if let Some(t0) = scope_start {
        let wall = t0.elapsed().as_secs_f64();
        let m = aqp_obs::metrics::global();
        m.gauge(aqp_obs::names::POOL_WORKERS).set(workers as f64);
        if wall > 0.0 {
            let busy = busy_total.into_inner().as_secs_f64();
            m.gauge(aqp_obs::names::POOL_WORKER_UTILIZATION)
                .set(busy / (workers as f64 * wall));
        }
    }
    let mut tagged = results.into_inner();
    tagged.sort_unstable_by_key(|(i, _)| *i);
    let out = tagged.into_iter().map(|(_, v)| v).collect();
    (out, total.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_default_and_clamping() {
        assert!(ExecOptions::default().threads >= 1);
        assert_eq!(ExecOptions::serial().threads, 1);
        assert_eq!(ExecOptions::with_threads(0).threads, 1);
        assert_eq!(ExecOptions::with_threads(4).threads, 4);
    }

    #[test]
    fn map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1, 2, 4, 8] {
            let out = parallel_map(items.clone(), threads, |i, x| {
                assert_eq!(i as u64, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn per_worker_stats_merge() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 3, 8] {
            let (_, stats) = parallel_map_with_stats(items.clone(), threads, |_, x, s| {
                s.blocks_scanned += 1;
                s.rows_scanned += x;
            });
            assert_eq!(stats.blocks_scanned, 257);
            assert_eq!(stats.rows_scanned, (0..257).sum::<u64>());
        }
    }

    #[test]
    fn single_item_runs_inline() {
        let out = parallel_map(vec![41], 8, |_, x| x + 1);
        assert_eq!(out, vec![42]);
    }
}

#[cfg(test)]
mod share_tests {
    use super::*;

    #[test]
    fn fair_split_tracks_active_queries() {
        let share = PoolShare::new(8);
        assert_eq!(share.fair_threads(), 8);
        let a = share.join();
        assert_eq!(share.active(), 1);
        assert_eq!(share.fair_threads(), 8);
        let b = share.join();
        assert_eq!(share.fair_threads(), 4);
        let c = share.join();
        let _ = &c;
        assert_eq!(share.fair_threads(), 2);
        drop(b);
        assert_eq!(share.fair_threads(), 4);
        drop(a);
        drop(c);
        assert_eq!(share.active(), 0);
        // The split never drops below one worker, however oversubscribed.
        let share = PoolShare::new(2);
        let guards: Vec<_> = (0..5).map(|_| share.join()).collect();
        assert_eq!(share.fair_threads(), 1);
        drop(guards);
    }
}
