//! Materialized result sets and execution statistics.

use std::sync::Arc;

use aqp_storage::{Block, Column, Schema, StorageError, Value};

/// Counters describing how much data an execution touched.
///
/// `blocks_scanned`/`rows_scanned` count *base-table* data read by scans —
/// the scale-free proxy for I/O cost that the speedup experiments report
/// alongside wall-clock time. A block sample that skips 99% of blocks shows
/// up here as a 100× reduction, exactly the economics NSB describes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Base-table blocks read by scans.
    pub blocks_scanned: u64,
    /// Base-table blocks skipped outright because their zone map proved
    /// the scan predicate could never select a row. Pruned blocks do not
    /// count toward `blocks_scanned`/`rows_scanned` — their data was
    /// never touched, which is the entire point.
    pub blocks_pruned: u64,
    /// Base-table rows read by scans.
    pub rows_scanned: u64,
    /// Rows produced by the root operator.
    pub rows_output: u64,
}

impl ExecStats {
    /// Merges counters (for combining sub-executions).
    pub fn merge(&self, other: &ExecStats) -> ExecStats {
        ExecStats {
            blocks_scanned: self.blocks_scanned + other.blocks_scanned,
            blocks_pruned: self.blocks_pruned + other.blocks_pruned,
            rows_scanned: self.rows_scanned + other.rows_scanned,
            rows_output: self.rows_output + other.rows_output,
        }
    }
}

/// A fully materialized query result: a schema and a list of blocks.
///
/// Batches are reference-counted: results assembled from scans or shared
/// intermediates alias the underlying blocks instead of deep-copying them,
/// so materializing a result is O(number of blocks), not O(data).
#[derive(Debug, Clone)]
pub struct ResultSet {
    schema: Arc<Schema>,
    batches: Vec<Arc<Block>>,
    stats: ExecStats,
}

impl ResultSet {
    /// Assembles a result set from shared blocks (zero-copy).
    pub fn new(schema: Arc<Schema>, batches: Vec<Arc<Block>>, stats: ExecStats) -> Self {
        Self {
            schema,
            batches,
            stats,
        }
    }

    /// The result schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The result batches.
    pub fn batches(&self) -> &[Arc<Block>] {
        &self.batches
    }

    /// Execution statistics.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Total number of rows.
    pub fn num_rows(&self) -> usize {
        self.batches.iter().map(|b| b.len()).sum()
    }

    /// Row `i` across batches, materialized as values.
    pub fn row(&self, mut i: usize) -> Vec<Value> {
        for b in &self.batches {
            if i < b.len() {
                return b.row(i);
            }
            i -= b.len();
        }
        panic!("row index out of bounds");
    }

    /// All rows, materialized. Convenience for tests and small results.
    pub fn rows(&self) -> Vec<Vec<Value>> {
        (0..self.num_rows()).map(|i| self.row(i)).collect()
    }

    /// Scalar shortcut: the single value of a 1×1 result.
    ///
    /// # Panics
    /// Panics if the result is not exactly one row by one column.
    pub fn scalar(&self) -> Value {
        assert_eq!(self.num_rows(), 1, "scalar() requires exactly one row");
        assert_eq!(self.schema.len(), 1, "scalar() requires exactly one column");
        self.row(0).remove(0)
    }

    /// Named column across batches as `f64`, skipping NULLs.
    pub fn column_f64(&self, name: &str) -> Result<Vec<f64>, StorageError> {
        let idx = self.schema.index_of(name)?;
        let mut out = Vec::with_capacity(self.num_rows());
        for b in &self.batches {
            let col = b.column(idx);
            for i in 0..col.len() {
                if let Some(v) = col.f64_at(i) {
                    out.push(v);
                }
            }
        }
        Ok(out)
    }

    /// Named column across batches as values (NULLs included).
    pub fn column_values(&self, name: &str) -> Result<Vec<Value>, StorageError> {
        let idx = self.schema.index_of(name)?;
        let mut out = Vec::with_capacity(self.num_rows());
        for b in &self.batches {
            let col = b.column(idx);
            for i in 0..col.len() {
                out.push(col.get(i));
            }
        }
        Ok(out)
    }

    /// Concatenates all batches into one block.
    pub fn to_block(&self) -> Block {
        if self.batches.len() == 1 {
            return (*self.batches[0]).clone();
        }
        let mut columns: Vec<Column> = self
            .schema
            .fields()
            .iter()
            .map(|f| Column::with_capacity(f.data_type, self.num_rows()))
            .collect();
        for b in &self.batches {
            for (dst, src) in columns.iter_mut().zip(b.columns()) {
                dst.append(src);
            }
        }
        Block::from_columns(Arc::clone(&self.schema), columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqp_storage::{DataType, Field};

    fn two_batch_result() -> ResultSet {
        let schema = Arc::new(Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::nullable("b", DataType::Float64),
        ]));
        let mut b1 = Block::new(Arc::clone(&schema));
        b1.push_row(&[Value::Int64(1), Value::Float64(1.5)])
            .unwrap();
        b1.push_row(&[Value::Int64(2), Value::Null]).unwrap();
        let mut b2 = Block::new(Arc::clone(&schema));
        b2.push_row(&[Value::Int64(3), Value::Float64(3.5)])
            .unwrap();
        ResultSet::new(
            schema,
            vec![Arc::new(b1), Arc::new(b2)],
            ExecStats::default(),
        )
    }

    #[test]
    fn row_access_across_batches() {
        let r = two_batch_result();
        assert_eq!(r.num_rows(), 3);
        assert_eq!(r.row(0)[0], Value::Int64(1));
        assert_eq!(r.row(2)[0], Value::Int64(3));
        assert_eq!(r.rows().len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds() {
        two_batch_result().row(3);
    }

    #[test]
    fn column_extraction() {
        let r = two_batch_result();
        assert_eq!(r.column_f64("b").unwrap(), vec![1.5, 3.5]); // NULL skipped
        assert_eq!(
            r.column_values("b").unwrap(),
            vec![Value::Float64(1.5), Value::Null, Value::Float64(3.5)]
        );
        assert!(r.column_f64("zzz").is_err());
    }

    #[test]
    fn to_block_concatenates() {
        let r = two_batch_result();
        let b = r.to_block();
        assert_eq!(b.len(), 3);
        assert_eq!(b.row(2)[1], Value::Float64(3.5));
    }

    #[test]
    fn scalar_contract() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        let mut b = Block::new(Arc::clone(&schema));
        b.push_row(&[Value::Int64(42)]).unwrap();
        let r = ResultSet::new(schema, vec![Arc::new(b)], ExecStats::default());
        assert_eq!(r.scalar(), Value::Int64(42));
    }

    #[test]
    fn stats_merge() {
        let a = ExecStats {
            blocks_scanned: 1,
            blocks_pruned: 4,
            rows_scanned: 10,
            rows_output: 5,
        };
        let b = ExecStats {
            blocks_scanned: 2,
            blocks_pruned: 1,
            rows_scanned: 20,
            rows_output: 7,
        };
        let m = a.merge(&b);
        assert_eq!(m.blocks_scanned, 3);
        assert_eq!(m.blocks_pruned, 5);
        assert_eq!(m.rows_scanned, 30);
        assert_eq!(m.rows_output, 12);
    }
}
