//! Engine error type.

use std::fmt;

use aqp_expr::ExprError;
use aqp_storage::StorageError;

/// Errors raised during planning or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Underlying storage error.
    Storage(StorageError),
    /// Underlying expression error.
    Expr(ExprError),
    /// The plan is malformed (e.g. union of incompatible schemas).
    InvalidPlan {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Storage(e) => write!(f, "storage error: {e}"),
            Self::Expr(e) => write!(f, "expression error: {e}"),
            Self::InvalidPlan { detail } => write!(f, "invalid plan: {detail}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Storage(e) => Some(e),
            Self::Expr(e) => Some(e),
            Self::InvalidPlan { .. } => None,
        }
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        Self::Storage(e)
    }
}

impl From<ExprError> for EngineError {
    fn from(e: ExprError) -> Self {
        Self::Expr(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: EngineError = StorageError::TableNotFound { name: "t".into() }.into();
        assert!(e.to_string().contains("table not found"));
        let e: EngineError = ExprError::InvalidOperation { detail: "x".into() }.into();
        assert!(e.to_string().contains("invalid operation"));
        let e = EngineError::InvalidPlan {
            detail: "bad".into(),
        };
        assert_eq!(e.to_string(), "invalid plan: bad");
    }
}
