//! Logical plans and the typed query-builder API.

use std::sync::Arc;

use aqp_expr::Expr;
use aqp_storage::{Catalog, Field, Schema};

use crate::agg::AggExpr;
use crate::error::EngineError;

/// A sort key: column name plus direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortKey {
    /// Output-column name to sort by.
    pub column: String,
    /// Descending when true.
    pub desc: bool,
}

impl SortKey {
    /// Ascending sort on a column.
    pub fn asc(column: impl Into<String>) -> Self {
        Self {
            column: column.into(),
            desc: false,
        }
    }

    /// Descending sort on a column.
    pub fn desc(column: impl Into<String>) -> Self {
        Self {
            column: column.into(),
            desc: true,
        }
    }
}

/// A logical query plan.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan a catalog table.
    Scan {
        /// Table name.
        table: String,
    },
    /// Keep rows where the predicate is TRUE.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Boolean predicate.
        predicate: Expr,
    },
    /// Compute named expressions.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// `(expression, output name)` pairs.
        exprs: Vec<(Expr, String)>,
    },
    /// Inner equi-join on key expressions.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Key expression over the left schema.
        left_key: Expr,
        /// Key expression over the right schema.
        right_key: Expr,
    },
    /// Hash aggregation with optional grouping.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Group-by expressions with output names (empty = global).
        group_by: Vec<(Expr, String)>,
        /// Aggregates to compute.
        aggregates: Vec<AggExpr>,
    },
    /// Sort the result.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys, applied in order.
        keys: Vec<SortKey>,
    },
    /// Keep the first `n` rows.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Row cap.
        n: usize,
    },
    /// Bag union (`UNION ALL`) of schema-identical inputs.
    UnionAll {
        /// Inputs (at least one).
        inputs: Vec<LogicalPlan>,
    },
}

impl LogicalPlan {
    /// Output schema of this plan against a catalog.
    pub fn schema(&self, catalog: &Catalog) -> Result<Arc<Schema>, EngineError> {
        match self {
            LogicalPlan::Scan { table } => Ok(Arc::clone(catalog.get(table)?.schema())),
            LogicalPlan::Filter { input, .. } | LogicalPlan::Limit { input, .. } => {
                input.schema(catalog)
            }
            LogicalPlan::Sort { input, .. } => input.schema(catalog),
            LogicalPlan::Project { input, exprs } => {
                let in_schema = input.schema(catalog)?;
                let mut fields = Vec::with_capacity(exprs.len());
                for (e, name) in exprs {
                    let dt = e.data_type(&in_schema)?;
                    // Projected expressions may produce NULL (e.g. x/0), so
                    // computed fields are nullable; bare column references
                    // inherit their nullability.
                    let nullable = match e {
                        Expr::Column(c) => in_schema.field(c).map(|f| f.nullable)?,
                        _ => true,
                    };
                    fields.push(Field {
                        name: name.clone(),
                        data_type: dt,
                        nullable,
                    });
                }
                Ok(Arc::new(Schema::new(fields)))
            }
            LogicalPlan::Join { left, right, .. } => {
                let ls = left.schema(catalog)?;
                let rs = right.schema(catalog)?;
                let mut fields: Vec<Field> = ls.fields().to_vec();
                for f in rs.fields() {
                    let name = if fields.iter().any(|g| g.name == f.name) {
                        format!("{}_r", f.name)
                    } else {
                        f.name.clone()
                    };
                    fields.push(Field {
                        name,
                        data_type: f.data_type,
                        nullable: f.nullable,
                    });
                }
                Ok(Arc::new(Schema::new(fields)))
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggregates,
            } => {
                let in_schema = input.schema(catalog)?;
                let mut fields = Vec::with_capacity(group_by.len() + aggregates.len());
                for (e, name) in group_by {
                    fields.push(Field {
                        name: name.clone(),
                        data_type: e.data_type(&in_schema)?,
                        nullable: true,
                    });
                }
                for a in aggregates {
                    fields.push(Field {
                        name: a.alias.clone(),
                        data_type: a.output_type(&in_schema)?,
                        nullable: true,
                    });
                }
                Ok(Arc::new(Schema::new(fields)))
            }
            LogicalPlan::UnionAll { inputs } => {
                let first = inputs
                    .first()
                    .ok_or_else(|| EngineError::InvalidPlan {
                        detail: "UNION ALL of zero inputs".to_string(),
                    })?
                    .schema(catalog)?;
                for other in &inputs[1..] {
                    let s = other.schema(catalog)?;
                    if s.fields().len() != first.fields().len()
                        || s.fields()
                            .iter()
                            .zip(first.fields())
                            .any(|(a, b)| a.data_type != b.data_type)
                    {
                        return Err(EngineError::InvalidPlan {
                            detail: "UNION ALL inputs have incompatible schemas".to_string(),
                        });
                    }
                }
                Ok(first)
            }
        }
    }

    /// Names of all base tables this plan scans, in plan order.
    pub fn scanned_tables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_tables(&mut out);
        out
    }

    fn collect_tables<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            LogicalPlan::Scan { table } => out.push(table),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => input.collect_tables(out),
            LogicalPlan::Join { left, right, .. } => {
                left.collect_tables(out);
                right.collect_tables(out);
            }
            LogicalPlan::UnionAll { inputs } => {
                for i in inputs {
                    i.collect_tables(out);
                }
            }
        }
    }

    /// Rewrites every `Scan { table }` whose name has a replacement in
    /// `mapping` to scan the replacement instead. This is the primitive the
    /// AQP middleware uses: point the same plan at sampled tables.
    pub fn rebase_tables(&self, mapping: &dyn Fn(&str) -> Option<String>) -> LogicalPlan {
        match self {
            LogicalPlan::Scan { table } => LogicalPlan::Scan {
                table: mapping(table).unwrap_or_else(|| table.clone()),
            },
            LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
                input: Box::new(input.rebase_tables(mapping)),
                predicate: predicate.clone(),
            },
            LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
                input: Box::new(input.rebase_tables(mapping)),
                exprs: exprs.clone(),
            },
            LogicalPlan::Join {
                left,
                right,
                left_key,
                right_key,
            } => LogicalPlan::Join {
                left: Box::new(left.rebase_tables(mapping)),
                right: Box::new(right.rebase_tables(mapping)),
                left_key: left_key.clone(),
                right_key: right_key.clone(),
            },
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggregates,
            } => LogicalPlan::Aggregate {
                input: Box::new(input.rebase_tables(mapping)),
                group_by: group_by.clone(),
                aggregates: aggregates.clone(),
            },
            LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
                input: Box::new(input.rebase_tables(mapping)),
                keys: keys.clone(),
            },
            LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
                input: Box::new(input.rebase_tables(mapping)),
                n: *n,
            },
            LogicalPlan::UnionAll { inputs } => LogicalPlan::UnionAll {
                inputs: inputs.iter().map(|i| i.rebase_tables(mapping)).collect(),
            },
        }
    }
}

/// Fluent builder over [`LogicalPlan`].
///
/// ```
/// use aqp_engine::{Query, AggExpr};
/// use aqp_expr::{col, lit};
///
/// let plan = Query::scan("lineitem")
///     .filter(col("quantity").gt(lit(10i64)))
///     .aggregate(
///         vec![(col("status"), "status".to_string())],
///         vec![AggExpr::sum(col("price"), "revenue")],
///     )
///     .sort(vec![aqp_engine::SortKey::asc("status")])
///     .build();
/// assert_eq!(plan.scanned_tables(), vec!["lineitem"]);
/// ```
#[derive(Debug, Clone)]
pub struct Query {
    plan: LogicalPlan,
}

impl Query {
    /// Starts from a table scan.
    pub fn scan(table: impl Into<String>) -> Self {
        Self {
            plan: LogicalPlan::Scan {
                table: table.into(),
            },
        }
    }

    /// Wraps an existing plan.
    pub fn from_plan(plan: LogicalPlan) -> Self {
        Self { plan }
    }

    /// Adds a filter.
    pub fn filter(self, predicate: Expr) -> Self {
        Self {
            plan: LogicalPlan::Filter {
                input: Box::new(self.plan),
                predicate,
            },
        }
    }

    /// Adds a projection of `(expr, name)` pairs.
    pub fn project(self, exprs: Vec<(Expr, String)>) -> Self {
        Self {
            plan: LogicalPlan::Project {
                input: Box::new(self.plan),
                exprs,
            },
        }
    }

    /// Inner equi-joins with another query.
    pub fn join(self, right: Query, left_key: Expr, right_key: Expr) -> Self {
        Self {
            plan: LogicalPlan::Join {
                left: Box::new(self.plan),
                right: Box::new(right.plan),
                left_key,
                right_key,
            },
        }
    }

    /// Adds an aggregation.
    pub fn aggregate(self, group_by: Vec<(Expr, String)>, aggregates: Vec<AggExpr>) -> Self {
        Self {
            plan: LogicalPlan::Aggregate {
                input: Box::new(self.plan),
                group_by,
                aggregates,
            },
        }
    }

    /// Adds a sort.
    pub fn sort(self, keys: Vec<SortKey>) -> Self {
        Self {
            plan: LogicalPlan::Sort {
                input: Box::new(self.plan),
                keys,
            },
        }
    }

    /// Adds a row limit.
    pub fn limit(self, n: usize) -> Self {
        Self {
            plan: LogicalPlan::Limit {
                input: Box::new(self.plan),
                n,
            },
        }
    }

    /// Bag-unions with another query.
    pub fn union_all(self, other: Query) -> Self {
        Self {
            plan: LogicalPlan::UnionAll {
                inputs: vec![self.plan, other.plan],
            },
        }
    }

    /// Finishes building.
    pub fn build(self) -> LogicalPlan {
        self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqp_expr::{col, lit};
    use aqp_storage::DataType;
    use aqp_storage::{TableBuilder, Value};

    fn catalog() -> Catalog {
        let c = Catalog::new();
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("v", DataType::Float64),
            Field::new("tag", DataType::Str),
        ]);
        let mut b = TableBuilder::new("t", schema);
        for i in 0..10 {
            b.push_row(&[
                Value::Int64(i),
                Value::Float64(i as f64),
                Value::str(if i % 2 == 0 { "even" } else { "odd" }),
            ])
            .unwrap();
        }
        c.register(b.finish()).unwrap();
        let schema2 = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("w", DataType::Float64),
        ]);
        let mut b = TableBuilder::new("u", schema2);
        for i in 0..5 {
            b.push_row(&[Value::Int64(i), Value::Float64(i as f64 * 10.0)])
                .unwrap();
        }
        c.register(b.finish()).unwrap();
        c
    }

    #[test]
    fn scan_schema() {
        let c = catalog();
        let s = Query::scan("t").build().schema(&c).unwrap();
        assert_eq!(s.names(), vec!["id", "v", "tag"]);
    }

    #[test]
    fn filter_preserves_schema() {
        let c = catalog();
        let p = Query::scan("t").filter(col("v").gt(lit(1.0))).build();
        assert_eq!(p.schema(&c).unwrap().names(), vec!["id", "v", "tag"]);
    }

    #[test]
    fn project_schema_types() {
        let c = catalog();
        let p = Query::scan("t")
            .project(vec![
                (col("id").mul(lit(2i64)), "id2".to_string()),
                (col("v").div(lit(2i64)), "half".to_string()),
            ])
            .build();
        let s = p.schema(&c).unwrap();
        assert_eq!(s.field("id2").unwrap().data_type, DataType::Int64);
        assert_eq!(s.field("half").unwrap().data_type, DataType::Float64);
        assert!(s.field("half").unwrap().nullable);
    }

    #[test]
    fn join_schema_renames_collisions() {
        let c = catalog();
        let p = Query::scan("t")
            .join(Query::scan("u"), col("id"), col("id"))
            .build();
        let s = p.schema(&c).unwrap();
        assert_eq!(s.names(), vec!["id", "v", "tag", "id_r", "w"]);
    }

    #[test]
    fn aggregate_schema() {
        let c = catalog();
        let p = Query::scan("t")
            .aggregate(
                vec![(col("tag"), "tag".to_string())],
                vec![
                    AggExpr::count_star("n"),
                    AggExpr::avg(col("v"), "avg_v"),
                    AggExpr::min(col("id"), "min_id"),
                ],
            )
            .build();
        let s = p.schema(&c).unwrap();
        assert_eq!(s.names(), vec!["tag", "n", "avg_v", "min_id"]);
        assert_eq!(s.field("n").unwrap().data_type, DataType::Int64);
        assert_eq!(s.field("avg_v").unwrap().data_type, DataType::Float64);
        assert_eq!(s.field("min_id").unwrap().data_type, DataType::Int64);
    }

    #[test]
    fn union_schema_checks_compatibility() {
        let c = catalog();
        let ok = Query::scan("t").union_all(Query::scan("t")).build();
        assert!(ok.schema(&c).is_ok());
        let bad = Query::scan("t").union_all(Query::scan("u")).build();
        assert!(bad.schema(&c).is_err());
        let empty = LogicalPlan::UnionAll { inputs: vec![] };
        assert!(empty.schema(&c).is_err());
    }

    #[test]
    fn scanned_tables_and_rebase() {
        let p = Query::scan("t")
            .join(Query::scan("u"), col("id"), col("id"))
            .filter(col("v").gt(lit(0i64)))
            .build();
        assert_eq!(p.scanned_tables(), vec!["t", "u"]);
        let rebased = p.rebase_tables(&|name| (name == "t").then(|| "t_sample".to_string()));
        assert_eq!(rebased.scanned_tables(), vec!["t_sample", "u"]);
    }

    #[test]
    fn missing_table_schema_error() {
        let c = catalog();
        assert!(Query::scan("nope").build().schema(&c).is_err());
    }
}
