//! Typed filter→aggregate kernels over raw column slices.
//!
//! The scalar execution path materializes a `Column` of [`Value`]s for
//! every expression node and walks rows through `Value`-typed aggregate
//! updates. These kernels compile the common numeric shapes once per plan
//! — column references, numeric literals, `+ − × ÷ %` arithmetic,
//! comparisons, `AND`/`OR` — and then evaluate each block directly over
//! `&[i64]` / `&[f64]` slices plus validity masks:
//!
//! * predicates produce an **is-true selection mask** (SQL `WHERE`
//!   semantics: NULL is not selected) without building a boolean column;
//! * aggregate inputs evaluate to typed vectors consumed by the typed
//!   [`AggState`] updates, so no per-row `Value` or per-row key `Vec` is
//!   ever allocated;
//! * grouped aggregation keys on a single `i64` expression through
//!   [`I64GroupMap`].
//!
//! Anything the compiler does not model — strings, booleans, `NOT`,
//! `IS NULL`, `hash64`, NULL literals, multi-column or non-integer group
//! keys — makes [`FusedAggKernel::compile`] return `None` and the caller
//! falls back to the scalar path, which remains the semantic reference.
//! Where both paths run, they agree bit-for-bit on every block: the
//! kernels reproduce `eval`'s exact coercions (universal f64 comparison
//! domain, wrapping integer arithmetic, NULL on division by zero).
//!
//! Is-true masks compose under `AND`/`OR` (`t(A∧B) = t(A)∧t(B)`,
//! `t(A∨B) = t(A)∨t(B)`) but **not** under `NOT` (`NOT NULL` is NULL,
//! while `!false = true`), which is why `NOT` is out of scope rather
//! than special-cased.

use std::borrow::Cow;

use aqp_expr::{BinaryOp, Expr};
use aqp_storage::{Block, DataType, Schema, Value};

use crate::agg::{AggExpr, AggFunc, AggState, I64GroupMap};

/// A compiled numeric expression: evaluates over a block to a typed
/// vector (or splat) without `Value` materialization.
#[derive(Debug, Clone)]
enum NumExpr {
    /// An `INT64` column, by schema index.
    ColI64(usize),
    /// A `FLOAT64` column, by schema index.
    ColF64(usize),
    /// An integer literal, splatted.
    LitI64(i64),
    /// A float literal, splatted.
    LitF64(f64),
    /// Arithmetic. `int_out` mirrors `eval`'s rule: both operands INT64
    /// and the op is not division.
    Arith {
        op: BinaryOp,
        int_out: bool,
        l: Box<NumExpr>,
        r: Box<NumExpr>,
    },
}

/// One block's worth of evaluated numeric values. Leaf columns borrow
/// their slices; computed intermediates own theirs; literals splat.
/// The validity mask (`true` = non-NULL) is absent when every row is
/// valid, matching [`aqp_storage::Column`]'s convention.
enum Vals<'a> {
    I64(Cow<'a, [i64]>, Option<Cow<'a, [bool]>>),
    F64(Cow<'a, [f64]>, Option<Cow<'a, [bool]>>),
    SplatI64(i64),
    SplatF64(f64),
}

impl Vals<'_> {
    #[inline]
    fn is_valid(&self, i: usize) -> bool {
        match self {
            Vals::I64(_, nulls) | Vals::F64(_, nulls) => nulls.as_ref().is_none_or(|m| m[i]),
            Vals::SplatI64(_) | Vals::SplatF64(_) => true,
        }
    }

    /// Whether no row is NULL (enables validity-check-free inner loops).
    fn all_valid(&self) -> bool {
        match self {
            Vals::I64(_, nulls) | Vals::F64(_, nulls) => nulls.is_none(),
            Vals::SplatI64(_) | Vals::SplatF64(_) => true,
        }
    }

    /// Value at `i` in the universal f64 comparison domain (the same
    /// coercion [`Value::sql_cmp`] applies). Only meaningful when
    /// `is_valid(i)`.
    #[inline]
    fn f64_at(&self, i: usize) -> f64 {
        match self {
            Vals::I64(d, _) => d[i] as f64,
            Vals::F64(d, _) => d[i],
            Vals::SplatI64(x) => *x as f64,
            Vals::SplatF64(x) => *x,
        }
    }

    /// Integer value at `i`; panics on float variants (compile-time
    /// typing guarantees int operands for int-out arithmetic).
    #[inline]
    fn i64_at(&self, i: usize) -> i64 {
        match self {
            Vals::I64(d, _) => d[i],
            Vals::SplatI64(x) => *x,
            Vals::F64(..) | Vals::SplatF64(_) => {
                unreachable!("int-typed kernel operand evaluated to float")
            }
        }
    }
}

/// Merges two validity masks (logical AND), staying `None` when both are.
fn merge_validity<'a>(a: &Vals<'a>, b: &Vals<'a>, n: usize) -> Option<Vec<bool>> {
    if a.all_valid() && b.all_valid() {
        return None;
    }
    Some((0..n).map(|i| a.is_valid(i) && b.is_valid(i)).collect())
}

impl NumExpr {
    /// Whether the expression statically produces `i64` values.
    fn is_int(&self) -> bool {
        match self {
            NumExpr::ColI64(_) | NumExpr::LitI64(_) => true,
            NumExpr::ColF64(_) | NumExpr::LitF64(_) => false,
            NumExpr::Arith { int_out, .. } => *int_out,
        }
    }

    fn eval<'a>(&self, block: &'a Block) -> Vals<'a> {
        match self {
            NumExpr::ColI64(ci) => {
                let c = block.column(*ci);
                Vals::I64(
                    Cow::Borrowed(c.i64_values().expect("compiled against INT64 column")),
                    c.validity_mask().map(Cow::Borrowed),
                )
            }
            NumExpr::ColF64(ci) => {
                let c = block.column(*ci);
                Vals::F64(
                    Cow::Borrowed(c.f64_values().expect("compiled against FLOAT64 column")),
                    c.validity_mask().map(Cow::Borrowed),
                )
            }
            NumExpr::LitI64(x) => Vals::SplatI64(*x),
            NumExpr::LitF64(x) => Vals::SplatF64(*x),
            NumExpr::Arith { op, int_out, l, r } => {
                let lv = l.eval(block);
                let rv = r.eval(block);
                let n = block.len();
                if *int_out {
                    eval_arith_int(*op, &lv, &rv, n)
                } else {
                    eval_arith_f64(*op, &lv, &rv, n)
                }
            }
        }
    }
}

/// Integer arithmetic: wrapping ops, NULL on `% 0`, mirroring `eval`.
fn eval_arith_int<'a>(op: BinaryOp, lv: &Vals<'_>, rv: &Vals<'_>, n: usize) -> Vals<'a> {
    let mut validity = merge_validity(lv, rv, n);
    let mut data = Vec::with_capacity(n);
    for i in 0..n {
        if !validity.as_ref().is_none_or(|m| m[i]) {
            data.push(0); // placeholder under a NULL slot, never read
            continue;
        }
        let (a, b) = (lv.i64_at(i), rv.i64_at(i));
        let v = match op {
            BinaryOp::Add => a.wrapping_add(b),
            BinaryOp::Sub => a.wrapping_sub(b),
            BinaryOp::Mul => a.wrapping_mul(b),
            BinaryOp::Mod => {
                if b == 0 {
                    validity.get_or_insert_with(|| vec![true; n])[i] = false;
                    data.push(0);
                    continue;
                }
                a.wrapping_rem(b)
            }
            other => unreachable!("non-arithmetic op {other:?} in int kernel"),
        };
        data.push(v);
    }
    Vals::I64(Cow::Owned(data), validity.map(Cow::Owned))
}

/// Float arithmetic (also the mixed-type and division paths): operands
/// coerce to f64 exactly as `eval` does, NULL on `/ 0.0`.
fn eval_arith_f64<'a>(op: BinaryOp, lv: &Vals<'_>, rv: &Vals<'_>, n: usize) -> Vals<'a> {
    let mut validity = merge_validity(lv, rv, n);
    let mut data = Vec::with_capacity(n);
    for i in 0..n {
        if !validity.as_ref().is_none_or(|m| m[i]) {
            data.push(0.0);
            continue;
        }
        let (a, b) = (lv.f64_at(i), rv.f64_at(i));
        let v = match op {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mul => a * b,
            BinaryOp::Div => {
                if b == 0.0 {
                    validity.get_or_insert_with(|| vec![true; n])[i] = false;
                    data.push(0.0);
                    continue;
                }
                a / b
            }
            other => unreachable!("non-arithmetic op {other:?} in float kernel"),
        };
        data.push(v);
    }
    Vals::F64(Cow::Owned(data), validity.map(Cow::Owned))
}

/// A compiled predicate producing an is-true selection mask.
#[derive(Debug, Clone)]
enum PredNode {
    /// Numeric comparison in the f64 domain (NaN or NULL → not selected).
    Cmp {
        op: BinaryOp,
        l: NumExpr,
        r: NumExpr,
    },
    And(Box<PredNode>, Box<PredNode>),
    Or(Box<PredNode>, Box<PredNode>),
}

#[inline]
fn cmp_holds(op: BinaryOp, a: f64, b: f64) -> bool {
    // partial_cmp mirrors sql_cmp: NaN on either side selects nothing.
    match a.partial_cmp(&b) {
        None => false,
        Some(ord) => match op {
            BinaryOp::Eq => ord.is_eq(),
            BinaryOp::NotEq => ord.is_ne(),
            BinaryOp::Lt => ord.is_lt(),
            BinaryOp::LtEq => ord.is_le(),
            BinaryOp::Gt => ord.is_gt(),
            BinaryOp::GtEq => ord.is_ge(),
            other => unreachable!("non-comparison op {other:?} in predicate kernel"),
        },
    }
}

impl PredNode {
    /// Evaluates the is-true mask for a block into `out` (cleared first).
    fn fill_mask(&self, block: &Block, out: &mut Vec<bool>) {
        let n = block.len();
        match self {
            PredNode::Cmp { op, l, r } => {
                let lv = l.eval(block);
                let rv = r.eval(block);
                out.clear();
                out.reserve(n);
                if lv.all_valid() && rv.all_valid() {
                    for i in 0..n {
                        out.push(cmp_holds(*op, lv.f64_at(i), rv.f64_at(i)));
                    }
                } else {
                    for i in 0..n {
                        out.push(
                            lv.is_valid(i)
                                && rv.is_valid(i)
                                && cmp_holds(*op, lv.f64_at(i), rv.f64_at(i)),
                        );
                    }
                }
            }
            PredNode::And(a, b) => {
                a.fill_mask(block, out);
                let mut rhs = Vec::new();
                b.fill_mask(block, &mut rhs);
                for (x, y) in out.iter_mut().zip(rhs) {
                    *x = *x && y;
                }
            }
            PredNode::Or(a, b) => {
                a.fill_mask(block, out);
                let mut rhs = Vec::new();
                b.fill_mask(block, &mut rhs);
                for (x, y) in out.iter_mut().zip(rhs) {
                    *x = *x || y;
                }
            }
        }
    }
}

fn compile_num(e: &Expr, schema: &Schema) -> Option<NumExpr> {
    match e {
        Expr::Column(name) => {
            let i = schema.index_of(name).ok()?;
            match schema.fields()[i].data_type {
                DataType::Int64 => Some(NumExpr::ColI64(i)),
                DataType::Float64 => Some(NumExpr::ColF64(i)),
                DataType::Str | DataType::Bool => None,
            }
        }
        Expr::Literal(Value::Int64(x)) => Some(NumExpr::LitI64(*x)),
        Expr::Literal(Value::Float64(x)) => Some(NumExpr::LitF64(*x)),
        Expr::Binary { left, op, right }
            if matches!(
                op,
                BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod
            ) =>
        {
            let l = compile_num(left, schema)?;
            let r = compile_num(right, schema)?;
            let int_out = match op {
                BinaryOp::Div => false,
                // eval rejects non-INT64 modulo; keep that path scalar so
                // the error surfaces identically.
                BinaryOp::Mod => {
                    if !(l.is_int() && r.is_int()) {
                        return None;
                    }
                    true
                }
                _ => l.is_int() && r.is_int(),
            };
            Some(NumExpr::Arith {
                op: *op,
                int_out,
                l: Box::new(l),
                r: Box::new(r),
            })
        }
        _ => None,
    }
}

fn compile_pred(e: &Expr, schema: &Schema) -> Option<PredNode> {
    match e {
        Expr::Binary { left, op, right } => match op {
            BinaryOp::And => Some(PredNode::And(
                Box::new(compile_pred(left, schema)?),
                Box::new(compile_pred(right, schema)?),
            )),
            BinaryOp::Or => Some(PredNode::Or(
                Box::new(compile_pred(left, schema)?),
                Box::new(compile_pred(right, schema)?),
            )),
            BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq => Some(PredNode::Cmp {
                op: *op,
                l: compile_num(left, schema)?,
                r: compile_num(right, schema)?,
            }),
            _ => None,
        },
        _ => None,
    }
}

/// A compiled predicate pipeline for fused scans: all of a chain's
/// predicates as one ANDed is-true mask kernel.
pub struct PredKernel {
    node: PredNode,
}

impl PredKernel {
    /// Compiles a predicate chain (innermost-first, as in a fused scan).
    /// Returns `None` if any predicate uses an unmodeled shape.
    pub fn compile(predicates: &[&Expr], schema: &Schema) -> Option<PredKernel> {
        let mut nodes = predicates
            .iter()
            .map(|p| compile_pred(p, schema))
            .collect::<Option<Vec<_>>>()?;
        let first = nodes
            .drain(..)
            .reduce(|a, b| PredNode::And(Box::new(a), Box::new(b)))?;
        Some(PredKernel { node: first })
    }

    /// Evaluates the combined selection mask for one block. Rows where a
    /// predicate is FALSE *or NULL* are not selected — identical to
    /// applying the chain's predicates one by one.
    pub fn selection_mask(&self, block: &Block) -> Vec<bool> {
        let mut mask = Vec::new();
        self.node.fill_mask(block, &mut mask);
        mask
    }
}

/// Aggregate input: `COUNT(*)` needs no evaluation, everything else is a
/// compiled numeric expression.
#[derive(Debug, Clone)]
enum AggInput {
    CountStar,
    Num(NumExpr),
}

/// Partial aggregation state for one morsel: either one state vector
/// (global aggregate) or an `i64`-keyed group map.
pub enum KernelAcc {
    /// Global (no GROUP BY) partial.
    Global(Vec<AggState>),
    /// Grouped partial.
    Grouped(I64GroupMap),
}

impl KernelAcc {
    /// Absorbs a later morsel's partial. `self` must cover the earlier
    /// morsels — [`AggState::merge`] and [`I64GroupMap::merge_from`] are
    /// order-sensitive for float sums and MIN/MAX ties.
    pub fn merge_from(&mut self, other: KernelAcc) {
        match (self, other) {
            (KernelAcc::Global(a), KernelAcc::Global(b)) => {
                for (x, y) in a.iter_mut().zip(b) {
                    x.merge(y);
                }
            }
            (KernelAcc::Grouped(a), KernelAcc::Grouped(b)) => a.merge_from(b),
            _ => unreachable!("mismatched kernel accumulator shapes"),
        }
    }
}

/// Merges per-morsel partials along a fixed pairwise tree: `(0,1)`,
/// `(2,3)`, … then pairs of pairs, until one remains. The tree shape
/// depends only on the morsel count — never on the thread count — so a
/// plan's result is bit-for-bit identical at every thread count,
/// including 1.
pub fn tree_merge(mut parts: Vec<KernelAcc>) -> Option<KernelAcc> {
    while parts.len() > 1 {
        let mut next = Vec::with_capacity(parts.len().div_ceil(2));
        let mut it = parts.into_iter();
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                a.merge_from(b);
            }
            next.push(a);
        }
        parts = next;
    }
    parts.pop()
}

/// A fully compiled filter→aggregate pipeline over one table's blocks.
pub struct FusedAggKernel {
    predicate: Option<PredKernel>,
    /// `None` = global aggregate; `Some` = single INT64-typed group key.
    key: Option<NumExpr>,
    inputs: Vec<AggInput>,
    funcs: Vec<AggFunc>,
}

impl FusedAggKernel {
    /// Compiles a fused scan's predicates plus an aggregation against the
    /// base table schema. Returns `None` — caller falls back to the
    /// scalar path — when any piece is out of the kernel's domain:
    /// non-numeric or NULL-literal expressions, `NOT`/`IS NULL`/`hash64`,
    /// multi-column group keys, or non-INT64 key types.
    pub fn compile(
        predicates: &[&Expr],
        group_by: &[(Expr, String)],
        aggregates: &[AggExpr],
        schema: &Schema,
    ) -> Option<FusedAggKernel> {
        let predicate = if predicates.is_empty() {
            None
        } else {
            Some(PredKernel::compile(predicates, schema)?)
        };
        let key = match group_by {
            [] => None,
            [(expr, _)] => {
                let k = compile_num(expr, schema)?;
                if !k.is_int() {
                    return None; // float keys canonicalize through KeyAtom
                }
                Some(k)
            }
            _ => return None,
        };
        let mut inputs = Vec::with_capacity(aggregates.len());
        let mut funcs = Vec::with_capacity(aggregates.len());
        for a in aggregates {
            // Compile the argument even for COUNT(*): an argument the
            // scalar path would reject must keep erroring, not silently
            // succeed through the kernel.
            let num = compile_num(&a.expr, schema)?;
            inputs.push(match a.func {
                AggFunc::CountStar => AggInput::CountStar,
                _ => AggInput::Num(num),
            });
            funcs.push(a.func);
        }
        Some(FusedAggKernel {
            predicate,
            key,
            inputs,
            funcs,
        })
    }

    /// Whether the kernel aggregates without a GROUP BY.
    pub fn is_global(&self) -> bool {
        self.key.is_none()
    }

    /// A fresh (empty) partial accumulator. `hint` pre-sizes the group
    /// map (from the analyzer's cardinality hint, when available).
    pub fn new_acc(&self, hint: Option<usize>) -> KernelAcc {
        match &self.key {
            None => KernelAcc::Global(self.funcs.iter().map(|f| AggState::new(*f)).collect()),
            Some(_) => KernelAcc::Grouped(I64GroupMap::new(self.funcs.clone(), hint.unwrap_or(64))),
        }
    }

    /// Folds one block into a partial accumulator. Returns the number of
    /// rows that passed the predicate. `apply_predicates: false` skips
    /// mask evaluation entirely — for blocks whose zone map already
    /// proved every predicate true on every row.
    pub fn accumulate(&self, block: &Block, acc: &mut KernelAcc, apply_predicates: bool) -> u64 {
        let n = block.len();
        let mask = if apply_predicates {
            self.predicate.as_ref().map(|p| p.selection_mask(block))
        } else {
            None
        };
        let selected: u64 = match &mask {
            None => n as u64,
            Some(m) => m.iter().filter(|&&b| b).count() as u64,
        };
        if selected == 0 {
            return 0;
        }
        let key_vals = self.key.as_ref().map(|k| k.eval(block));
        let agg_vals: Vec<Option<Vals<'_>>> = self
            .inputs
            .iter()
            .map(|inp| match inp {
                AggInput::CountStar => None,
                AggInput::Num(e) => Some(e.eval(block)),
            })
            .collect();
        for i in 0..n {
            if let Some(m) = &mask {
                if !m[i] {
                    continue;
                }
            }
            let states: &mut [AggState] = match (&key_vals, &mut *acc) {
                (None, KernelAcc::Global(states)) => states,
                (Some(kv), KernelAcc::Grouped(map)) => {
                    if kv.is_valid(i) {
                        map.slot(kv.i64_at(i))
                    } else {
                        map.null_slot()
                    }
                }
                _ => unreachable!("accumulator shape disagrees with kernel"),
            };
            for (state, vals) in states.iter_mut().zip(&agg_vals) {
                match vals {
                    // COUNT(*) advances on every row, NULL or not — and
                    // update_null is exactly "advance iff COUNT(*)".
                    None => state.update_null(),
                    Some(v) => {
                        if !v.is_valid(i) {
                            state.update_null();
                        } else {
                            match v {
                                Vals::I64(..) | Vals::SplatI64(_) => state.update_i64(v.i64_at(i)),
                                Vals::F64(..) | Vals::SplatF64(_) => state.update_f64(v.f64_at(i)),
                            }
                        }
                    }
                }
            }
        }
        selected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqp_expr::eval::{eval, eval_predicate_mask};
    use aqp_expr::{col, lit};
    use aqp_storage::{Field, Schema};
    use std::sync::Arc;

    fn block() -> Block {
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::nullable("v", DataType::Float64),
            Field::new("k", DataType::Int64),
        ]));
        let mut b = Block::new(schema);
        for i in 0..50i64 {
            let v = if i % 7 == 0 {
                Value::Null
            } else {
                Value::Float64(i as f64 * 0.5)
            };
            b.push_row(&[Value::Int64(i), v, Value::Int64(i % 5)])
                .unwrap();
        }
        b
    }

    fn assert_mask_matches(pred: &Expr, b: &Block) {
        let k = PredKernel::compile(&[pred], b.schema()).expect("compiles");
        assert_eq!(
            k.selection_mask(b),
            eval_predicate_mask(pred, b).expect("scalar path evaluates"),
            "mask mismatch for {pred}"
        );
    }

    #[test]
    fn predicate_masks_match_scalar_eval() {
        let b = block();
        for pred in [
            col("v").lt(lit(10.0)),
            col("v").gt_eq(lit(5.0)),
            col("id").modulo(lit(3i64)).eq(lit(0i64)),
            col("id").mul(lit(2i64)).gt(col("k").add(lit(30i64))),
            col("v").lt(lit(10.0)).and(col("id").gt(lit(4i64))),
            col("v").lt(lit(3.0)).or(col("v").gt(lit(20.0))),
            col("v").div(col("k")).gt(lit(2.0)), // ÷0 rows are NULL → unselected
            col("v").not_eq(lit(f64::NAN)),      // NaN compares as NULL
        ] {
            assert_mask_matches(&pred, &b);
        }
    }

    #[test]
    fn chained_predicates_equal_sequential_masks() {
        let b = block();
        let p1 = col("v").lt(lit(20.0));
        let p2 = col("id").gt(lit(3i64));
        let k = PredKernel::compile(&[&p1, &p2], b.schema()).expect("compiles");
        let combined = k.selection_mask(&b);
        let m1 = eval_predicate_mask(&p1, &b).unwrap();
        let m2 = eval_predicate_mask(&p2, &b).unwrap();
        let expect: Vec<bool> = m1.iter().zip(&m2).map(|(a, c)| *a && *c).collect();
        assert_eq!(combined, expect);
    }

    #[test]
    fn unsupported_shapes_do_not_compile() {
        let schema = Schema::new(vec![
            Field::new("s", DataType::Str),
            Field::new("f", DataType::Bool),
            Field::new("x", DataType::Int64),
        ]);
        for pred in [
            col("s").eq(lit("hi")),               // string compare
            col("f").and(col("x").gt(lit(0i64))), // bare bool column
            col("x").gt(lit(0i64)).not(),         // NOT inverts NULL wrong
            col("x").is_null(),
            col("x").hash64().gt(lit(0i64)),
            col("x").eq(Expr::Literal(Value::Null)),
        ] {
            assert!(
                PredKernel::compile(&[&pred], &schema).is_none(),
                "{pred} should fall back"
            );
        }
    }

    #[test]
    fn arith_kernel_matches_eval_bitwise() {
        let b = block();
        let exprs = [
            col("id").add(col("k")),
            col("id").sub(lit(7i64)),
            col("v").mul(lit(0.1)),
            col("id").div(col("k")),     // k=0 rows → NULL
            col("id").modulo(lit(0i64)), // mod 0 → NULL
            col("v").add(col("id")),
        ];
        for e in exprs {
            let compiled = compile_num(&e, b.schema()).expect("compiles");
            let vals = compiled.eval(&b);
            let scalar = eval(&e, &b).expect("scalar path");
            for i in 0..b.len() {
                let sv = scalar.get(i);
                if sv.is_null() {
                    assert!(!vals.is_valid(i), "{e} row {i}: kernel non-null, eval NULL");
                    continue;
                }
                assert!(vals.is_valid(i), "{e} row {i}: kernel NULL, eval {sv:?}");
                match sv {
                    Value::Int64(x) => assert_eq!(vals.i64_at(i), x, "{e} row {i}"),
                    Value::Float64(x) => {
                        assert_eq!(vals.f64_at(i).to_bits(), x.to_bits(), "{e} row {i}")
                    }
                    other => panic!("unexpected scalar output {other:?}"),
                }
            }
        }
    }

    #[test]
    fn global_agg_kernel_matches_scalar_states() {
        let b = block();
        let aggs = vec![
            AggExpr::count_star("n"),
            AggExpr::sum(col("v"), "s"),
            AggExpr::avg(col("v"), "a"),
            AggExpr::min(col("v"), "mn"),
            AggExpr::max(col("id"), "mx"),
            AggExpr::count_distinct(col("k"), "d"),
            AggExpr::new(AggFunc::VarSamp, col("v"), "var"),
        ];
        let pred = col("v").lt(lit(18.0));
        let kernel = FusedAggKernel::compile(&[&pred], &[], &aggs, b.schema()).expect("compiles");
        assert!(kernel.is_global());
        let mut acc = kernel.new_acc(None);
        kernel.accumulate(&b, &mut acc, true);
        // Scalar reference: filter then update with Values.
        let mask = eval_predicate_mask(&pred, &b).unwrap();
        let filtered = b.filter(&mask);
        let mut reference: Vec<AggState> = aggs.iter().map(|a| AggState::new(a.func)).collect();
        for (j, a) in aggs.iter().enumerate() {
            let c = eval(&a.expr, &filtered).unwrap();
            for i in 0..filtered.len() {
                reference[j].update(&c.get(i));
            }
        }
        let KernelAcc::Global(states) = acc else {
            panic!("expected global accumulator");
        };
        for (j, (ks, rs)) in states.iter().zip(&reference).enumerate() {
            let bits = |v: Value| match v {
                Value::Float64(x) => format!("f{}", x.to_bits()),
                other => format!("{other:?}"),
            };
            assert_eq!(bits(ks.finish()), bits(rs.finish()), "agg #{j}");
        }
    }

    #[test]
    fn grouped_agg_kernel_matches_scalar_fold() {
        let b = block();
        let aggs = vec![AggExpr::count_star("n"), AggExpr::sum(col("v"), "s")];
        let kernel = FusedAggKernel::compile(
            &[],
            &[(col("id").modulo(lit(5i64)), "g".to_string())],
            &aggs,
            b.schema(),
        )
        .expect("compiles");
        assert!(!kernel.is_global());
        let mut acc = kernel.new_acc(Some(5));
        let passed = kernel.accumulate(&b, &mut acc, true);
        assert_eq!(passed, 50);
        let KernelAcc::Grouped(map) = acc else {
            panic!("expected grouped accumulator");
        };
        let (groups, null_group) = map.into_groups();
        assert!(null_group.is_none());
        assert_eq!(groups.len(), 5);
        for (key, states) in groups {
            // 10 rows per residue class; v NULL when id % 7 == 0.
            assert_eq!(states[0].finish(), Value::Int64(10));
            let expect: f64 = (0..50i64)
                .filter(|i| i % 5 == key && i % 7 != 0)
                .map(|i| i as f64 * 0.5)
                .sum();
            assert_eq!(states[1].finish(), Value::Float64(expect), "group {key}");
        }
    }

    #[test]
    fn tree_merge_is_shape_stable() {
        // 5 partials, each one value: tree is ((0,1),(2,3)),(4) regardless
        // of how the caller computed them.
        let parts: Vec<KernelAcc> = (0..5)
            .map(|i| {
                let mut s = AggState::new(AggFunc::Sum);
                s.update_f64(0.1 * (i as f64 + 1.0));
                KernelAcc::Global(vec![s])
            })
            .collect();
        let merged = tree_merge(parts).expect("non-empty");
        let KernelAcc::Global(states) = merged else {
            panic!("global");
        };
        let expect = ((0.1 + 0.2) + (0.3 + 0.4)) + 0.5_f64;
        let Value::Float64(got) = states[0].finish() else {
            panic!("float");
        };
        assert_eq!(got.to_bits(), expect.to_bits());
    }

    #[test]
    fn null_group_key_routes_to_null_slot() {
        let schema = Arc::new(Schema::new(vec![
            Field::nullable("g", DataType::Int64),
            Field::new("x", DataType::Int64),
        ]));
        let mut b = Block::new(schema);
        b.push_row(&[Value::Int64(1), Value::Int64(10)]).unwrap();
        b.push_row(&[Value::Null, Value::Int64(20)]).unwrap();
        b.push_row(&[Value::Int64(1), Value::Int64(30)]).unwrap();
        let aggs = vec![AggExpr::sum(col("x"), "s")];
        let kernel =
            FusedAggKernel::compile(&[], &[(col("g"), "g".to_string())], &aggs, b.schema())
                .expect("compiles");
        let mut acc = kernel.new_acc(None);
        kernel.accumulate(&b, &mut acc, true);
        let KernelAcc::Grouped(map) = acc else {
            panic!()
        };
        let (groups, null_group) = map.into_groups();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].0, 1);
        assert_eq!(groups[0].1[0].finish(), Value::Float64(40.0));
        assert_eq!(
            null_group.expect("null group")[0].finish(),
            Value::Float64(20.0)
        );
    }

    #[test]
    fn compile_rejects_out_of_domain_aggregations() {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("s", DataType::Str),
            Field::new("f", DataType::Bool),
            Field::new("v", DataType::Float64),
        ]);
        let ok = vec![AggExpr::sum(col("v"), "s")];
        // Multi-column keys fall back.
        assert!(FusedAggKernel::compile(
            &[],
            &[(col("id"), "a".to_string()), (col("id"), "b".to_string())],
            &ok,
            &schema
        )
        .is_none());
        // Float keys fall back (KeyAtom canonicalization).
        assert!(
            FusedAggKernel::compile(&[], &[(col("v"), "g".to_string())], &ok, &schema).is_none()
        );
        // String/bool aggregate inputs fall back.
        assert!(
            FusedAggKernel::compile(&[], &[], &[AggExpr::min(col("s"), "m")], &schema).is_none()
        );
        assert!(
            FusedAggKernel::compile(&[], &[], &[AggExpr::max(col("f"), "m")], &schema).is_none()
        );
        // COUNT(*) with an invalid argument keeps erroring via fallback.
        assert!(FusedAggKernel::compile(
            &[],
            &[],
            &[AggExpr::new(AggFunc::CountStar, col("missing"), "n")],
            &schema
        )
        .is_none());
    }
}
