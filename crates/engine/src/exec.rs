//! Morsel-driven block-at-a-time physical execution.
//!
//! Leaf scans are split into per-block *morsels* dispatched to a scoped
//! worker pool ([`crate::pool`]). `Scan→Filter→Project` chains run fused:
//! one worker carries a morsel through the whole chain without
//! materializing intermediates. Hash aggregation and hash join run in two
//! phases — per-morsel partial states (partial [`AggState`]s, partial
//! build-side tables), then a merge pass folding partials *in morsel
//! order*.
//!
//! That fixed fold order is the determinism guarantee: the reduction tree
//! depends only on data layout, never on scheduling, so a given plan
//! produces identical results at every thread count. `threads == 1`
//! (see [`ExecOptions`]) bypasses the pool entirely and runs the legacy
//! serial fold bit-for-bit.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::Arc;

use aqp_expr::eval::{eval, eval_predicate_mask};
use aqp_expr::{prune_predicate, Expr, PruneVerdict};
use aqp_storage::{Block, Catalog, Column, Schema, Table, Value};

use crate::agg::{AggState, KeyAtom};
use crate::error::EngineError;
use crate::kernel::{tree_merge, FusedAggKernel, KernelAcc, PredKernel};
use crate::plan::{LogicalPlan, SortKey};
use crate::pool::{self, ExecOptions};
use crate::result::{ExecStats, ResultSet};

/// Rows per output block produced by row-assembling operators (join, agg).
const OUTPUT_BLOCK_ROWS: usize = 4096;

/// Minimum total input rows before an operator pays for the worker pool;
/// below this, pool setup costs more than the work.
const MIN_PARALLEL_ROWS: u64 = 4096;

/// Blocks per aggregation morsel. Aggregation partials carry a hash map
/// whose size scales with group cardinality, so one-block morsels would
/// pay that map (and its merge) per block; spanning several blocks
/// amortizes it. Fixed by layout — independent of the thread count — so
/// the partial-merge tree, and hence the result, never varies with it.
const AGG_MORSEL_BLOCKS: usize = 16;

/// Resolves the worker count for an operator over `morsels` morsels
/// holding `rows` rows total: serial for small inputs, otherwise the
/// configured thread count capped at one worker per morsel.
fn morsel_threads(opts: &ExecOptions, morsels: usize, rows: u64) -> usize {
    if opts.threads <= 1 || morsels < 2 || rows < MIN_PARALLEL_ROWS {
        1
    } else {
        opts.threads.min(morsels)
    }
}

/// Executes a logical plan against a catalog with default options
/// (worker count = available parallelism).
pub fn execute(plan: &LogicalPlan, catalog: &Catalog) -> Result<ResultSet, EngineError> {
    execute_with(plan, catalog, ExecOptions::default())
}

/// Executes a logical plan against a catalog, materializing the result.
/// Result batches are shared (`Arc`) with the executor's intermediates —
/// assembling the [`ResultSet`] copies no data.
pub fn execute_with(
    plan: &LogicalPlan,
    catalog: &Catalog,
    opts: ExecOptions,
) -> Result<ResultSet, EngineError> {
    let schema = plan.schema(catalog)?;
    let mut stats = ExecStats::default();
    let batches = exec_node(plan, catalog, &mut stats, &opts)?;
    stats.rows_output = batches.iter().map(|b| b.len() as u64).sum();
    Ok(ResultSet::new(schema, batches, stats))
}

/// Static span name for an operator node (fused chains report as one
/// `op:fused-scan` span, matching how they execute).
fn node_span_name(plan: &LogicalPlan) -> &'static str {
    if fuse(plan).is_some() {
        return "op:fused-scan";
    }
    match plan {
        LogicalPlan::Scan { .. } => "op:scan",
        LogicalPlan::Filter { .. } => "op:filter",
        LogicalPlan::Project { .. } => "op:project",
        LogicalPlan::Join { .. } => "op:join",
        LogicalPlan::Aggregate { .. } => "op:aggregate",
        LogicalPlan::Sort { .. } => "op:sort",
        LogicalPlan::Limit { .. } => "op:limit",
        LogicalPlan::UnionAll { .. } => "op:union-all",
    }
}

fn node_table(plan: &LogicalPlan) -> Option<&str> {
    match plan {
        LogicalPlan::Scan { table } => Some(table),
        _ => fuse(plan).map(|f| f.table),
    }
}

/// Span-wrapping shell around [`exec_node_inner`]: every operator node
/// gets an `op:*` span carrying its output row count (and source table
/// for scans), nested under the caller's span via the tracer's
/// thread-local parenting. Inert — one atomic load — when tracing is off.
fn exec_node(
    plan: &LogicalPlan,
    catalog: &Catalog,
    stats: &mut ExecStats,
    opts: &ExecOptions,
) -> Result<Vec<Arc<Block>>, EngineError> {
    let mut span = aqp_obs::span(node_span_name(plan));
    if span.is_recording() {
        if let Some(table) = node_table(plan) {
            span.set_detail(table.to_string());
        }
    }
    let pruned_before = stats.blocks_pruned;
    let out = exec_node_inner(plan, catalog, stats, opts)?;
    if span.is_recording() {
        span.set_rows(out.iter().map(|b| b.len() as u64).sum());
        // Surface the zone-map prune rate in the operator row.
        let pruned = stats.blocks_pruned - pruned_before;
        if pruned > 0 {
            if let Some(table) = node_table(plan) {
                span.set_detail(format!("{table} [{pruned} blocks pruned]"));
            }
        }
    }
    Ok(out)
}

/// What a block's zone map says about a fused chain's predicate set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScanVerdict {
    /// Some predicate can never be true on this block: skip it outright.
    Pruned,
    /// Every predicate is true on every (non-pruned) row: no mask needed.
    AllTrue,
    /// Undecided: evaluate the predicate masks row by row.
    Evaluate,
}

/// Classifies a table's blocks against a predicate chain using the
/// table's cached zone maps. With pruning disabled (or no predicates)
/// every block gets the conservative verdict. Verdicts depend only on
/// data layout, so downstream stats and results stay identical across
/// thread counts.
fn classify_blocks(
    t: &Table,
    predicates: &[&Expr],
    zone_pruning: bool,
) -> Vec<(Arc<Block>, ScanVerdict)> {
    let schema = t.schema();
    t.iter_blocks()
        .map(|(idx, block)| {
            let verdict = if predicates.is_empty() {
                ScanVerdict::AllTrue
            } else if !zone_pruning {
                ScanVerdict::Evaluate
            } else {
                let zone = t.zone(idx);
                let mut v = ScanVerdict::AllTrue;
                for p in predicates {
                    match prune_predicate(p, schema, zone) {
                        PruneVerdict::AllFalse => {
                            v = ScanVerdict::Pruned;
                            break;
                        }
                        PruneVerdict::AllTrue => {}
                        PruneVerdict::Unknown => v = ScanVerdict::Evaluate,
                    }
                }
                v
            };
            (Arc::clone(block), verdict)
        })
        .collect()
}

/// Records one plan dispatch on the always-on kernel/fallback counter.
fn record_dispatch(kernel: bool) {
    aqp_obs::metrics::global()
        .counter_labeled(
            aqp_obs::names::KERNEL_DISPATCH_TOTAL,
            aqp_obs::names::KERNEL_DISPATCH_LABEL,
            if kernel {
                aqp_obs::names::KERNEL_DISPATCH_KERNEL
            } else {
                aqp_obs::names::KERNEL_DISPATCH_FALLBACK
            },
        )
        .inc(1);
}

/// Feeds one scan's block accounting into the always-on prune-rate
/// counters (`pruned / (pruned + scanned)` is the prune rate).
fn record_scan_counters(scan_stats: &ExecStats) {
    let m = aqp_obs::metrics::global();
    if scan_stats.blocks_pruned > 0 {
        m.counter(aqp_obs::names::BLOCKS_PRUNED_TOTAL)
            .inc(scan_stats.blocks_pruned);
    }
    if scan_stats.blocks_scanned > 0 {
        m.counter(aqp_obs::names::BLOCKS_SCANNED_TOTAL)
            .inc(scan_stats.blocks_scanned);
    }
}

fn exec_node_inner(
    plan: &LogicalPlan,
    catalog: &Catalog,
    stats: &mut ExecStats,
    opts: &ExecOptions,
) -> Result<Vec<Arc<Block>>, EngineError> {
    if let Some(fused) = fuse(plan) {
        let out_schema = plan.schema(catalog)?;
        return exec_fused(&fused, &out_schema, catalog, stats, opts);
    }
    match plan {
        LogicalPlan::Scan { table } => {
            let t = catalog.get(table)?;
            let mut out = Vec::with_capacity(t.block_count());
            for (_, block) in t.iter_blocks() {
                stats.blocks_scanned += 1;
                stats.rows_scanned += block.len() as u64;
                out.push(Arc::clone(block));
            }
            Ok(out)
        }
        LogicalPlan::Filter { input, predicate } => {
            let batches = exec_node(input, catalog, stats, opts)?;
            let rows: u64 = batches.iter().map(|b| b.len() as u64).sum();
            let threads = morsel_threads(opts, batches.len(), rows);
            filter_batches(batches, predicate, threads)
        }
        LogicalPlan::Project { input, exprs } => {
            let batches = exec_node(input, catalog, stats, opts)?;
            let schema = plan.schema(catalog)?;
            let rows: u64 = batches.iter().map(|b| b.len() as u64).sum();
            let threads = morsel_threads(opts, batches.len(), rows);
            project_batches(batches, exprs, &schema, threads)
        }
        LogicalPlan::Join {
            left,
            right,
            left_key,
            right_key,
        } => {
            let left_batches = exec_node(left, catalog, stats, opts)?;
            let right_batches = exec_node(right, catalog, stats, opts)?;
            let schema = plan.schema(catalog)?;
            let rows: u64 = left_batches
                .iter()
                .chain(&right_batches)
                .map(|b| b.len() as u64)
                .sum();
            let morsels = left_batches.len().max(right_batches.len());
            let threads = morsel_threads(opts, morsels, rows);
            hash_join(
                &left_batches,
                &right_batches,
                left_key,
                right_key,
                &schema,
                threads,
            )
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
        } => {
            let schema = plan.schema(catalog)?;
            if let Some(out) =
                exec_fused_agg(input, group_by, aggregates, &schema, catalog, stats, opts)?
            {
                return Ok(out);
            }
            record_dispatch(false);
            let batches = exec_node(input, catalog, stats, opts)?;
            let rows: u64 = batches.iter().map(|b| b.len() as u64).sum();
            let threads = morsel_threads(opts, batches.len().div_ceil(AGG_MORSEL_BLOCKS), rows);
            hash_aggregate(&batches, group_by, aggregates, &schema, threads)
        }
        LogicalPlan::Sort { input, keys } => {
            let batches = exec_node(input, catalog, stats, opts)?;
            let schema = plan.schema(catalog)?;
            sort_batches(&batches, keys, &schema)
        }
        LogicalPlan::Limit { input, n } => {
            let batches = exec_node(input, catalog, stats, opts)?;
            let mut out = Vec::new();
            let mut remaining = *n;
            for block in batches {
                if remaining == 0 {
                    break;
                }
                if block.len() <= remaining {
                    remaining -= block.len();
                    out.push(block);
                } else {
                    let indices: Vec<usize> = (0..remaining).collect();
                    out.push(Arc::new(block.take(&indices)));
                    remaining = 0;
                }
            }
            Ok(out)
        }
        LogicalPlan::UnionAll { inputs } => {
            let schema = plan.schema(catalog)?;
            let mut out = Vec::new();
            for child in inputs {
                for block in exec_node(child, catalog, stats, opts)? {
                    if block.schema().as_ref() == schema.as_ref() {
                        out.push(block);
                    } else {
                        // Same types, different names: rebind under the
                        // union's schema.
                        out.push(Arc::new(Block::from_columns(
                            Arc::clone(&schema),
                            block.columns().to_vec(),
                        )));
                    }
                }
            }
            Ok(out)
        }
    }
}

/// A `Scan→Filter…→Project` chain runnable as one fused per-morsel
/// pipeline: each worker scans a block, applies the predicates in order,
/// and projects, with no cross-operator materialization.
struct FusedScan<'a> {
    table: &'a str,
    /// Predicates in application (innermost-first) order.
    predicates: Vec<&'a Expr>,
    project: Option<&'a [(Expr, String)]>,
}

/// Recognizes a fusable chain: optional `Project` over zero or more
/// `Filter`s over a `Scan`, with at least one non-scan operator.
fn fuse(plan: &LogicalPlan) -> Option<FusedScan<'_>> {
    let (project, mut node) = match plan {
        LogicalPlan::Project { input, exprs } => (Some(exprs.as_slice()), input.as_ref()),
        _ => (None, plan),
    };
    let mut predicates = Vec::new();
    loop {
        match node {
            LogicalPlan::Filter { input, predicate } => {
                predicates.push(predicate);
                node = input.as_ref();
            }
            LogicalPlan::Scan { table } if project.is_some() || !predicates.is_empty() => {
                predicates.reverse();
                return Some(FusedScan {
                    table,
                    predicates,
                    project,
                });
            }
            _ => return None,
        }
    }
}

/// Runs a fused chain: one morsel per base-table block, scan accounting
/// accumulated per worker and merged.
fn exec_fused(
    fused: &FusedScan<'_>,
    out_schema: &Arc<Schema>,
    catalog: &Catalog,
    stats: &mut ExecStats,
    opts: &ExecOptions,
) -> Result<Vec<Arc<Block>>, EngineError> {
    let t = catalog.get(fused.table)?;
    let blocks = classify_blocks(&t, &fused.predicates, opts.zone_pruning);
    // Predicates compile to a typed selection-mask kernel when every
    // shape is modeled; otherwise the scalar mask path runs unchanged.
    let pred_kernel = if opts.kernels && !fused.predicates.is_empty() {
        PredKernel::compile(&fused.predicates, t.schema())
    } else {
        None
    };
    if !fused.predicates.is_empty() {
        record_dispatch(pred_kernel.is_some());
    }
    let rows: u64 = blocks.iter().map(|(b, _)| b.len() as u64).sum();
    let threads = morsel_threads(opts, blocks.len(), rows);
    // Pair the projection exprs with the output schema up front so the
    // morsel closure never has to re-derive that they exist together.
    let projection = fused.project.map(|exprs| (exprs, Arc::clone(out_schema)));
    // Morsel spans run on pool worker threads, so they parent under the
    // operator span through an explicit context rather than the worker's
    // (empty) thread-local current span.
    let op_ctx = aqp_obs::current_ctx();
    let pred_kernel = pred_kernel.as_ref();
    let (results, scan_stats) = pool::parallel_map_with_stats(
        blocks,
        threads,
        |_, (block, verdict), s| -> Result<Option<Arc<Block>>, EngineError> {
            if verdict == ScanVerdict::Pruned {
                s.blocks_pruned += 1;
                return Ok(None);
            }
            let mut morsel = aqp_obs::child_span("morsel:scan", op_ctx);
            s.blocks_scanned += 1;
            s.rows_scanned += block.len() as u64;
            let mut cur = block;
            if verdict == ScanVerdict::Evaluate {
                if let Some(kernel) = pred_kernel {
                    // One fused mask for the whole chain: rows where any
                    // predicate is FALSE or NULL drop, exactly as under
                    // one-predicate-at-a-time filtering.
                    let mask = kernel.selection_mask(&cur);
                    if mask.iter().all(|&keep| keep) {
                        // Block passes whole: keep the shared reference.
                    } else if mask.iter().any(|&keep| keep) {
                        cur = Arc::new(cur.filter(&mask));
                    } else {
                        return Ok(None);
                    }
                } else {
                    for pred in &fused.predicates {
                        let mask = eval_predicate_mask(pred, &cur)?;
                        if mask.iter().all(|&keep| keep) {
                            // Block passes whole: keep the shared reference.
                        } else if mask.iter().any(|&keep| keep) {
                            cur = Arc::new(cur.filter(&mask));
                        } else {
                            return Ok(None);
                        }
                    }
                }
            }
            if let Some((exprs, schema)) = &projection {
                let columns: Vec<Column> = exprs
                    .iter()
                    .map(|(e, _)| eval(e, &cur))
                    .collect::<Result<_, _>>()?;
                cur = Arc::new(Block::from_columns(Arc::clone(schema), columns));
            }
            morsel.set_rows(cur.len() as u64);
            Ok(Some(cur))
        },
    );
    *stats = stats.merge(&scan_stats);
    record_scan_counters(&scan_stats);
    let mut out = Vec::new();
    for r in results {
        if let Some(block) = r? {
            out.push(block);
        }
    }
    Ok(out)
}

/// Tries the fused filter→aggregate kernel path: the aggregation's input
/// is a bare scan or a project-free fused chain, and every predicate,
/// group key, and aggregate argument compiles to a typed kernel. Returns
/// `Ok(None)` to send the plan down the scalar path.
///
/// The kernel path always computes per-morsel partials and folds them
/// along the fixed pairwise [`tree_merge`] — even at `threads == 1` — so
/// a given plan's result is bit-for-bit identical at every thread count.
fn exec_fused_agg(
    input: &LogicalPlan,
    group_by: &[(Expr, String)],
    aggregates: &[crate::agg::AggExpr],
    out_schema: &Arc<Schema>,
    catalog: &Catalog,
    stats: &mut ExecStats,
    opts: &ExecOptions,
) -> Result<Option<Vec<Arc<Block>>>, EngineError> {
    if !opts.kernels {
        return Ok(None);
    }
    let (table, predicates) = match input {
        LogicalPlan::Scan { table } => (table.as_str(), Vec::new()),
        _ => match fuse(input) {
            Some(FusedScan {
                table,
                predicates,
                project: None,
            }) => (table, predicates),
            _ => return Ok(None),
        },
    };
    let t = catalog.get(table)?;
    let Some(kernel) = FusedAggKernel::compile(&predicates, group_by, aggregates, t.schema())
    else {
        return Ok(None);
    };
    record_dispatch(true);
    let blocks = classify_blocks(&t, &predicates, opts.zone_pruning);
    let rows: u64 = blocks.iter().map(|(b, _)| b.len() as u64).sum();
    // Morsel boundaries come from the full block list (pruned blocks keep
    // their slots and are skipped inside the morsel), so the partial
    // tree — and hence the result — is identical with pruning on or off.
    let morsels: Vec<Vec<(Arc<Block>, ScanVerdict)>> = blocks
        .chunks(AGG_MORSEL_BLOCKS)
        .map(|c| c.to_vec())
        .collect();
    let threads = morsel_threads(opts, morsels.len(), rows);
    // The scan side of the fusion gets its own operator span (nested
    // under the caller's `op:aggregate` span) so traces still show the
    // aggregate-over-scan shape the plan describes.
    let mut scan_span = aqp_obs::span("op:fused-scan");
    if scan_span.is_recording() {
        scan_span.set_detail(format!("{table} [kernel]"));
    }
    let op_ctx = aqp_obs::current_ctx();
    let kernel_ref = &kernel;
    let (partials, scan_stats) =
        pool::parallel_map_with_stats(morsels, threads, |_, morsel, s| -> KernelAcc {
            let mut span = aqp_obs::child_span("agg:partial", op_ctx);
            let mut acc = kernel_ref.new_acc(opts.agg_hint);
            let mut rows_in = 0u64;
            for (block, verdict) in &morsel {
                match verdict {
                    ScanVerdict::Pruned => s.blocks_pruned += 1,
                    v => {
                        s.blocks_scanned += 1;
                        s.rows_scanned += block.len() as u64;
                        rows_in +=
                            kernel_ref.accumulate(block, &mut acc, *v == ScanVerdict::Evaluate);
                    }
                }
            }
            span.set_rows(rows_in);
            acc
        });
    *stats = stats.merge(&scan_stats);
    record_scan_counters(&scan_stats);
    if scan_span.is_recording() {
        scan_span.set_rows(scan_stats.rows_scanned);
        scan_span.set_detail(format!(
            "{table} [kernel, {} blocks pruned]",
            scan_stats.blocks_pruned
        ));
    }
    scan_span.finish();
    let mut merge_span = aqp_obs::span("agg:merge");
    let acc = tree_merge(partials).unwrap_or_else(|| kernel.new_acc(None));
    // Deterministic output order matching the scalar path's key sort:
    // NULL key first, then keys ascending.
    let group_rows: Vec<(Option<i64>, Vec<AggState>)> = match acc {
        KernelAcc::Global(states) => vec![(None, states)],
        KernelAcc::Grouped(map) => {
            let (mut groups, null_group) = map.into_groups();
            groups.sort_unstable_by_key(|(k, _)| *k);
            let mut v = Vec::with_capacity(groups.len() + 1);
            if let Some(states) = null_group {
                v.push((None, states));
            }
            v.extend(groups.into_iter().map(|(k, s)| (Some(k), s)));
            v
        }
    };
    merge_span.set_rows(group_rows.len() as u64);
    merge_span.finish();
    let grouped = !group_by.is_empty();
    let mut out = Vec::new();
    let mut current = Block::with_capacity(Arc::clone(out_schema), OUTPUT_BLOCK_ROWS);
    let mut row: Vec<Value> = Vec::with_capacity(out_schema.len());
    for (key, states) in group_rows {
        row.clear();
        if grouped {
            row.push(key.map_or(Value::Null, Value::Int64));
        }
        row.extend(states.iter().map(AggState::finish));
        current.push_row(&row).map_err(EngineError::Storage)?;
        if current.len() == OUTPUT_BLOCK_ROWS {
            out.push(Arc::new(std::mem::replace(
                &mut current,
                Block::with_capacity(Arc::clone(out_schema), OUTPUT_BLOCK_ROWS),
            )));
        }
    }
    if !current.is_empty() {
        out.push(Arc::new(current));
    }
    Ok(Some(out))
}

/// Applies a predicate to a batch list on up to `threads` workers.
/// Blocks are independent morsels; output order is preserved by index.
fn filter_batches(
    batches: Vec<Arc<Block>>,
    predicate: &Expr,
    threads: usize,
) -> Result<Vec<Arc<Block>>, EngineError> {
    let op_ctx = aqp_obs::current_ctx();
    let results = pool::parallel_map(
        batches,
        threads,
        |_, block| -> Result<Option<Arc<Block>>, EngineError> {
            let mut morsel = aqp_obs::child_span("morsel:filter", op_ctx);
            let mask = eval_predicate_mask(predicate, &block)?;
            let kept = if mask.iter().all(|&b| b) {
                Some(block)
            } else if mask.iter().any(|&b| b) {
                Some(Arc::new(block.filter(&mask)))
            } else {
                None
            };
            morsel.set_rows(kept.as_ref().map_or(0, |b| b.len() as u64));
            Ok(kept)
        },
    );
    let mut out = Vec::new();
    for r in results {
        if let Some(kept) = r? {
            out.push(kept);
        }
    }
    Ok(out)
}

/// Evaluates projection expressions per block on up to `threads` workers.
fn project_batches(
    batches: Vec<Arc<Block>>,
    exprs: &[(Expr, String)],
    schema: &Arc<Schema>,
    threads: usize,
) -> Result<Vec<Arc<Block>>, EngineError> {
    let op_ctx = aqp_obs::current_ctx();
    let results = pool::parallel_map(
        batches,
        threads,
        |_, block| -> Result<Arc<Block>, EngineError> {
            let mut morsel = aqp_obs::child_span("morsel:project", op_ctx);
            morsel.set_rows(block.len() as u64);
            let columns: Vec<Column> = exprs
                .iter()
                .map(|(e, _)| eval(e, &block))
                .collect::<Result<_, _>>()?;
            Ok(Arc::new(Block::from_columns(Arc::clone(schema), columns)))
        },
    );
    results.into_iter().collect()
}

/// Builds a hash table over the right side, probes with the left.
/// With `threads > 1` both phases run two-phase: per-block partial build
/// tables and per-block probe match lists, merged in block order, so the
/// output is identical to the serial path's.
fn hash_join(
    left_batches: &[Arc<Block>],
    right_batches: &[Arc<Block>],
    left_key: &Expr,
    right_key: &Expr,
    schema: &Arc<Schema>,
    threads: usize,
) -> Result<Vec<Arc<Block>>, EngineError> {
    if threads <= 1 {
        return hash_join_serial(left_batches, right_batches, left_key, right_key, schema);
    }
    // Build phase: per-right-block partial tables, merged in block order so
    // each key's match list carries (bi, ri) in ascending order — the same
    // order the serial build produces.
    type Matches = HashMap<KeyAtom, Vec<(usize, usize)>>;
    let op_ctx = aqp_obs::current_ctx();
    let build_parts = pool::parallel_map(
        right_batches.to_vec(),
        threads,
        |bi, block| -> Result<Matches, EngineError> {
            let mut morsel = aqp_obs::child_span("join:build", op_ctx);
            morsel.set_rows(block.len() as u64);
            let keys = eval(right_key, &block)?;
            let mut part: Matches = HashMap::new();
            for ri in 0..block.len() {
                let k = keys.get(ri);
                if k.is_null() {
                    continue; // NULL keys never join
                }
                part.entry(KeyAtom::from_value(&k))
                    .or_default()
                    .push((bi, ri));
            }
            Ok(part)
        },
    );
    let mut table: Matches = HashMap::new();
    for part in build_parts {
        for (k, mut v) in part? {
            table.entry(k).or_default().append(&mut v);
        }
    }
    // Probe phase: per-left-block match triples.
    let table = &table;
    let probe_parts = pool::parallel_map(
        left_batches.to_vec(),
        threads,
        |_, block| -> Result<Vec<(usize, usize, usize)>, EngineError> {
            let mut morsel = aqp_obs::child_span("join:probe", op_ctx);
            let keys = eval(left_key, &block)?;
            let mut out = Vec::new();
            for li in 0..block.len() {
                let k = keys.get(li);
                if k.is_null() {
                    continue;
                }
                if let Some(matches) = table.get(&KeyAtom::from_value(&k)) {
                    for &(bi, ri) in matches {
                        out.push((li, bi, ri));
                    }
                }
            }
            morsel.set_rows(out.len() as u64);
            Ok(out)
        },
    );
    let mut joined: Vec<(usize, usize, usize, usize)> = Vec::new();
    for (lbi, part) in probe_parts.into_iter().enumerate() {
        for (li, bi, ri) in part? {
            joined.push((lbi, li, bi, ri));
        }
    }
    // Materialization: the global match list splits into independent
    // OUTPUT_BLOCK_ROWS-sized output morsels — the same blocking the
    // serial row-packing loop produces.
    let chunks: Vec<&[(usize, usize, usize, usize)]> = joined.chunks(OUTPUT_BLOCK_ROWS).collect();
    let blocks = pool::parallel_map(
        chunks,
        threads,
        |_, chunk| -> Result<Arc<Block>, EngineError> {
            let mut morsel = aqp_obs::child_span("join:materialize", op_ctx);
            morsel.set_rows(chunk.len() as u64);
            let mut block = Block::with_capacity(Arc::clone(schema), chunk.len());
            for &(lbi, li, bi, ri) in chunk {
                block.gather_concat_row(&left_batches[lbi], li, &right_batches[bi], ri);
            }
            Ok(Arc::new(block))
        },
    );
    blocks.into_iter().collect()
}

/// The legacy serial join: single build table, row-packing probe.
fn hash_join_serial(
    left_batches: &[Arc<Block>],
    right_batches: &[Arc<Block>],
    left_key: &Expr,
    right_key: &Expr,
    schema: &Arc<Schema>,
) -> Result<Vec<Arc<Block>>, EngineError> {
    // Build phase: key → (batch, row) list.
    let mut build_span = aqp_obs::span("join:build");
    let mut table: HashMap<KeyAtom, Vec<(usize, usize)>> = HashMap::new();
    for (bi, block) in right_batches.iter().enumerate() {
        let keys = eval(right_key, block)?;
        for ri in 0..block.len() {
            let k = keys.get(ri);
            if k.is_null() {
                continue; // NULL keys never join
            }
            table
                .entry(KeyAtom::from_value(&k))
                .or_default()
                .push((bi, ri));
        }
    }
    if build_span.is_recording() {
        build_span.set_rows(right_batches.iter().map(|b| b.len() as u64).sum());
    }
    build_span.finish();
    // Probe phase.
    let _probe_span = aqp_obs::span("join:probe");
    let mut out = Vec::new();
    let mut current = Block::with_capacity(Arc::clone(schema), OUTPUT_BLOCK_ROWS);
    for block in left_batches {
        let keys = eval(left_key, block)?;
        for li in 0..block.len() {
            let k = keys.get(li);
            if k.is_null() {
                continue;
            }
            let Some(matches) = table.get(&KeyAtom::from_value(&k)) else {
                continue;
            };
            for &(bi, ri) in matches {
                current.gather_concat_row(block, li, &right_batches[bi], ri);
                if current.len() == OUTPUT_BLOCK_ROWS {
                    out.push(Arc::new(std::mem::replace(
                        &mut current,
                        Block::with_capacity(Arc::clone(schema), OUTPUT_BLOCK_ROWS),
                    )));
                }
            }
        }
    }
    if !current.is_empty() {
        out.push(Arc::new(current));
    }
    Ok(out)
}

/// Hash aggregation; deterministic output order (groups sorted by key).
/// With `threads > 1` runs two-phase: per-block partial [`AggState`] maps
/// merged in block order via [`AggState::merge`].
fn hash_aggregate(
    batches: &[Arc<Block>],
    group_by: &[(Expr, String)],
    aggregates: &[crate::agg::AggExpr],
    schema: &Arc<Schema>,
    threads: usize,
) -> Result<Vec<Arc<Block>>, EngineError> {
    let mut groups: HashMap<Vec<KeyAtom>, Vec<AggState>> = if threads <= 1 {
        let mut build_span = aqp_obs::span("agg:partial");
        let mut groups = HashMap::new();
        for block in batches {
            accumulate_block(block, group_by, aggregates, &mut groups)?;
        }
        if build_span.is_recording() {
            build_span.set_rows(batches.iter().map(|b| b.len() as u64).sum());
        }
        groups
    } else {
        // Phase 1: per-morsel partials. Phase 2: fold in morsel order, so
        // each group's states merge along a fixed, scheduling-independent
        // reduction tree. Aggregation morsels span several blocks
        // (AGG_MORSEL_BLOCKS — a layout constant, never derived from the
        // thread count, or results would vary with it): a partial map
        // amortizes over the whole span, keeping the merge phase small
        // even when group cardinality approaches the block size.
        let morsels: Vec<Vec<Arc<Block>>> = batches
            .chunks(AGG_MORSEL_BLOCKS)
            .map(|c| c.to_vec())
            .collect();
        let op_ctx = aqp_obs::current_ctx();
        let partials = pool::parallel_map(
            morsels,
            threads,
            |_, span| -> Result<HashMap<Vec<KeyAtom>, Vec<AggState>>, EngineError> {
                let mut morsel = aqp_obs::child_span("agg:partial", op_ctx);
                if morsel.is_recording() {
                    morsel.set_rows(span.iter().map(|b| b.len() as u64).sum());
                }
                let mut part = HashMap::new();
                for block in &span {
                    accumulate_block(block, group_by, aggregates, &mut part)?;
                }
                Ok(part)
            },
        );
        let mut merge_span = aqp_obs::span("agg:merge");
        let mut groups: HashMap<Vec<KeyAtom>, Vec<AggState>> = HashMap::new();
        for part in partials {
            for (key, states) in part? {
                match groups.entry(key) {
                    Entry::Occupied(mut e) => {
                        for (dst, src) in e.get_mut().iter_mut().zip(states) {
                            dst.merge(src);
                        }
                    }
                    Entry::Vacant(v) => {
                        v.insert(states);
                    }
                }
            }
        }
        merge_span.set_rows(groups.len() as u64);
        merge_span.finish();
        groups
    };
    // SQL: a global aggregate over zero rows still yields one row.
    if groups.is_empty() && group_by.is_empty() {
        groups.insert(
            Vec::new(),
            aggregates.iter().map(|a| AggState::new(a.func)).collect(),
        );
    }
    // Deterministic ordering.
    let mut entries: Vec<(Vec<KeyAtom>, Vec<AggState>)> = groups.into_iter().collect();
    entries.sort_by(|a, b| cmp_keys(&a.0, &b.0));

    let mut out = Vec::new();
    let mut current = Block::with_capacity(Arc::clone(schema), OUTPUT_BLOCK_ROWS);
    let mut row: Vec<Value> = Vec::with_capacity(schema.len());
    for (key, states) in entries {
        row.clear();
        row.extend(key.iter().map(KeyAtom::to_value));
        row.extend(states.iter().map(AggState::finish));
        current.push_row(&row).map_err(EngineError::Storage)?;
        if current.len() == OUTPUT_BLOCK_ROWS {
            out.push(Arc::new(std::mem::replace(
                &mut current,
                Block::with_capacity(Arc::clone(schema), OUTPUT_BLOCK_ROWS),
            )));
        }
    }
    if !current.is_empty() {
        out.push(Arc::new(current));
    }
    Ok(out)
}

/// Folds one block's rows into a group map (the shared inner loop of both
/// the serial fold and the per-morsel partial phase).
fn accumulate_block(
    block: &Block,
    group_by: &[(Expr, String)],
    aggregates: &[crate::agg::AggExpr],
    groups: &mut HashMap<Vec<KeyAtom>, Vec<AggState>>,
) -> Result<(), EngineError> {
    let key_cols: Vec<Column> = group_by
        .iter()
        .map(|(e, _)| eval(e, block))
        .collect::<Result<_, _>>()?;
    let agg_cols: Vec<Column> = aggregates
        .iter()
        .map(|a| eval(&a.expr, block))
        .collect::<Result<_, _>>()?;
    for ri in 0..block.len() {
        let key: Vec<KeyAtom> = key_cols
            .iter()
            .map(|c| KeyAtom::from_value(&c.get(ri)))
            .collect();
        let states = groups
            .entry(key)
            .or_insert_with(|| aggregates.iter().map(|a| AggState::new(a.func)).collect());
        for (state, col) in states.iter_mut().zip(&agg_cols) {
            state.update(&col.get(ri));
        }
    }
    Ok(())
}

/// Total order over composite keys for deterministic group output:
/// NULL < Bool < Int/Float < Str, then by value.
fn cmp_keys(a: &[KeyAtom], b: &[KeyAtom]) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    for (x, y) in a.iter().zip(b) {
        let ord = cmp_atom(x, y);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    a.len().cmp(&b.len())
}

fn atom_rank(a: &KeyAtom) -> u8 {
    match a {
        KeyAtom::Null => 0,
        KeyAtom::Bool(_) => 1,
        KeyAtom::Int(_) | KeyAtom::FloatBits(_) => 2,
        KeyAtom::Str(_) => 3,
    }
}

fn atom_num(a: &KeyAtom) -> f64 {
    match a {
        KeyAtom::Int(i) => *i as f64,
        KeyAtom::FloatBits(b) => f64::from_bits(*b),
        _ => 0.0,
    }
}

fn cmp_atom(a: &KeyAtom, b: &KeyAtom) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    let (ra, rb) = (atom_rank(a), atom_rank(b));
    if ra != rb {
        return ra.cmp(&rb);
    }
    match (a, b) {
        (KeyAtom::Null, KeyAtom::Null) => Ordering::Equal,
        (KeyAtom::Bool(x), KeyAtom::Bool(y)) => x.cmp(y),
        (KeyAtom::Str(x), KeyAtom::Str(y)) => x.as_ref().cmp(y.as_ref()),
        _ => atom_num(a)
            .partial_cmp(&atom_num(b))
            .unwrap_or(Ordering::Equal),
    }
}

/// Sorts all rows by the given keys (NULLs last within each key).
fn sort_batches(
    batches: &[Arc<Block>],
    keys: &[SortKey],
    schema: &Arc<Schema>,
) -> Result<Vec<Arc<Block>>, EngineError> {
    // Concatenate into one block for a global sort.
    let total: usize = batches.iter().map(|b| b.len()).sum();
    let mut columns: Vec<Column> = schema
        .fields()
        .iter()
        .map(|f| Column::with_capacity(f.data_type, total))
        .collect();
    for b in batches {
        for (dst, src) in columns.iter_mut().zip(b.columns()) {
            dst.append(src);
        }
    }
    let block = Block::from_columns(Arc::clone(schema), columns);
    let key_indices: Vec<(usize, bool)> = keys
        .iter()
        .map(|k| Ok((schema.index_of(&k.column)?, k.desc)))
        .collect::<Result<_, aqp_storage::StorageError>>()?;
    let mut order: Vec<usize> = (0..block.len()).collect();
    order.sort_by(|&i, &j| {
        for &(ci, desc) in &key_indices {
            let col = block.column(ci);
            let (a, b) = (col.get(i), col.get(j));
            let ord = match (a.is_null(), b.is_null()) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => std::cmp::Ordering::Greater, // NULLs last
                (false, true) => std::cmp::Ordering::Less,
                (false, false) => a.sql_cmp(&b).unwrap_or(std::cmp::Ordering::Equal),
            };
            let ord = if desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(vec![Arc::new(block.take(&order))])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggExpr;
    use crate::plan::Query;
    use aqp_expr::{col, lit};
    use aqp_storage::{DataType, Field, TableBuilder};

    fn catalog() -> Catalog {
        let c = Catalog::new();
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("v", DataType::Float64),
            Field::new("tag", DataType::Str),
        ]);
        let mut b = TableBuilder::with_block_capacity("t", schema, 4);
        for i in 0..10i64 {
            b.push_row(&[
                Value::Int64(i),
                Value::Float64(i as f64),
                Value::str(if i % 2 == 0 { "even" } else { "odd" }),
            ])
            .unwrap();
        }
        c.register(b.finish()).unwrap();

        let schema2 = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("w", DataType::Float64),
        ]);
        let mut b = TableBuilder::with_block_capacity("u", schema2, 4);
        for i in 0..5i64 {
            b.push_row(&[Value::Int64(i), Value::Float64(i as f64 * 10.0)])
                .unwrap();
        }
        c.register(b.finish()).unwrap();
        c
    }

    #[test]
    fn scan_counts_stats() {
        let c = catalog();
        let r = execute(&Query::scan("t").build(), &c).unwrap();
        assert_eq!(r.num_rows(), 10);
        assert_eq!(r.stats().blocks_scanned, 3); // 4+4+2
        assert_eq!(r.stats().rows_scanned, 10);
        assert_eq!(r.stats().rows_output, 10);
    }

    #[test]
    fn filter_drops_rows() {
        let c = catalog();
        let r = execute(
            &Query::scan("t").filter(col("v").gt_eq(lit(5.0))).build(),
            &c,
        )
        .unwrap();
        assert_eq!(r.num_rows(), 5);
        assert_eq!(r.column_f64("v").unwrap(), vec![5.0, 6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn project_computes() {
        let c = catalog();
        let r = execute(
            &Query::scan("t")
                .project(vec![(col("v").mul(lit(2.0)), "v2".to_string())])
                .build(),
            &c,
        )
        .unwrap();
        assert_eq!(r.column_f64("v2").unwrap()[3], 6.0);
    }

    #[test]
    fn join_inner_equi() {
        let c = catalog();
        let r = execute(
            &Query::scan("t")
                .join(Query::scan("u"), col("id"), col("id"))
                .build(),
            &c,
        )
        .unwrap();
        // ids 0..5 match.
        assert_eq!(r.num_rows(), 5);
        let w: f64 = r.column_f64("w").unwrap().iter().sum();
        assert_eq!(w, 100.0); // 0+10+20+30+40
    }

    #[test]
    fn join_skips_null_keys() {
        let c = Catalog::new();
        let schema = Schema::new(vec![Field::nullable("k", DataType::Int64)]);
        let mut b = TableBuilder::new("n", schema);
        b.push_row(&[Value::Null]).unwrap();
        b.push_row(&[Value::Int64(1)]).unwrap();
        c.register(b.finish()).unwrap();
        let r = execute(
            &Query::scan("n")
                .join(Query::scan("n"), col("k"), col("k"))
                .build(),
            &c,
        )
        .unwrap();
        assert_eq!(r.num_rows(), 1); // only 1⋈1; NULL never joins
    }

    #[test]
    fn global_aggregate() {
        let c = catalog();
        let r = execute(
            &Query::scan("t")
                .aggregate(
                    vec![],
                    vec![
                        AggExpr::count_star("n"),
                        AggExpr::sum(col("v"), "s"),
                        AggExpr::avg(col("v"), "a"),
                        AggExpr::min(col("id"), "mn"),
                        AggExpr::max(col("id"), "mx"),
                    ],
                )
                .build(),
            &c,
        )
        .unwrap();
        assert_eq!(r.num_rows(), 1);
        let row = r.row(0);
        assert_eq!(row[0], Value::Int64(10));
        assert_eq!(row[1], Value::Float64(45.0));
        assert_eq!(row[2], Value::Float64(4.5));
        assert_eq!(row[3], Value::Int64(0));
        assert_eq!(row[4], Value::Int64(9));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let c = catalog();
        let r = execute(
            &Query::scan("t")
                .filter(col("v").gt(lit(1e9)))
                .aggregate(
                    vec![],
                    vec![AggExpr::count_star("n"), AggExpr::sum(col("v"), "s")],
                )
                .build(),
            &c,
        )
        .unwrap();
        assert_eq!(r.num_rows(), 1);
        assert_eq!(r.row(0)[0], Value::Int64(0));
        assert_eq!(r.row(0)[1], Value::Null);
    }

    #[test]
    fn group_by_deterministic_order() {
        let c = catalog();
        let r = execute(
            &Query::scan("t")
                .aggregate(
                    vec![(col("tag"), "tag".to_string())],
                    vec![AggExpr::count_star("n"), AggExpr::sum(col("v"), "s")],
                )
                .build(),
            &c,
        )
        .unwrap();
        assert_eq!(r.num_rows(), 2);
        // Sorted by key: "even" < "odd".
        assert_eq!(r.row(0)[0], Value::str("even"));
        assert_eq!(r.row(0)[1], Value::Int64(5));
        assert_eq!(r.row(0)[2], Value::Float64(20.0));
        assert_eq!(r.row(1)[0], Value::str("odd"));
        assert_eq!(r.row(1)[2], Value::Float64(25.0));
    }

    #[test]
    fn group_by_expression() {
        let c = catalog();
        let r = execute(
            &Query::scan("t")
                .aggregate(
                    vec![(col("id").modulo(lit(3i64)), "m".to_string())],
                    vec![AggExpr::count_star("n")],
                )
                .build(),
            &c,
        )
        .unwrap();
        assert_eq!(r.num_rows(), 3);
        assert_eq!(r.row(0)[0], Value::Int64(0)); // 0,3,6,9
        assert_eq!(r.row(0)[1], Value::Int64(4));
    }

    #[test]
    fn sort_asc_desc_nulls_last() {
        let c = Catalog::new();
        let schema = Schema::new(vec![Field::nullable("x", DataType::Int64)]);
        let mut b = TableBuilder::new("s", schema);
        for v in [
            Value::Int64(2),
            Value::Null,
            Value::Int64(1),
            Value::Int64(3),
        ] {
            b.push_row(&[v]).unwrap();
        }
        c.register(b.finish()).unwrap();
        let r = execute(&Query::scan("s").sort(vec![SortKey::asc("x")]).build(), &c).unwrap();
        assert_eq!(
            r.column_values("x").unwrap(),
            vec![
                Value::Int64(1),
                Value::Int64(2),
                Value::Int64(3),
                Value::Null
            ]
        );
        let r = execute(&Query::scan("s").sort(vec![SortKey::desc("x")]).build(), &c).unwrap();
        assert_eq!(r.column_values("x").unwrap()[0], Value::Null); // reversed: NULLs first under desc
    }

    #[test]
    fn limit_truncates() {
        let c = catalog();
        let r = execute(&Query::scan("t").limit(3).build(), &c).unwrap();
        assert_eq!(r.num_rows(), 3);
        let r = execute(&Query::scan("t").limit(100).build(), &c).unwrap();
        assert_eq!(r.num_rows(), 10);
        let r = execute(&Query::scan("t").limit(0).build(), &c).unwrap();
        assert_eq!(r.num_rows(), 0);
    }

    #[test]
    fn union_all_concatenates() {
        let c = catalog();
        let r = execute(&Query::scan("t").union_all(Query::scan("t")).build(), &c).unwrap();
        assert_eq!(r.num_rows(), 20);
        assert_eq!(r.stats().rows_scanned, 20);
    }

    #[test]
    fn count_distinct_through_engine() {
        let c = catalog();
        let r = execute(
            &Query::scan("t")
                .aggregate(vec![], vec![AggExpr::count_distinct(col("tag"), "d")])
                .build(),
            &c,
        )
        .unwrap();
        assert_eq!(r.scalar(), Value::Int64(2));
    }

    #[test]
    fn composite_pipeline() {
        // filter → join → group-by → sort → limit
        let c = catalog();
        let r = execute(
            &Query::scan("t")
                .filter(col("id").lt(lit(8i64)))
                .join(Query::scan("u"), col("id"), col("id"))
                .aggregate(
                    vec![(col("tag"), "tag".to_string())],
                    vec![AggExpr::sum(col("w"), "sw")],
                )
                .sort(vec![SortKey::desc("sw")])
                .limit(1)
                .build(),
            &c,
        )
        .unwrap();
        assert_eq!(r.num_rows(), 1);
        // even ids 0,2,4 → w 0+20+40 = 60; odd 1,3 → 10+30 = 40.
        assert_eq!(r.row(0)[0], Value::str("even"));
        assert_eq!(r.row(0)[1], Value::Float64(60.0));
    }
}

#[cfg(test)]
mod parallel_filter_tests {
    use super::*;
    use crate::agg::AggExpr;
    use crate::plan::Query;
    use aqp_expr::{col, lit};
    use aqp_storage::{DataType, Field, Schema, TableBuilder};

    /// A table big enough to trip the parallel path (many small blocks).
    fn wide_catalog() -> Catalog {
        let c = Catalog::new();
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("v", DataType::Float64),
        ]);
        let mut b = TableBuilder::with_block_capacity("w", schema, 64);
        for i in 0..20_000i64 {
            b.push_row(&[Value::Int64(i), Value::Float64((i % 100) as f64)])
                .unwrap();
        }
        c.register(b.finish()).unwrap();
        c
    }

    #[test]
    fn parallel_filter_matches_serial_semantics() {
        let c = wide_catalog();
        // > 64 blocks, so the parallel path runs; verify exact results.
        let r = execute(
            &Query::scan("w")
                .filter(col("v").lt(lit(10.0)))
                .aggregate(
                    vec![],
                    vec![AggExpr::count_star("n"), AggExpr::sum(col("id"), "s")],
                )
                .build(),
            &c,
        )
        .unwrap();
        // v < 10 ⇔ id % 100 < 10: exactly 2000 rows.
        assert_eq!(r.rows()[0][0], Value::Int64(2000));
        let expected: i64 = (0..20_000).filter(|i| i % 100 < 10).sum();
        assert_eq!(r.rows()[0][1], Value::Float64(expected as f64));
    }

    #[test]
    fn parallel_filter_preserves_order() {
        let c = wide_catalog();
        let r = execute(&Query::scan("w").filter(col("v").eq(lit(7.0))).build(), &c).unwrap();
        let ids = r.column_f64("id").unwrap();
        assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "output order scrambled"
        );
        assert_eq!(ids.len(), 200);
    }

    #[test]
    fn parallel_filter_propagates_errors() {
        let c = wide_catalog();
        // Predicate referencing a missing column must error, not panic.
        let r = execute(
            &Query::scan("w").filter(col("nope").gt(lit(0i64))).build(),
            &c,
        );
        assert!(r.is_err());
    }

    #[test]
    fn empty_result_from_parallel_filter() {
        let c = wide_catalog();
        let r = execute(&Query::scan("w").filter(col("v").gt(lit(1e9))).build(), &c).unwrap();
        assert_eq!(r.num_rows(), 0);
    }
}

#[cfg(test)]
mod morsel_parallel_tests {
    use super::*;
    use crate::agg::AggExpr;
    use crate::plan::Query;
    use aqp_expr::{col, lit};
    use aqp_storage::{DataType, Field, Schema, TableBuilder};

    /// Fact + dimension tables with enough blocks to exercise the pool.
    fn catalog() -> Catalog {
        let c = Catalog::new();
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Float64),
        ]);
        let mut b = TableBuilder::with_block_capacity("fact", schema, 64);
        for i in 0..12_000i64 {
            b.push_row(&[
                Value::Int64(i),
                Value::Int64(i % 37),
                Value::Float64((i % 251) as f64),
            ])
            .unwrap();
        }
        c.register(b.finish()).unwrap();

        let dim_schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("name", DataType::Str),
        ]);
        let mut b = TableBuilder::with_block_capacity("dim", dim_schema, 8);
        for k in 0..37i64 {
            b.push_row(&[Value::Int64(k), Value::str(format!("g{:02}", k % 5))])
                .unwrap();
        }
        c.register(b.finish()).unwrap();
        c
    }

    fn pipeline_plan() -> LogicalPlan {
        Query::scan("fact")
            .filter(col("v").lt(lit(200.0)))
            .join(Query::scan("dim"), col("k"), col("k"))
            .aggregate(
                vec![(col("name"), "name".to_string())],
                vec![
                    AggExpr::count_star("n"),
                    AggExpr::sum(col("v"), "s"),
                    AggExpr::avg(col("v"), "a"),
                    AggExpr::min(col("id"), "mn"),
                    AggExpr::max(col("id"), "mx"),
                    AggExpr::count_distinct(col("k"), "d"),
                ],
            )
            .build()
    }

    #[test]
    fn thread_counts_agree_on_composite_pipeline() {
        let c = catalog();
        let serial = execute_with(&pipeline_plan(), &c, ExecOptions::serial()).unwrap();
        for threads in [2, 4, 8] {
            let parallel =
                execute_with(&pipeline_plan(), &c, ExecOptions::with_threads(threads)).unwrap();
            assert_eq!(parallel.schema(), serial.schema());
            assert_eq!(parallel.rows(), serial.rows(), "threads={threads}");
            assert_eq!(parallel.stats(), serial.stats(), "threads={threads}");
        }
    }

    #[test]
    fn fused_pipeline_counts_scan_stats() {
        let c = catalog();
        let plan = Query::scan("fact")
            .filter(col("v").lt(lit(100.0)))
            .project(vec![(col("v").mul(lit(2.0)), "v2".to_string())])
            .build();
        let serial = execute_with(&plan, &c, ExecOptions::serial()).unwrap();
        let parallel = execute_with(&plan, &c, ExecOptions::with_threads(4)).unwrap();
        // Every base block is either scanned or zone-pruned exactly once,
        // in both modes. v = i % 251 with 64-row blocks, so plenty of
        // blocks sit entirely in [100, 250] and prune against v < 100.
        let s = serial.stats();
        assert_eq!(s.blocks_scanned + s.blocks_pruned, 188); // ceil(12000/64)
        assert!(s.blocks_pruned > 0, "zone maps should prune some blocks");
        assert_eq!(parallel.stats(), s);
        assert_eq!(parallel.rows(), serial.rows());
        // With pruning off, every block is scanned.
        let unpruned =
            execute_with(&plan, &c, ExecOptions::serial().with_zone_pruning(false)).unwrap();
        assert_eq!(unpruned.stats().blocks_scanned, 188);
        assert_eq!(unpruned.stats().blocks_pruned, 0);
        assert_eq!(unpruned.rows(), serial.rows());
    }

    #[test]
    fn fuse_recognizes_chains() {
        let scan_only = Query::scan("fact").build();
        assert!(fuse(&scan_only).is_none());
        let filtered = Query::scan("fact").filter(col("v").lt(lit(1.0))).build();
        let f = fuse(&filtered).expect("filter over scan fuses");
        assert_eq!(f.table, "fact");
        assert_eq!(f.predicates.len(), 1);
        assert!(f.project.is_none());
        let chain = Query::scan("fact")
            .filter(col("v").lt(lit(1.0)))
            .filter(col("id").gt(lit(0i64)))
            .project(vec![(col("id"), "id".to_string())])
            .build();
        let f = fuse(&chain).expect("project over filters over scan fuses");
        assert_eq!(f.predicates.len(), 2);
        assert!(f.project.is_some());
        let joined = Query::scan("fact")
            .join(Query::scan("dim"), col("k"), col("k"))
            .build();
        assert!(fuse(&joined).is_none());
    }

    #[test]
    fn join_blocking_identical_across_threads() {
        let c = catalog();
        let plan = Query::scan("fact")
            .join(Query::scan("dim"), col("k"), col("k"))
            .build();
        let serial = execute_with(&plan, &c, ExecOptions::serial()).unwrap();
        let parallel = execute_with(&plan, &c, ExecOptions::with_threads(4)).unwrap();
        // Same rows, same 4096-row output blocking.
        let serial_sizes: Vec<usize> = serial.batches().iter().map(|b| b.len()).collect();
        let parallel_sizes: Vec<usize> = parallel.batches().iter().map(|b| b.len()).collect();
        assert_eq!(parallel_sizes, serial_sizes);
        assert_eq!(parallel.rows(), serial.rows());
    }

    #[test]
    fn parallel_error_propagation_from_fused_chain() {
        let c = catalog();
        let plan = Query::scan("fact")
            .filter(col("missing").gt(lit(0i64)))
            .build();
        assert!(execute_with(&plan, &c, ExecOptions::with_threads(4)).is_err());
    }
}
