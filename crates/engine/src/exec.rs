//! Block-at-a-time physical execution.

use std::collections::HashMap;
use std::sync::Arc;

use aqp_expr::eval::{eval, eval_predicate_mask};
use aqp_expr::Expr;
use aqp_storage::{Block, Catalog, Column, Schema, Value};

use crate::agg::{AggState, KeyAtom};
use crate::error::EngineError;
use crate::plan::{LogicalPlan, SortKey};
use crate::result::{ExecStats, ResultSet};

/// Rows per output block produced by row-assembling operators (join, agg).
const OUTPUT_BLOCK_ROWS: usize = 4096;

/// Executes a logical plan against a catalog, materializing the result.
pub fn execute(plan: &LogicalPlan, catalog: &Catalog) -> Result<ResultSet, EngineError> {
    let schema = plan.schema(catalog)?;
    let mut stats = ExecStats::default();
    let batches = exec_node(plan, catalog, &mut stats)?;
    stats.rows_output = batches.iter().map(|b| b.len() as u64).sum();
    let batches = batches.iter().map(|b| (**b).clone()).collect();
    Ok(ResultSet::new(schema, batches, stats))
}

fn exec_node(
    plan: &LogicalPlan,
    catalog: &Catalog,
    stats: &mut ExecStats,
) -> Result<Vec<Arc<Block>>, EngineError> {
    match plan {
        LogicalPlan::Scan { table } => {
            let t = catalog.get(table)?;
            let mut out = Vec::with_capacity(t.block_count());
            for (_, block) in t.iter_blocks() {
                stats.blocks_scanned += 1;
                stats.rows_scanned += block.len() as u64;
                out.push(Arc::clone(block));
            }
            Ok(out)
        }
        LogicalPlan::Filter { input, predicate } => {
            let batches = exec_node(input, catalog, stats)?;
            filter_batches(batches, predicate)
        }
        LogicalPlan::Project { input, exprs } => {
            let batches = exec_node(input, catalog, stats)?;
            let schema = plan.schema(catalog)?;
            let mut out = Vec::with_capacity(batches.len());
            for block in batches {
                let columns: Vec<Column> = exprs
                    .iter()
                    .map(|(e, _)| eval(e, &block))
                    .collect::<Result<_, _>>()?;
                out.push(Arc::new(Block::from_columns(Arc::clone(&schema), columns)));
            }
            Ok(out)
        }
        LogicalPlan::Join {
            left,
            right,
            left_key,
            right_key,
        } => {
            let left_batches = exec_node(left, catalog, stats)?;
            let right_batches = exec_node(right, catalog, stats)?;
            let schema = plan.schema(catalog)?;
            hash_join(&left_batches, &right_batches, left_key, right_key, &schema)
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
        } => {
            let batches = exec_node(input, catalog, stats)?;
            let schema = plan.schema(catalog)?;
            hash_aggregate(&batches, group_by, aggregates, &schema)
        }
        LogicalPlan::Sort { input, keys } => {
            let batches = exec_node(input, catalog, stats)?;
            let schema = plan.schema(catalog)?;
            sort_batches(&batches, keys, &schema)
        }
        LogicalPlan::Limit { input, n } => {
            let batches = exec_node(input, catalog, stats)?;
            let mut out = Vec::new();
            let mut remaining = *n;
            for block in batches {
                if remaining == 0 {
                    break;
                }
                if block.len() <= remaining {
                    remaining -= block.len();
                    out.push(block);
                } else {
                    let indices: Vec<usize> = (0..remaining).collect();
                    out.push(Arc::new(block.take(&indices)));
                    remaining = 0;
                }
            }
            Ok(out)
        }
        LogicalPlan::UnionAll { inputs } => {
            let schema = plan.schema(catalog)?;
            let mut out = Vec::new();
            for child in inputs {
                for block in exec_node(child, catalog, stats)? {
                    if block.schema().as_ref() == schema.as_ref() {
                        out.push(block);
                    } else {
                        // Same types, different names: rebind under the
                        // union's schema.
                        out.push(Arc::new(Block::from_columns(
                            Arc::clone(&schema),
                            block.columns().to_vec(),
                        )));
                    }
                }
            }
            Ok(out)
        }
    }
}

/// Below this many blocks a filter runs serially; above it, blocks are
/// filtered on a crossbeam-scoped thread pool (predicate evaluation is
/// pure and blocks are independent, so order is preserved by index).
const PARALLEL_FILTER_THRESHOLD: usize = 64;

/// Applies a predicate to a batch list, in parallel for large inputs.
fn filter_batches(
    batches: Vec<Arc<Block>>,
    predicate: &Expr,
) -> Result<Vec<Arc<Block>>, EngineError> {
    let filter_one = |block: &Arc<Block>| -> Result<Option<Arc<Block>>, EngineError> {
        let mask = eval_predicate_mask(predicate, block)?;
        Ok(if mask.iter().all(|&b| b) {
            Some(Arc::clone(block))
        } else if mask.iter().any(|&b| b) {
            Some(Arc::new(block.filter(&mask)))
        } else {
            None
        })
    };
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(8);
    if batches.len() < PARALLEL_FILTER_THRESHOLD || threads < 2 {
        let mut out = Vec::with_capacity(batches.len());
        for block in &batches {
            if let Some(kept) = filter_one(block)? {
                out.push(kept);
            }
        }
        return Ok(out);
    }
    let mut results: Vec<Result<Option<Arc<Block>>, EngineError>> =
        Vec::with_capacity(batches.len());
    results.resize_with(batches.len(), || Ok(None));
    let chunk = batches.len().div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (in_chunk, out_chunk) in batches.chunks(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(move |_| {
                for (block, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = filter_one(block);
                }
            });
        }
    })
    .expect("filter worker panicked");
    let mut out = Vec::with_capacity(batches.len());
    for r in results {
        if let Some(kept) = r? {
            out.push(kept);
        }
    }
    Ok(out)
}

/// Builds a hash table over the right side, probes with the left.
fn hash_join(
    left_batches: &[Arc<Block>],
    right_batches: &[Arc<Block>],
    left_key: &Expr,
    right_key: &Expr,
    schema: &Arc<Schema>,
) -> Result<Vec<Arc<Block>>, EngineError> {
    // Build phase: key → (batch, row) list.
    let mut table: HashMap<KeyAtom, Vec<(usize, usize)>> = HashMap::new();
    for (bi, block) in right_batches.iter().enumerate() {
        let keys = eval(right_key, block)?;
        for ri in 0..block.len() {
            let k = keys.get(ri);
            if k.is_null() {
                continue; // NULL keys never join
            }
            table
                .entry(KeyAtom::from_value(&k))
                .or_default()
                .push((bi, ri));
        }
    }
    // Probe phase.
    let mut out = Vec::new();
    let mut current = Block::with_capacity(Arc::clone(schema), OUTPUT_BLOCK_ROWS);
    let mut row_buf: Vec<Value> = Vec::with_capacity(schema.len());
    for block in left_batches {
        let keys = eval(left_key, block)?;
        for li in 0..block.len() {
            let k = keys.get(li);
            if k.is_null() {
                continue;
            }
            let Some(matches) = table.get(&KeyAtom::from_value(&k)) else {
                continue;
            };
            for &(bi, ri) in matches {
                row_buf.clear();
                row_buf.extend(block.row(li));
                row_buf.extend(right_batches[bi].row(ri));
                current.push_row(&row_buf).map_err(EngineError::Storage)?;
                if current.len() == OUTPUT_BLOCK_ROWS {
                    out.push(Arc::new(std::mem::replace(
                        &mut current,
                        Block::with_capacity(Arc::clone(schema), OUTPUT_BLOCK_ROWS),
                    )));
                }
            }
        }
    }
    if !current.is_empty() {
        out.push(Arc::new(current));
    }
    Ok(out)
}

/// Hash aggregation; deterministic output order (groups sorted by key).
fn hash_aggregate(
    batches: &[Arc<Block>],
    group_by: &[(Expr, String)],
    aggregates: &[crate::agg::AggExpr],
    schema: &Arc<Schema>,
) -> Result<Vec<Arc<Block>>, EngineError> {
    let mut groups: HashMap<Vec<KeyAtom>, Vec<AggState>> = HashMap::new();
    for block in batches {
        let key_cols: Vec<Column> = group_by
            .iter()
            .map(|(e, _)| eval(e, block))
            .collect::<Result<_, _>>()?;
        let agg_cols: Vec<Column> = aggregates
            .iter()
            .map(|a| eval(&a.expr, block))
            .collect::<Result<_, _>>()?;
        for ri in 0..block.len() {
            let key: Vec<KeyAtom> = key_cols
                .iter()
                .map(|c| KeyAtom::from_value(&c.get(ri)))
                .collect();
            let states = groups
                .entry(key)
                .or_insert_with(|| aggregates.iter().map(|a| AggState::new(a.func)).collect());
            for (state, col) in states.iter_mut().zip(&agg_cols) {
                state.update(&col.get(ri));
            }
        }
    }
    // SQL: a global aggregate over zero rows still yields one row.
    if groups.is_empty() && group_by.is_empty() {
        groups.insert(
            Vec::new(),
            aggregates.iter().map(|a| AggState::new(a.func)).collect(),
        );
    }
    // Deterministic ordering.
    let mut entries: Vec<(Vec<KeyAtom>, Vec<AggState>)> = groups.into_iter().collect();
    entries.sort_by(|a, b| cmp_keys(&a.0, &b.0));

    let mut out = Vec::new();
    let mut current = Block::with_capacity(Arc::clone(schema), OUTPUT_BLOCK_ROWS);
    let mut row: Vec<Value> = Vec::with_capacity(schema.len());
    for (key, states) in entries {
        row.clear();
        row.extend(key.iter().map(KeyAtom::to_value));
        row.extend(states.iter().map(AggState::finish));
        current.push_row(&row).map_err(EngineError::Storage)?;
        if current.len() == OUTPUT_BLOCK_ROWS {
            out.push(Arc::new(std::mem::replace(
                &mut current,
                Block::with_capacity(Arc::clone(schema), OUTPUT_BLOCK_ROWS),
            )));
        }
    }
    if !current.is_empty() {
        out.push(Arc::new(current));
    }
    Ok(out)
}

/// Total order over composite keys for deterministic group output:
/// NULL < Bool < Int/Float < Str, then by value.
fn cmp_keys(a: &[KeyAtom], b: &[KeyAtom]) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    for (x, y) in a.iter().zip(b) {
        let ord = cmp_atom(x, y);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    a.len().cmp(&b.len())
}

fn atom_rank(a: &KeyAtom) -> u8 {
    match a {
        KeyAtom::Null => 0,
        KeyAtom::Bool(_) => 1,
        KeyAtom::Int(_) | KeyAtom::FloatBits(_) => 2,
        KeyAtom::Str(_) => 3,
    }
}

fn atom_num(a: &KeyAtom) -> f64 {
    match a {
        KeyAtom::Int(i) => *i as f64,
        KeyAtom::FloatBits(b) => f64::from_bits(*b),
        _ => 0.0,
    }
}

fn cmp_atom(a: &KeyAtom, b: &KeyAtom) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    let (ra, rb) = (atom_rank(a), atom_rank(b));
    if ra != rb {
        return ra.cmp(&rb);
    }
    match (a, b) {
        (KeyAtom::Null, KeyAtom::Null) => Ordering::Equal,
        (KeyAtom::Bool(x), KeyAtom::Bool(y)) => x.cmp(y),
        (KeyAtom::Str(x), KeyAtom::Str(y)) => x.as_ref().cmp(y.as_ref()),
        _ => atom_num(a)
            .partial_cmp(&atom_num(b))
            .unwrap_or(Ordering::Equal),
    }
}

/// Sorts all rows by the given keys (NULLs last within each key).
fn sort_batches(
    batches: &[Arc<Block>],
    keys: &[SortKey],
    schema: &Arc<Schema>,
) -> Result<Vec<Arc<Block>>, EngineError> {
    // Concatenate into one block for a global sort.
    let total: usize = batches.iter().map(|b| b.len()).sum();
    let mut columns: Vec<Column> = schema
        .fields()
        .iter()
        .map(|f| Column::with_capacity(f.data_type, total))
        .collect();
    for b in batches {
        for (dst, src) in columns.iter_mut().zip(b.columns()) {
            dst.append(src);
        }
    }
    let block = Block::from_columns(Arc::clone(schema), columns);
    let key_indices: Vec<(usize, bool)> = keys
        .iter()
        .map(|k| Ok((schema.index_of(&k.column)?, k.desc)))
        .collect::<Result<_, aqp_storage::StorageError>>()?;
    let mut order: Vec<usize> = (0..block.len()).collect();
    order.sort_by(|&i, &j| {
        for &(ci, desc) in &key_indices {
            let col = block.column(ci);
            let (a, b) = (col.get(i), col.get(j));
            let ord = match (a.is_null(), b.is_null()) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => std::cmp::Ordering::Greater, // NULLs last
                (false, true) => std::cmp::Ordering::Less,
                (false, false) => a.sql_cmp(&b).unwrap_or(std::cmp::Ordering::Equal),
            };
            let ord = if desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(vec![Arc::new(block.take(&order))])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggExpr;
    use crate::plan::Query;
    use aqp_expr::{col, lit};
    use aqp_storage::{DataType, Field, TableBuilder};

    fn catalog() -> Catalog {
        let c = Catalog::new();
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("v", DataType::Float64),
            Field::new("tag", DataType::Str),
        ]);
        let mut b = TableBuilder::with_block_capacity("t", schema, 4);
        for i in 0..10i64 {
            b.push_row(&[
                Value::Int64(i),
                Value::Float64(i as f64),
                Value::str(if i % 2 == 0 { "even" } else { "odd" }),
            ])
            .unwrap();
        }
        c.register(b.finish()).unwrap();

        let schema2 = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("w", DataType::Float64),
        ]);
        let mut b = TableBuilder::with_block_capacity("u", schema2, 4);
        for i in 0..5i64 {
            b.push_row(&[Value::Int64(i), Value::Float64(i as f64 * 10.0)])
                .unwrap();
        }
        c.register(b.finish()).unwrap();
        c
    }

    #[test]
    fn scan_counts_stats() {
        let c = catalog();
        let r = execute(&Query::scan("t").build(), &c).unwrap();
        assert_eq!(r.num_rows(), 10);
        assert_eq!(r.stats().blocks_scanned, 3); // 4+4+2
        assert_eq!(r.stats().rows_scanned, 10);
        assert_eq!(r.stats().rows_output, 10);
    }

    #[test]
    fn filter_drops_rows() {
        let c = catalog();
        let r = execute(
            &Query::scan("t").filter(col("v").gt_eq(lit(5.0))).build(),
            &c,
        )
        .unwrap();
        assert_eq!(r.num_rows(), 5);
        assert_eq!(r.column_f64("v").unwrap(), vec![5.0, 6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn project_computes() {
        let c = catalog();
        let r = execute(
            &Query::scan("t")
                .project(vec![(col("v").mul(lit(2.0)), "v2".to_string())])
                .build(),
            &c,
        )
        .unwrap();
        assert_eq!(r.column_f64("v2").unwrap()[3], 6.0);
    }

    #[test]
    fn join_inner_equi() {
        let c = catalog();
        let r = execute(
            &Query::scan("t")
                .join(Query::scan("u"), col("id"), col("id"))
                .build(),
            &c,
        )
        .unwrap();
        // ids 0..5 match.
        assert_eq!(r.num_rows(), 5);
        let w: f64 = r.column_f64("w").unwrap().iter().sum();
        assert_eq!(w, 100.0); // 0+10+20+30+40
    }

    #[test]
    fn join_skips_null_keys() {
        let c = Catalog::new();
        let schema = Schema::new(vec![Field::nullable("k", DataType::Int64)]);
        let mut b = TableBuilder::new("n", schema);
        b.push_row(&[Value::Null]).unwrap();
        b.push_row(&[Value::Int64(1)]).unwrap();
        c.register(b.finish()).unwrap();
        let r = execute(
            &Query::scan("n")
                .join(Query::scan("n"), col("k"), col("k"))
                .build(),
            &c,
        )
        .unwrap();
        assert_eq!(r.num_rows(), 1); // only 1⋈1; NULL never joins
    }

    #[test]
    fn global_aggregate() {
        let c = catalog();
        let r = execute(
            &Query::scan("t")
                .aggregate(
                    vec![],
                    vec![
                        AggExpr::count_star("n"),
                        AggExpr::sum(col("v"), "s"),
                        AggExpr::avg(col("v"), "a"),
                        AggExpr::min(col("id"), "mn"),
                        AggExpr::max(col("id"), "mx"),
                    ],
                )
                .build(),
            &c,
        )
        .unwrap();
        assert_eq!(r.num_rows(), 1);
        let row = r.row(0);
        assert_eq!(row[0], Value::Int64(10));
        assert_eq!(row[1], Value::Float64(45.0));
        assert_eq!(row[2], Value::Float64(4.5));
        assert_eq!(row[3], Value::Int64(0));
        assert_eq!(row[4], Value::Int64(9));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let c = catalog();
        let r = execute(
            &Query::scan("t")
                .filter(col("v").gt(lit(1e9)))
                .aggregate(
                    vec![],
                    vec![AggExpr::count_star("n"), AggExpr::sum(col("v"), "s")],
                )
                .build(),
            &c,
        )
        .unwrap();
        assert_eq!(r.num_rows(), 1);
        assert_eq!(r.row(0)[0], Value::Int64(0));
        assert_eq!(r.row(0)[1], Value::Null);
    }

    #[test]
    fn group_by_deterministic_order() {
        let c = catalog();
        let r = execute(
            &Query::scan("t")
                .aggregate(
                    vec![(col("tag"), "tag".to_string())],
                    vec![AggExpr::count_star("n"), AggExpr::sum(col("v"), "s")],
                )
                .build(),
            &c,
        )
        .unwrap();
        assert_eq!(r.num_rows(), 2);
        // Sorted by key: "even" < "odd".
        assert_eq!(r.row(0)[0], Value::str("even"));
        assert_eq!(r.row(0)[1], Value::Int64(5));
        assert_eq!(r.row(0)[2], Value::Float64(20.0));
        assert_eq!(r.row(1)[0], Value::str("odd"));
        assert_eq!(r.row(1)[2], Value::Float64(25.0));
    }

    #[test]
    fn group_by_expression() {
        let c = catalog();
        let r = execute(
            &Query::scan("t")
                .aggregate(
                    vec![(col("id").modulo(lit(3i64)), "m".to_string())],
                    vec![AggExpr::count_star("n")],
                )
                .build(),
            &c,
        )
        .unwrap();
        assert_eq!(r.num_rows(), 3);
        assert_eq!(r.row(0)[0], Value::Int64(0)); // 0,3,6,9
        assert_eq!(r.row(0)[1], Value::Int64(4));
    }

    #[test]
    fn sort_asc_desc_nulls_last() {
        let c = Catalog::new();
        let schema = Schema::new(vec![Field::nullable("x", DataType::Int64)]);
        let mut b = TableBuilder::new("s", schema);
        for v in [
            Value::Int64(2),
            Value::Null,
            Value::Int64(1),
            Value::Int64(3),
        ] {
            b.push_row(&[v]).unwrap();
        }
        c.register(b.finish()).unwrap();
        let r = execute(&Query::scan("s").sort(vec![SortKey::asc("x")]).build(), &c).unwrap();
        assert_eq!(
            r.column_values("x").unwrap(),
            vec![
                Value::Int64(1),
                Value::Int64(2),
                Value::Int64(3),
                Value::Null
            ]
        );
        let r = execute(&Query::scan("s").sort(vec![SortKey::desc("x")]).build(), &c).unwrap();
        assert_eq!(r.column_values("x").unwrap()[0], Value::Null); // reversed: NULLs first under desc
    }

    #[test]
    fn limit_truncates() {
        let c = catalog();
        let r = execute(&Query::scan("t").limit(3).build(), &c).unwrap();
        assert_eq!(r.num_rows(), 3);
        let r = execute(&Query::scan("t").limit(100).build(), &c).unwrap();
        assert_eq!(r.num_rows(), 10);
        let r = execute(&Query::scan("t").limit(0).build(), &c).unwrap();
        assert_eq!(r.num_rows(), 0);
    }

    #[test]
    fn union_all_concatenates() {
        let c = catalog();
        let r = execute(&Query::scan("t").union_all(Query::scan("t")).build(), &c).unwrap();
        assert_eq!(r.num_rows(), 20);
        assert_eq!(r.stats().rows_scanned, 20);
    }

    #[test]
    fn count_distinct_through_engine() {
        let c = catalog();
        let r = execute(
            &Query::scan("t")
                .aggregate(vec![], vec![AggExpr::count_distinct(col("tag"), "d")])
                .build(),
            &c,
        )
        .unwrap();
        assert_eq!(r.scalar(), Value::Int64(2));
    }

    #[test]
    fn composite_pipeline() {
        // filter → join → group-by → sort → limit
        let c = catalog();
        let r = execute(
            &Query::scan("t")
                .filter(col("id").lt(lit(8i64)))
                .join(Query::scan("u"), col("id"), col("id"))
                .aggregate(
                    vec![(col("tag"), "tag".to_string())],
                    vec![AggExpr::sum(col("w"), "sw")],
                )
                .sort(vec![SortKey::desc("sw")])
                .limit(1)
                .build(),
            &c,
        )
        .unwrap();
        assert_eq!(r.num_rows(), 1);
        // even ids 0,2,4 → w 0+20+40 = 60; odd 1,3 → 10+30 = 40.
        assert_eq!(r.row(0)[0], Value::str("even"));
        assert_eq!(r.row(0)[1], Value::Float64(60.0));
    }
}

#[cfg(test)]
mod parallel_filter_tests {
    use super::*;
    use crate::agg::AggExpr;
    use crate::plan::Query;
    use aqp_expr::{col, lit};
    use aqp_storage::{DataType, Field, Schema, TableBuilder};

    /// A table big enough to trip the parallel path (many small blocks).
    fn wide_catalog() -> Catalog {
        let c = Catalog::new();
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("v", DataType::Float64),
        ]);
        let mut b = TableBuilder::with_block_capacity("w", schema, 64);
        for i in 0..20_000i64 {
            b.push_row(&[Value::Int64(i), Value::Float64((i % 100) as f64)])
                .unwrap();
        }
        c.register(b.finish()).unwrap();
        c
    }

    #[test]
    fn parallel_filter_matches_serial_semantics() {
        let c = wide_catalog();
        // > 64 blocks, so the parallel path runs; verify exact results.
        let r = execute(
            &Query::scan("w")
                .filter(col("v").lt(lit(10.0)))
                .aggregate(
                    vec![],
                    vec![AggExpr::count_star("n"), AggExpr::sum(col("id"), "s")],
                )
                .build(),
            &c,
        )
        .unwrap();
        // v < 10 ⇔ id % 100 < 10: exactly 2000 rows.
        assert_eq!(r.rows()[0][0], Value::Int64(2000));
        let expected: i64 = (0..20_000).filter(|i| i % 100 < 10).sum();
        assert_eq!(r.rows()[0][1], Value::Float64(expected as f64));
    }

    #[test]
    fn parallel_filter_preserves_order() {
        let c = wide_catalog();
        let r = execute(&Query::scan("w").filter(col("v").eq(lit(7.0))).build(), &c).unwrap();
        let ids = r.column_f64("id").unwrap();
        assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "output order scrambled"
        );
        assert_eq!(ids.len(), 200);
    }

    #[test]
    fn parallel_filter_propagates_errors() {
        let c = wide_catalog();
        // Predicate referencing a missing column must error, not panic.
        let r = execute(
            &Query::scan("w").filter(col("nope").gt(lit(0i64))).build(),
            &c,
        );
        assert!(r.is_err());
    }

    #[test]
    fn empty_result_from_parallel_filter() {
        let c = wide_catalog();
        let r = execute(&Query::scan("w").filter(col("v").gt(lit(1e9))).build(), &c).unwrap();
        assert_eq!(r.num_rows(), 0);
    }
}
