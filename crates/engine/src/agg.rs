//! Aggregate functions, group keys, and hash-aggregation state.

use std::collections::HashSet;

use aqp_expr::Expr;
use aqp_stats::Moments;
use aqp_storage::{DataType, Schema, Value};

use crate::error::EngineError;

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` — counts rows.
    CountStar,
    /// `COUNT(expr)` — counts non-NULL values.
    Count,
    /// `SUM(expr)` (FLOAT64; NULL over an all-NULL input).
    Sum,
    /// `AVG(expr)` (FLOAT64; NULL over an all-NULL input).
    Avg,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// Exact `COUNT(DISTINCT expr)` — the expensive baseline the distinct
    /// sketches (E5) are compared against.
    CountDistinct,
    /// Unbiased sample variance `VAR_SAMP(expr)`.
    VarSamp,
}

impl AggFunc {
    /// Output type of the aggregate given its input type.
    pub fn output_type(&self, input: DataType) -> DataType {
        match self {
            AggFunc::CountStar | AggFunc::Count | AggFunc::CountDistinct => DataType::Int64,
            AggFunc::Sum | AggFunc::Avg | AggFunc::VarSamp => DataType::Float64,
            AggFunc::Min | AggFunc::Max => input,
        }
    }

    /// Whether the estimate of this aggregate from a uniform sample scales
    /// linearly with inclusion probabilities (SUM/COUNT do; MIN/MAX and
    /// COUNT DISTINCT do not). This is the line NSB draws between aggregates
    /// sampling can answer and those it cannot.
    pub fn is_linear(&self) -> bool {
        matches!(
            self,
            AggFunc::CountStar | AggFunc::Count | AggFunc::Sum | AggFunc::Avg
        )
    }
}

impl std::fmt::Display for AggFunc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AggFunc::CountStar => "COUNT(*)",
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::CountDistinct => "COUNT(DISTINCT)",
            AggFunc::VarSamp => "VAR_SAMP",
        };
        f.write_str(s)
    }
}

/// One aggregate in a query: a function, its argument, and an output alias.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// The aggregate function.
    pub func: AggFunc,
    /// The argument (ignored for `COUNT(*)`).
    pub expr: Expr,
    /// Output column name.
    pub alias: String,
}

impl AggExpr {
    /// Creates an aggregate expression.
    pub fn new(func: AggFunc, expr: Expr, alias: impl Into<String>) -> Self {
        Self {
            func,
            expr,
            alias: alias.into(),
        }
    }

    /// `COUNT(*) AS alias`.
    pub fn count_star(alias: impl Into<String>) -> Self {
        Self::new(AggFunc::CountStar, aqp_expr::lit(1i64), alias)
    }

    /// `SUM(expr) AS alias`.
    pub fn sum(expr: Expr, alias: impl Into<String>) -> Self {
        Self::new(AggFunc::Sum, expr, alias)
    }

    /// `AVG(expr) AS alias`.
    pub fn avg(expr: Expr, alias: impl Into<String>) -> Self {
        Self::new(AggFunc::Avg, expr, alias)
    }

    /// `MIN(expr) AS alias`.
    pub fn min(expr: Expr, alias: impl Into<String>) -> Self {
        Self::new(AggFunc::Min, expr, alias)
    }

    /// `MAX(expr) AS alias`.
    pub fn max(expr: Expr, alias: impl Into<String>) -> Self {
        Self::new(AggFunc::Max, expr, alias)
    }

    /// `COUNT(DISTINCT expr) AS alias`.
    pub fn count_distinct(expr: Expr, alias: impl Into<String>) -> Self {
        Self::new(AggFunc::CountDistinct, expr, alias)
    }

    /// Output type against an input schema.
    pub fn output_type(&self, schema: &Schema) -> Result<DataType, EngineError> {
        match self.func {
            AggFunc::CountStar => Ok(DataType::Int64),
            _ => Ok(self.func.output_type(self.expr.data_type(schema)?)),
        }
    }
}

/// A hashable, equatable canonical form of a [`Value`] for group-by keys,
/// join keys, and exact distinct counting.
///
/// Floats are canonicalized (integral floats fold onto integers, `-0.0`
/// onto `0.0`) so `GROUP BY` agrees with [`Value::sql_cmp`] equality.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KeyAtom {
    /// NULL (groups together in GROUP BY, per SQL).
    Null,
    /// Canonical integer.
    Int(i64),
    /// Non-integral float, by bit pattern.
    FloatBits(u64),
    /// String.
    Str(std::sync::Arc<str>),
    /// Boolean.
    Bool(bool),
}

impl KeyAtom {
    /// Canonicalizes a value.
    pub fn from_value(v: &Value) -> KeyAtom {
        match v {
            Value::Null => KeyAtom::Null,
            Value::Int64(i) => KeyAtom::Int(*i),
            Value::Float64(f) => {
                let f = if *f == 0.0 { 0.0 } else { *f }; // fold -0.0
                if f.fract() == 0.0 && f.abs() < 9.0e18 {
                    KeyAtom::Int(f as i64)
                } else if f.is_nan() {
                    KeyAtom::FloatBits(f64::NAN.to_bits())
                } else {
                    KeyAtom::FloatBits(f.to_bits())
                }
            }
            Value::Str(s) => KeyAtom::Str(std::sync::Arc::clone(s)),
            Value::Bool(b) => KeyAtom::Bool(*b),
        }
    }

    /// Whether the atom is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, KeyAtom::Null)
    }

    /// Back-conversion to a value (floats reconstructed from bits).
    pub fn to_value(&self) -> Value {
        match self {
            KeyAtom::Null => Value::Null,
            KeyAtom::Int(i) => Value::Int64(*i),
            KeyAtom::FloatBits(b) => Value::Float64(f64::from_bits(*b)),
            KeyAtom::Str(s) => Value::Str(std::sync::Arc::clone(s)),
            KeyAtom::Bool(b) => Value::Bool(*b),
        }
    }
}

/// A composite group key.
pub type GroupKey = Vec<KeyAtom>;

/// Running state for one aggregate within one group.
#[derive(Debug, Clone)]
pub enum AggState {
    /// Row counter.
    CountStar(u64),
    /// Non-NULL counter.
    Count(u64),
    /// Sum with a saw-any-value flag (SQL SUM of nothing is NULL).
    Sum {
        /// Accumulated sum.
        sum: f64,
        /// Whether any non-NULL input arrived.
        saw: bool,
    },
    /// Average accumulator.
    Avg {
        /// Accumulated sum.
        sum: f64,
        /// Count of non-NULL inputs.
        count: u64,
    },
    /// Minimum tracker.
    Min(Option<Value>),
    /// Maximum tracker.
    Max(Option<Value>),
    /// Exact distinct set.
    CountDistinct(HashSet<KeyAtom>),
    /// Variance accumulator.
    VarSamp(Moments),
}

impl AggState {
    /// Fresh state for a function.
    pub fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::CountStar => AggState::CountStar(0),
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum {
                sum: 0.0,
                saw: false,
            },
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::CountDistinct => AggState::CountDistinct(HashSet::new()),
            AggFunc::VarSamp => AggState::VarSamp(Moments::new()),
        }
    }

    /// Feeds one input value into the state.
    pub fn update(&mut self, value: &Value) {
        match self {
            AggState::CountStar(n) => *n += 1,
            AggState::Count(n) => {
                if !value.is_null() {
                    *n += 1;
                }
            }
            AggState::Sum { sum, saw } => {
                if let Some(x) = value.as_f64() {
                    *sum += x;
                    *saw = true;
                }
            }
            AggState::Avg { sum, count } => {
                if let Some(x) = value.as_f64() {
                    *sum += x;
                    *count += 1;
                }
            }
            AggState::Min(best) => {
                if !value.is_null() {
                    let better = match best {
                        None => true,
                        Some(b) => matches!(value.sql_cmp(b), Some(std::cmp::Ordering::Less)),
                    };
                    if better {
                        *best = Some(value.clone());
                    }
                }
            }
            AggState::Max(best) => {
                if !value.is_null() {
                    let better = match best {
                        None => true,
                        Some(b) => matches!(value.sql_cmp(b), Some(std::cmp::Ordering::Greater)),
                    };
                    if better {
                        *best = Some(value.clone());
                    }
                }
            }
            AggState::CountDistinct(set) => {
                if !value.is_null() {
                    set.insert(KeyAtom::from_value(value));
                }
            }
            AggState::VarSamp(m) => {
                if let Some(x) = value.as_f64() {
                    m.push(x);
                }
            }
        }
    }

    /// Absorbs another partial state for the same aggregate function
    /// (two-phase aggregation: thread-local partials, then a merge pass).
    ///
    /// `self` must be the *earlier* partial in morsel order: MIN/MAX keep
    /// `self`'s value on ties, exactly as the serial fold keeps the first
    /// occurrence, so merging partials in morsel order reproduces the
    /// serial result.
    ///
    /// # Panics
    /// Panics if the two states belong to different aggregate functions.
    pub fn merge(&mut self, other: AggState) {
        match (&mut *self, other) {
            (AggState::CountStar(a), AggState::CountStar(b)) => *a += b,
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (
                AggState::Sum { sum, saw },
                AggState::Sum {
                    sum: other_sum,
                    saw: other_saw,
                },
            ) => {
                *sum += other_sum;
                *saw |= other_saw;
            }
            (
                AggState::Avg { sum, count },
                AggState::Avg {
                    sum: other_sum,
                    count: other_count,
                },
            ) => {
                *sum += other_sum;
                *count += other_count;
            }
            // Strict-improvement comparisons, as in update(): ties keep the
            // earlier partial, matching the serial fold's first-wins rule.
            (AggState::Min(best), AggState::Min(other_best)) => {
                if let Some(v) = other_best {
                    let better = match best {
                        None => true,
                        Some(b) => matches!(v.sql_cmp(b), Some(std::cmp::Ordering::Less)),
                    };
                    if better {
                        *best = Some(v);
                    }
                }
            }
            (AggState::Max(best), AggState::Max(other_best)) => {
                if let Some(v) = other_best {
                    let better = match best {
                        None => true,
                        Some(b) => matches!(v.sql_cmp(b), Some(std::cmp::Ordering::Greater)),
                    };
                    if better {
                        *best = Some(v);
                    }
                }
            }
            (AggState::CountDistinct(set), AggState::CountDistinct(other_set)) => {
                set.extend(other_set);
            }
            (AggState::VarSamp(m), AggState::VarSamp(other_m)) => *m = m.merge(&other_m),
            (a, b) => panic!("cannot merge mismatched aggregate states {a:?} / {b:?}"),
        }
    }

    /// Finalizes the state to an output value.
    pub fn finish(&self) -> Value {
        match self {
            AggState::CountStar(n) | AggState::Count(n) => Value::Int64(*n as i64),
            AggState::Sum { sum, saw } => {
                if *saw {
                    Value::Float64(*sum)
                } else {
                    Value::Null
                }
            }
            AggState::Avg { sum, count } => {
                if *count > 0 {
                    Value::Float64(*sum / *count as f64)
                } else {
                    Value::Null
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.clone().unwrap_or(Value::Null),
            AggState::CountDistinct(set) => Value::Int64(set.len() as i64),
            AggState::VarSamp(m) => {
                let v = m.variance();
                if v.is_nan() {
                    Value::Null
                } else {
                    Value::Float64(v)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqp_expr::col;

    #[test]
    fn count_semantics() {
        let mut star = AggState::new(AggFunc::CountStar);
        let mut cnt = AggState::new(AggFunc::Count);
        for v in [Value::Int64(1), Value::Null, Value::Int64(3)] {
            star.update(&v);
            cnt.update(&v);
        }
        assert_eq!(star.finish(), Value::Int64(3));
        assert_eq!(cnt.finish(), Value::Int64(2));
    }

    #[test]
    fn sum_avg_null_handling() {
        let mut sum = AggState::new(AggFunc::Sum);
        let mut avg = AggState::new(AggFunc::Avg);
        assert_eq!(sum.finish(), Value::Null); // SUM of nothing is NULL
        assert_eq!(avg.finish(), Value::Null);
        for v in [Value::Float64(1.0), Value::Null, Value::Float64(3.0)] {
            sum.update(&v);
            avg.update(&v);
        }
        assert_eq!(sum.finish(), Value::Float64(4.0));
        assert_eq!(avg.finish(), Value::Float64(2.0)); // NULLs excluded
    }

    #[test]
    fn min_max_ignore_nulls() {
        let mut min = AggState::new(AggFunc::Min);
        let mut max = AggState::new(AggFunc::Max);
        for v in [
            Value::Null,
            Value::Int64(5),
            Value::Int64(2),
            Value::Int64(9),
        ] {
            min.update(&v);
            max.update(&v);
        }
        assert_eq!(min.finish(), Value::Int64(2));
        assert_eq!(max.finish(), Value::Int64(9));
    }

    #[test]
    fn count_distinct_exact() {
        let mut cd = AggState::new(AggFunc::CountDistinct);
        for v in [
            Value::Int64(1),
            Value::Int64(1),
            Value::Float64(1.0), // canonicalizes onto Int(1)
            Value::Int64(2),
            Value::Null,
        ] {
            cd.update(&v);
        }
        assert_eq!(cd.finish(), Value::Int64(2));
    }

    #[test]
    fn var_samp() {
        let mut v = AggState::new(AggFunc::VarSamp);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            v.update(&Value::Float64(x));
        }
        match v.finish() {
            Value::Float64(x) => assert!((x - 32.0 / 7.0).abs() < 1e-12),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(AggState::new(AggFunc::VarSamp).finish(), Value::Null);
    }

    #[test]
    fn merge_equals_serial_fold() {
        // For every function: split a stream in two, fold each half into a
        // partial, merge, and compare against the single serial fold.
        let values = [
            Value::Float64(3.0),
            Value::Null,
            Value::Int64(-2),
            Value::Float64(7.5),
            Value::Int64(5),
            Value::Float64(3.0),
        ];
        for func in [
            AggFunc::CountStar,
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::CountDistinct,
        ] {
            let mut serial = AggState::new(func);
            for v in &values {
                serial.update(v);
            }
            for split in 0..=values.len() {
                let mut left = AggState::new(func);
                let mut right = AggState::new(func);
                for v in &values[..split] {
                    left.update(v);
                }
                for v in &values[split..] {
                    right.update(v);
                }
                left.merge(right);
                assert_eq!(left.finish(), serial.finish(), "{func} split at {split}");
            }
        }
    }

    #[test]
    fn merge_var_samp_matches_serial_closely() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut serial = AggState::new(AggFunc::VarSamp);
        let mut left = AggState::new(AggFunc::VarSamp);
        let mut right = AggState::new(AggFunc::VarSamp);
        for (i, &x) in xs.iter().enumerate() {
            serial.update(&Value::Float64(x));
            if i < 3 {
                left.update(&Value::Float64(x));
            } else {
                right.update(&Value::Float64(x));
            }
        }
        left.merge(right);
        let (Value::Float64(a), Value::Float64(b)) = (left.finish(), serial.finish()) else {
            panic!("expected float variances");
        };
        assert!((a - b).abs() < 1e-12, "merged {a} vs serial {b}");
    }

    #[test]
    fn merge_empty_partial_is_identity() {
        let mut sum = AggState::new(AggFunc::Sum);
        sum.update(&Value::Float64(2.5));
        sum.merge(AggState::new(AggFunc::Sum));
        assert_eq!(sum.finish(), Value::Float64(2.5));
        let mut min = AggState::new(AggFunc::Min);
        min.merge(AggState::new(AggFunc::Min));
        assert_eq!(min.finish(), Value::Null);
    }

    #[test]
    #[should_panic(expected = "mismatched aggregate states")]
    fn merge_mismatched_states_panics() {
        let mut a = AggState::new(AggFunc::Sum);
        a.merge(AggState::new(AggFunc::Count));
    }

    #[test]
    fn key_atom_canonicalization() {
        assert_eq!(
            KeyAtom::from_value(&Value::Float64(3.0)),
            KeyAtom::from_value(&Value::Int64(3))
        );
        assert_eq!(
            KeyAtom::from_value(&Value::Float64(-0.0)),
            KeyAtom::from_value(&Value::Float64(0.0))
        );
        assert_ne!(
            KeyAtom::from_value(&Value::Float64(3.5)),
            KeyAtom::from_value(&Value::Int64(3))
        );
        assert!(KeyAtom::from_value(&Value::Null).is_null());
        // NaN folds onto a single atom.
        assert_eq!(
            KeyAtom::from_value(&Value::Float64(f64::NAN)),
            KeyAtom::from_value(&Value::Float64(-f64::NAN))
        );
    }

    #[test]
    fn key_atom_roundtrip() {
        for v in [
            Value::Null,
            Value::Int64(-5),
            Value::Float64(2.5),
            Value::str("k"),
            Value::Bool(true),
        ] {
            let atom = KeyAtom::from_value(&v);
            assert_eq!(atom.to_value(), v);
        }
    }

    #[test]
    fn linearity_classification() {
        assert!(AggFunc::Sum.is_linear());
        assert!(AggFunc::CountStar.is_linear());
        assert!(!AggFunc::Min.is_linear());
        assert!(!AggFunc::CountDistinct.is_linear());
    }

    #[test]
    fn agg_expr_builders_and_types() {
        let schema = Schema::new(vec![aqp_storage::Field::new("x", DataType::Int64)]);
        assert_eq!(
            AggExpr::count_star("c").output_type(&schema).unwrap(),
            DataType::Int64
        );
        assert_eq!(
            AggExpr::sum(col("x"), "s").output_type(&schema).unwrap(),
            DataType::Float64
        );
        assert_eq!(
            AggExpr::min(col("x"), "m").output_type(&schema).unwrap(),
            DataType::Int64
        );
        assert_eq!(
            AggExpr::count_distinct(col("x"), "d")
                .output_type(&schema)
                .unwrap(),
            DataType::Int64
        );
        assert_eq!(format!("{}", AggFunc::Avg), "AVG");
    }
}
