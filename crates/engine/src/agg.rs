//! Aggregate functions, group keys, and hash-aggregation state.

use std::collections::HashSet;

use aqp_expr::Expr;
use aqp_mergeable::{tag, wire, CodecError, MergeError, Partial};
use aqp_stats::Moments;
use aqp_storage::codec::{decode_value, encode_value};
use aqp_storage::{DataType, Schema, Value};
use bytes::{BufMut, Bytes, BytesMut};

use crate::error::EngineError;

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` — counts rows.
    CountStar,
    /// `COUNT(expr)` — counts non-NULL values.
    Count,
    /// `SUM(expr)` (FLOAT64; NULL over an all-NULL input).
    Sum,
    /// `AVG(expr)` (FLOAT64; NULL over an all-NULL input).
    Avg,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// Exact `COUNT(DISTINCT expr)` — the expensive baseline the distinct
    /// sketches (E5) are compared against.
    CountDistinct,
    /// Unbiased sample variance `VAR_SAMP(expr)`.
    VarSamp,
}

impl AggFunc {
    /// Output type of the aggregate given its input type.
    pub fn output_type(&self, input: DataType) -> DataType {
        match self {
            AggFunc::CountStar | AggFunc::Count | AggFunc::CountDistinct => DataType::Int64,
            AggFunc::Sum | AggFunc::Avg | AggFunc::VarSamp => DataType::Float64,
            AggFunc::Min | AggFunc::Max => input,
        }
    }

    /// Whether the estimate of this aggregate from a uniform sample scales
    /// linearly with inclusion probabilities (SUM/COUNT do; MIN/MAX and
    /// COUNT DISTINCT do not). This is the line NSB draws between aggregates
    /// sampling can answer and those it cannot.
    pub fn is_linear(&self) -> bool {
        matches!(
            self,
            AggFunc::CountStar | AggFunc::Count | AggFunc::Sum | AggFunc::Avg
        )
    }
}

impl std::fmt::Display for AggFunc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AggFunc::CountStar => "COUNT(*)",
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::CountDistinct => "COUNT(DISTINCT)",
            AggFunc::VarSamp => "VAR_SAMP",
        };
        f.write_str(s)
    }
}

/// One aggregate in a query: a function, its argument, and an output alias.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// The aggregate function.
    pub func: AggFunc,
    /// The argument (ignored for `COUNT(*)`).
    pub expr: Expr,
    /// Output column name.
    pub alias: String,
}

impl AggExpr {
    /// Creates an aggregate expression.
    pub fn new(func: AggFunc, expr: Expr, alias: impl Into<String>) -> Self {
        Self {
            func,
            expr,
            alias: alias.into(),
        }
    }

    /// `COUNT(*) AS alias`.
    pub fn count_star(alias: impl Into<String>) -> Self {
        Self::new(AggFunc::CountStar, aqp_expr::lit(1i64), alias)
    }

    /// `SUM(expr) AS alias`.
    pub fn sum(expr: Expr, alias: impl Into<String>) -> Self {
        Self::new(AggFunc::Sum, expr, alias)
    }

    /// `AVG(expr) AS alias`.
    pub fn avg(expr: Expr, alias: impl Into<String>) -> Self {
        Self::new(AggFunc::Avg, expr, alias)
    }

    /// `MIN(expr) AS alias`.
    pub fn min(expr: Expr, alias: impl Into<String>) -> Self {
        Self::new(AggFunc::Min, expr, alias)
    }

    /// `MAX(expr) AS alias`.
    pub fn max(expr: Expr, alias: impl Into<String>) -> Self {
        Self::new(AggFunc::Max, expr, alias)
    }

    /// `COUNT(DISTINCT expr) AS alias`.
    pub fn count_distinct(expr: Expr, alias: impl Into<String>) -> Self {
        Self::new(AggFunc::CountDistinct, expr, alias)
    }

    /// Output type against an input schema.
    pub fn output_type(&self, schema: &Schema) -> Result<DataType, EngineError> {
        match self.func {
            AggFunc::CountStar => Ok(DataType::Int64),
            _ => Ok(self.func.output_type(self.expr.data_type(schema)?)),
        }
    }
}

/// A hashable, equatable canonical form of a [`Value`] for group-by keys,
/// join keys, and exact distinct counting.
///
/// Floats are canonicalized (integral floats fold onto integers, `-0.0`
/// onto `0.0`) so `GROUP BY` agrees with [`Value::sql_cmp`] equality.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KeyAtom {
    /// NULL (groups together in GROUP BY, per SQL).
    Null,
    /// Canonical integer.
    Int(i64),
    /// Non-integral float, by bit pattern.
    FloatBits(u64),
    /// String.
    Str(std::sync::Arc<str>),
    /// Boolean.
    Bool(bool),
}

impl KeyAtom {
    /// Canonicalizes a value.
    pub fn from_value(v: &Value) -> KeyAtom {
        match v {
            Value::Null => KeyAtom::Null,
            Value::Int64(i) => KeyAtom::Int(*i),
            Value::Float64(f) => {
                let f = if *f == 0.0 { 0.0 } else { *f }; // fold -0.0
                if f.fract() == 0.0 && f.abs() < 9.0e18 {
                    KeyAtom::Int(f as i64)
                } else if f.is_nan() {
                    KeyAtom::FloatBits(f64::NAN.to_bits())
                } else {
                    KeyAtom::FloatBits(f.to_bits())
                }
            }
            Value::Str(s) => KeyAtom::Str(std::sync::Arc::clone(s)),
            Value::Bool(b) => KeyAtom::Bool(*b),
        }
    }

    /// Whether the atom is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, KeyAtom::Null)
    }

    /// Back-conversion to a value (floats reconstructed from bits).
    pub fn to_value(&self) -> Value {
        match self {
            KeyAtom::Null => Value::Null,
            KeyAtom::Int(i) => Value::Int64(*i),
            KeyAtom::FloatBits(b) => Value::Float64(f64::from_bits(*b)),
            KeyAtom::Str(s) => Value::Str(std::sync::Arc::clone(s)),
            KeyAtom::Bool(b) => Value::Bool(*b),
        }
    }
}

/// A composite group key.
pub type GroupKey = Vec<KeyAtom>;

/// Running state for one aggregate within one group.
#[derive(Debug, Clone)]
pub enum AggState {
    /// Row counter.
    CountStar(u64),
    /// Non-NULL counter.
    Count(u64),
    /// Sum with a saw-any-value flag (SQL SUM of nothing is NULL).
    Sum {
        /// Accumulated sum.
        sum: f64,
        /// Whether any non-NULL input arrived.
        saw: bool,
    },
    /// Average accumulator.
    Avg {
        /// Accumulated sum.
        sum: f64,
        /// Count of non-NULL inputs.
        count: u64,
    },
    /// Minimum tracker.
    Min(Option<Value>),
    /// Maximum tracker.
    Max(Option<Value>),
    /// Exact distinct set.
    CountDistinct(HashSet<KeyAtom>),
    /// Variance accumulator.
    VarSamp(Moments),
}

impl AggState {
    /// Fresh state for a function.
    pub fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::CountStar => AggState::CountStar(0),
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum {
                sum: 0.0,
                saw: false,
            },
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::CountDistinct => AggState::CountDistinct(HashSet::new()),
            AggFunc::VarSamp => AggState::VarSamp(Moments::new()),
        }
    }

    /// Feeds one input value into the state.
    pub fn update(&mut self, value: &Value) {
        match self {
            AggState::CountStar(n) => *n += 1,
            AggState::Count(n) => {
                if !value.is_null() {
                    *n += 1;
                }
            }
            AggState::Sum { sum, saw } => {
                if let Some(x) = value.as_f64() {
                    *sum += x;
                    *saw = true;
                }
            }
            AggState::Avg { sum, count } => {
                if let Some(x) = value.as_f64() {
                    *sum += x;
                    *count += 1;
                }
            }
            AggState::Min(best) => {
                if !value.is_null() {
                    let better = match best {
                        None => true,
                        Some(b) => matches!(value.sql_cmp(b), Some(std::cmp::Ordering::Less)),
                    };
                    if better {
                        *best = Some(value.clone());
                    }
                }
            }
            AggState::Max(best) => {
                if !value.is_null() {
                    let better = match best {
                        None => true,
                        Some(b) => matches!(value.sql_cmp(b), Some(std::cmp::Ordering::Greater)),
                    };
                    if better {
                        *best = Some(value.clone());
                    }
                }
            }
            AggState::CountDistinct(set) => {
                if !value.is_null() {
                    set.insert(KeyAtom::from_value(value));
                }
            }
            AggState::VarSamp(m) => {
                if let Some(x) = value.as_f64() {
                    m.push(x);
                }
            }
        }
    }

    /// Typed fast path for [`AggState::update`] with an `f64` input.
    /// Bitwise-identical to `update(&Value::Float64(x))` — the comparisons
    /// mirror [`Value::sql_cmp`]'s universal f64 coercion, including the
    /// first-NaN-sticks MIN/MAX quirk (NaN comparisons are never "better",
    /// but a NaN that arrives while the tracker is empty is kept).
    #[inline]
    pub fn update_f64(&mut self, x: f64) {
        match self {
            AggState::CountStar(n) | AggState::Count(n) => *n += 1,
            AggState::Sum { sum, saw } => {
                *sum += x;
                *saw = true;
            }
            AggState::Avg { sum, count } => {
                *sum += x;
                *count += 1;
            }
            AggState::Min(best) => {
                let better = match best {
                    None => true,
                    Some(b) => matches!(
                        b.as_f64().and_then(|bf| x.partial_cmp(&bf)),
                        Some(std::cmp::Ordering::Less)
                    ),
                };
                if better {
                    *best = Some(Value::Float64(x));
                }
            }
            AggState::Max(best) => {
                let better = match best {
                    None => true,
                    Some(b) => matches!(
                        b.as_f64().and_then(|bf| x.partial_cmp(&bf)),
                        Some(std::cmp::Ordering::Greater)
                    ),
                };
                if better {
                    *best = Some(Value::Float64(x));
                }
            }
            AggState::CountDistinct(set) => {
                set.insert(KeyAtom::from_value(&Value::Float64(x)));
            }
            AggState::VarSamp(m) => m.push(x),
        }
    }

    /// Typed fast path for [`AggState::update`] with an `i64` input.
    /// Bitwise-identical to `update(&Value::Int64(x))`: SUM/AVG/VAR see
    /// `x as f64` (the `as_f64` coercion), MIN/MAX compare in f64 but
    /// store the integer value, COUNT DISTINCT keys on `KeyAtom::Int`.
    #[inline]
    pub fn update_i64(&mut self, x: i64) {
        match self {
            AggState::CountStar(n) | AggState::Count(n) => *n += 1,
            AggState::Sum { sum, saw } => {
                *sum += x as f64;
                *saw = true;
            }
            AggState::Avg { sum, count } => {
                *sum += x as f64;
                *count += 1;
            }
            AggState::Min(best) => {
                let better = match best {
                    None => true,
                    Some(b) => matches!(
                        b.as_f64().and_then(|bf| (x as f64).partial_cmp(&bf)),
                        Some(std::cmp::Ordering::Less)
                    ),
                };
                if better {
                    *best = Some(Value::Int64(x));
                }
            }
            AggState::Max(best) => {
                let better = match best {
                    None => true,
                    Some(b) => matches!(
                        b.as_f64().and_then(|bf| (x as f64).partial_cmp(&bf)),
                        Some(std::cmp::Ordering::Greater)
                    ),
                };
                if better {
                    *best = Some(Value::Int64(x));
                }
            }
            AggState::CountDistinct(set) => {
                set.insert(KeyAtom::Int(x));
            }
            AggState::VarSamp(m) => m.push(x as f64),
        }
    }

    /// Typed fast path for a NULL input: only `COUNT(*)` advances.
    #[inline]
    pub fn update_null(&mut self) {
        if let AggState::CountStar(n) = self {
            *n += 1;
        }
    }

    /// Absorbs another partial state for the same aggregate function
    /// (two-phase aggregation: thread-local partials, then a merge pass).
    ///
    /// `self` must be the *earlier* partial in morsel order: MIN/MAX keep
    /// `self`'s value on ties, exactly as the serial fold keeps the first
    /// occurrence, so merging partials in morsel order reproduces the
    /// serial result.
    ///
    /// # Panics
    /// Panics if the two states belong to different aggregate functions.
    pub fn merge(&mut self, other: AggState) {
        match (&mut *self, other) {
            (AggState::CountStar(a), AggState::CountStar(b)) => *a += b,
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (
                AggState::Sum { sum, saw },
                AggState::Sum {
                    sum: other_sum,
                    saw: other_saw,
                },
            ) => {
                *sum += other_sum;
                *saw |= other_saw;
            }
            (
                AggState::Avg { sum, count },
                AggState::Avg {
                    sum: other_sum,
                    count: other_count,
                },
            ) => {
                *sum += other_sum;
                *count += other_count;
            }
            // Strict-improvement comparisons, as in update(): ties keep the
            // earlier partial, matching the serial fold's first-wins rule.
            (AggState::Min(best), AggState::Min(other_best)) => {
                if let Some(v) = other_best {
                    let better = match best {
                        None => true,
                        Some(b) => matches!(v.sql_cmp(b), Some(std::cmp::Ordering::Less)),
                    };
                    if better {
                        *best = Some(v);
                    }
                }
            }
            (AggState::Max(best), AggState::Max(other_best)) => {
                if let Some(v) = other_best {
                    let better = match best {
                        None => true,
                        Some(b) => matches!(v.sql_cmp(b), Some(std::cmp::Ordering::Greater)),
                    };
                    if better {
                        *best = Some(v);
                    }
                }
            }
            (AggState::CountDistinct(set), AggState::CountDistinct(other_set)) => {
                set.extend(other_set);
            }
            (AggState::VarSamp(m), AggState::VarSamp(other_m)) => {
                *m = Moments::merge(m, &other_m);
            }
            (a, b) => panic!("cannot merge mismatched aggregate states {a:?} / {b:?}"),
        }
    }

    /// Fallible variant of [`AggState::merge`] for the [`Partial`]
    /// contract: a function mismatch is a typed
    /// [`MergeError::Incompatible`] instead of a panic, and `self` is left
    /// unchanged on error. The panicking by-value `merge` remains the hot
    /// path inside the operators, where the planner guarantees alignment.
    pub fn try_merge(&mut self, other: &AggState) -> Result<(), MergeError> {
        if std::mem::discriminant(self) != std::mem::discriminant(other) {
            return Err(MergeError::Incompatible {
                kind: "agg-state",
                expected: self.state_name().to_string(),
                found: other.state_name().to_string(),
            });
        }
        self.merge(other.clone());
        Ok(())
    }

    fn state_name(&self) -> &'static str {
        match self {
            AggState::CountStar(_) => "COUNT(*)",
            AggState::Count(_) => "COUNT",
            AggState::Sum { .. } => "SUM",
            AggState::Avg { .. } => "AVG",
            AggState::Min(_) => "MIN",
            AggState::Max(_) => "MAX",
            AggState::CountDistinct(_) => "COUNT(DISTINCT)",
            AggState::VarSamp(_) => "VAR_SAMP",
        }
    }

    /// Finalizes the state to an output value.
    pub fn finish(&self) -> Value {
        match self {
            AggState::CountStar(n) | AggState::Count(n) => Value::Int64(*n as i64),
            AggState::Sum { sum, saw } => {
                if *saw {
                    Value::Float64(*sum)
                } else {
                    Value::Null
                }
            }
            AggState::Avg { sum, count } => {
                if *count > 0 {
                    Value::Float64(*sum / *count as f64)
                } else {
                    Value::Null
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.clone().unwrap_or(Value::Null),
            AggState::CountDistinct(set) => Value::Int64(set.len() as i64),
            AggState::VarSamp(m) => {
                let v = m.variance();
                if v.is_nan() {
                    Value::Null
                } else {
                    Value::Float64(v)
                }
            }
        }
    }
}

const STATE_COUNT_STAR: u8 = 0;
const STATE_COUNT: u8 = 1;
const STATE_SUM: u8 = 2;
const STATE_AVG: u8 = 3;
const STATE_MIN: u8 = 4;
const STATE_MAX: u8 = 5;
const STATE_COUNT_DISTINCT: u8 = 6;
const STATE_VAR_SAMP: u8 = 7;

/// Decoder cap: a distinct set larger than this is corrupt, not data.
const MAX_DISTINCT: usize = 1 << 28;

fn encode_opt_value(buf: &mut BytesMut, v: &Option<Value>) {
    match v {
        None => buf.put_u8(0),
        Some(v) => {
            buf.put_u8(1);
            encode_value(buf, v);
        }
    }
}

fn decode_opt_value(buf: &mut &[u8]) -> Result<Option<Value>, CodecError> {
    match wire::read_u8(buf)? {
        0 => Ok(None),
        1 => Ok(Some(decode_value(buf)?)),
        _ => Err(CodecError::BadDimensions),
    }
}

/// Aggregate partials ship between shards as a variant byte plus the
/// variant's accumulator fields; MIN/MAX carry their candidate through the
/// scalar value codec and VAR_SAMP embeds the [`Moments`] partial's own
/// length-prefixed wire form.
impl Partial for AggState {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        self.try_merge(other)
    }

    fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(32);
        wire::write_header(&mut buf, tag::AGG_STATE);
        match self {
            AggState::CountStar(n) => {
                buf.put_u8(STATE_COUNT_STAR);
                buf.put_u64(*n);
            }
            AggState::Count(n) => {
                buf.put_u8(STATE_COUNT);
                buf.put_u64(*n);
            }
            AggState::Sum { sum, saw } => {
                buf.put_u8(STATE_SUM);
                wire::write_f64(&mut buf, *sum);
                buf.put_u8(u8::from(*saw));
            }
            AggState::Avg { sum, count } => {
                buf.put_u8(STATE_AVG);
                wire::write_f64(&mut buf, *sum);
                buf.put_u64(*count);
            }
            AggState::Min(best) => {
                buf.put_u8(STATE_MIN);
                encode_opt_value(&mut buf, best);
            }
            AggState::Max(best) => {
                buf.put_u8(STATE_MAX);
                encode_opt_value(&mut buf, best);
            }
            AggState::CountDistinct(set) => {
                buf.put_u8(STATE_COUNT_DISTINCT);
                buf.put_u32(set.len() as u32);
                for atom in set {
                    encode_value(&mut buf, &atom.to_value());
                }
            }
            AggState::VarSamp(m) => {
                buf.put_u8(STATE_VAR_SAMP);
                let inner = Partial::to_bytes(m);
                buf.put_u32(inner.len() as u32);
                buf.put_slice(&inner);
            }
        }
        buf.freeze()
    }

    fn from_bytes(mut buf: &[u8]) -> Result<Self, CodecError> {
        let buf = &mut buf;
        wire::read_header(buf, tag::AGG_STATE)?;
        match wire::read_u8(buf)? {
            STATE_COUNT_STAR => Ok(AggState::CountStar(wire::read_u64(buf)?)),
            STATE_COUNT => Ok(AggState::Count(wire::read_u64(buf)?)),
            STATE_SUM => Ok(AggState::Sum {
                sum: wire::read_f64(buf)?,
                saw: wire::read_u8(buf)? != 0,
            }),
            STATE_AVG => Ok(AggState::Avg {
                sum: wire::read_f64(buf)?,
                count: wire::read_u64(buf)?,
            }),
            STATE_MIN => Ok(AggState::Min(decode_opt_value(buf)?)),
            STATE_MAX => Ok(AggState::Max(decode_opt_value(buf)?)),
            STATE_COUNT_DISTINCT => {
                let n = wire::read_u32(buf)? as usize;
                if n > MAX_DISTINCT {
                    return Err(CodecError::BadDimensions);
                }
                let mut set = HashSet::with_capacity(n.min(4096));
                for _ in 0..n {
                    set.insert(KeyAtom::from_value(&decode_value(buf)?));
                }
                Ok(AggState::CountDistinct(set))
            }
            STATE_VAR_SAMP => {
                let len = wire::read_u32(buf)? as usize;
                wire::need(buf, len)?;
                let m = Moments::from_bytes(&buf[..len])?;
                *buf = &buf[len..];
                Ok(AggState::VarSamp(m))
            }
            _ => Err(CodecError::BadDimensions),
        }
    }
}

/// Fibonacci multiplier for spreading i64 group keys across the table.
const FIB_HASH: u64 = 0x9E37_79B9_7F4A_7C15;

/// One dense group: its `i64` key and per-aggregate states.
pub type GroupStates = (i64, Vec<AggState>);

/// An open-addressing hash map specialized for single-`i64` group keys,
/// the shape the fused aggregation kernel handles (`GROUP BY int_col` and
/// `GROUP BY int_col % k`). Groups live in a dense `Vec` in first-seen
/// order — the property the tree merge relies on to stay deterministic —
/// and the table stores 1-based indices into it (0 = empty slot).
///
/// NULL keys get a dedicated side slot rather than a sentinel, so the
/// full `i64` domain remains usable as keys.
#[derive(Debug)]
pub struct I64GroupMap {
    /// Probe table of `group_index + 1` entries; 0 marks an empty slot.
    table: Vec<u32>,
    /// Dense groups in first-seen order.
    groups: Vec<GroupStates>,
    null_group: Option<Vec<AggState>>,
    funcs: Vec<AggFunc>,
}

impl I64GroupMap {
    /// Creates a map for the given aggregate functions, pre-sizing the
    /// probe table for `capacity_hint` expected groups (the static
    /// analyzer's cardinality hint) so the hot loop never rehashes.
    pub fn new(funcs: Vec<AggFunc>, capacity_hint: usize) -> Self {
        let cap = (capacity_hint.clamp(8, 1 << 24) * 2).next_power_of_two();
        Self {
            table: vec![0; cap],
            groups: Vec::new(),
            null_group: None,
            funcs,
        }
    }

    fn fresh_states(&self) -> Vec<AggState> {
        self.funcs.iter().map(|f| AggState::new(*f)).collect()
    }

    #[inline]
    fn home_slot(key: i64, mask: usize) -> usize {
        (((key as u64).wrapping_mul(FIB_HASH)) >> 32) as usize & mask
    }

    fn find_or_insert(&mut self, key: i64) -> usize {
        // Keep load factor under 3/4 so linear probes stay short.
        if (self.groups.len() + 1) * 4 > self.table.len() * 3 {
            self.grow();
        }
        let mask = self.table.len() - 1;
        let mut i = Self::home_slot(key, mask);
        loop {
            match self.table[i] {
                0 => {
                    self.table[i] =
                        u32::try_from(self.groups.len() + 1).expect("more than u32::MAX-1 groups");
                    let states = self.fresh_states();
                    self.groups.push((key, states));
                    return self.groups.len() - 1;
                }
                e => {
                    let gi = (e - 1) as usize;
                    if self.groups[gi].0 == key {
                        return gi;
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = self.table.len() * 2;
        let mask = new_cap - 1;
        let mut table = vec![0u32; new_cap];
        for (gi, (key, _)) in self.groups.iter().enumerate() {
            let mut i = Self::home_slot(*key, mask);
            while table[i] != 0 {
                i = (i + 1) & mask;
            }
            table[i] = u32::try_from(gi + 1).expect("more than u32::MAX-1 groups");
        }
        self.table = table;
    }

    /// The aggregate states for `key`, creating the group on first sight.
    #[inline]
    pub fn slot(&mut self, key: i64) -> &mut [AggState] {
        let gi = self.find_or_insert(key);
        &mut self.groups[gi].1
    }

    /// The aggregate states for the NULL key.
    pub fn null_slot(&mut self) -> &mut [AggState] {
        if self.null_group.is_none() {
            self.null_group = Some(self.fresh_states());
        }
        self.null_group.as_mut().expect("just initialized")
    }

    /// Number of non-NULL groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether the map holds no groups at all (NULL group included).
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty() && self.null_group.is_none()
    }

    /// Absorbs `other`'s partials. `self` must cover the *earlier* morsels:
    /// per group, states merge via [`AggState::merge`] with `self` on the
    /// left, so float summation order — and therefore the bits of the
    /// result — is fixed by morsel order, not thread schedule. `other`'s
    /// first-seen group order is preserved for groups new to `self`.
    pub fn merge_from(&mut self, other: I64GroupMap) {
        for (key, states) in other.groups {
            let slot = self.slot(key);
            for (a, b) in slot.iter_mut().zip(states) {
                a.merge(b);
            }
        }
        if let Some(states) = other.null_group {
            let slot = self.null_slot();
            for (a, b) in slot.iter_mut().zip(states) {
                a.merge(b);
            }
        }
    }

    /// Consumes the map, yielding dense groups in first-seen order plus
    /// the NULL group, if any.
    pub fn into_groups(self) -> (Vec<GroupStates>, Option<Vec<AggState>>) {
        (self.groups, self.null_group)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqp_expr::col;

    #[test]
    fn count_semantics() {
        let mut star = AggState::new(AggFunc::CountStar);
        let mut cnt = AggState::new(AggFunc::Count);
        for v in [Value::Int64(1), Value::Null, Value::Int64(3)] {
            star.update(&v);
            cnt.update(&v);
        }
        assert_eq!(star.finish(), Value::Int64(3));
        assert_eq!(cnt.finish(), Value::Int64(2));
    }

    #[test]
    fn sum_avg_null_handling() {
        let mut sum = AggState::new(AggFunc::Sum);
        let mut avg = AggState::new(AggFunc::Avg);
        assert_eq!(sum.finish(), Value::Null); // SUM of nothing is NULL
        assert_eq!(avg.finish(), Value::Null);
        for v in [Value::Float64(1.0), Value::Null, Value::Float64(3.0)] {
            sum.update(&v);
            avg.update(&v);
        }
        assert_eq!(sum.finish(), Value::Float64(4.0));
        assert_eq!(avg.finish(), Value::Float64(2.0)); // NULLs excluded
    }

    #[test]
    fn min_max_ignore_nulls() {
        let mut min = AggState::new(AggFunc::Min);
        let mut max = AggState::new(AggFunc::Max);
        for v in [
            Value::Null,
            Value::Int64(5),
            Value::Int64(2),
            Value::Int64(9),
        ] {
            min.update(&v);
            max.update(&v);
        }
        assert_eq!(min.finish(), Value::Int64(2));
        assert_eq!(max.finish(), Value::Int64(9));
    }

    #[test]
    fn count_distinct_exact() {
        let mut cd = AggState::new(AggFunc::CountDistinct);
        for v in [
            Value::Int64(1),
            Value::Int64(1),
            Value::Float64(1.0), // canonicalizes onto Int(1)
            Value::Int64(2),
            Value::Null,
        ] {
            cd.update(&v);
        }
        assert_eq!(cd.finish(), Value::Int64(2));
    }

    #[test]
    fn var_samp() {
        let mut v = AggState::new(AggFunc::VarSamp);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            v.update(&Value::Float64(x));
        }
        match v.finish() {
            Value::Float64(x) => assert!((x - 32.0 / 7.0).abs() < 1e-12),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(AggState::new(AggFunc::VarSamp).finish(), Value::Null);
    }

    #[test]
    fn merge_equals_serial_fold() {
        // For every function: split a stream in two, fold each half into a
        // partial, merge, and compare against the single serial fold.
        let values = [
            Value::Float64(3.0),
            Value::Null,
            Value::Int64(-2),
            Value::Float64(7.5),
            Value::Int64(5),
            Value::Float64(3.0),
        ];
        for func in [
            AggFunc::CountStar,
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::CountDistinct,
        ] {
            let mut serial = AggState::new(func);
            for v in &values {
                serial.update(v);
            }
            for split in 0..=values.len() {
                let mut left = AggState::new(func);
                let mut right = AggState::new(func);
                for v in &values[..split] {
                    left.update(v);
                }
                for v in &values[split..] {
                    right.update(v);
                }
                left.merge(right);
                assert_eq!(left.finish(), serial.finish(), "{func} split at {split}");
            }
        }
    }

    #[test]
    fn merge_var_samp_matches_serial_closely() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut serial = AggState::new(AggFunc::VarSamp);
        let mut left = AggState::new(AggFunc::VarSamp);
        let mut right = AggState::new(AggFunc::VarSamp);
        for (i, &x) in xs.iter().enumerate() {
            serial.update(&Value::Float64(x));
            if i < 3 {
                left.update(&Value::Float64(x));
            } else {
                right.update(&Value::Float64(x));
            }
        }
        left.merge(right);
        let (Value::Float64(a), Value::Float64(b)) = (left.finish(), serial.finish()) else {
            panic!("expected float variances");
        };
        assert!((a - b).abs() < 1e-12, "merged {a} vs serial {b}");
    }

    #[test]
    fn merge_empty_partial_is_identity() {
        let mut sum = AggState::new(AggFunc::Sum);
        sum.update(&Value::Float64(2.5));
        sum.merge(AggState::new(AggFunc::Sum));
        assert_eq!(sum.finish(), Value::Float64(2.5));
        let mut min = AggState::new(AggFunc::Min);
        min.merge(AggState::new(AggFunc::Min));
        assert_eq!(min.finish(), Value::Null);
    }

    #[test]
    #[should_panic(expected = "mismatched aggregate states")]
    fn merge_mismatched_states_panics() {
        let mut a = AggState::new(AggFunc::Sum);
        a.merge(AggState::new(AggFunc::Count));
    }

    #[test]
    fn try_merge_rejects_mismatch_without_panicking() {
        let mut a = AggState::new(AggFunc::Sum);
        a.update_f64(2.5);
        let err = a.try_merge(&AggState::new(AggFunc::Count)).unwrap_err();
        assert!(matches!(
            err,
            MergeError::Incompatible {
                kind: "agg-state",
                ..
            }
        ));
        assert_eq!(a.finish(), Value::Float64(2.5), "self unchanged on error");

        let mut b = AggState::new(AggFunc::Sum);
        b.update_f64(1.5);
        a.try_merge(&b).unwrap();
        assert_eq!(a.finish(), Value::Float64(4.0));
    }

    #[test]
    fn agg_state_partial_roundtrips_every_variant() {
        let values = [
            Value::Float64(3.0),
            Value::Null,
            Value::Int64(-2),
            Value::str("zeta"),
            Value::Bool(true),
            Value::Float64(7.5),
        ];
        for func in [
            AggFunc::CountStar,
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::CountDistinct,
            AggFunc::VarSamp,
        ] {
            for feed in [0, values.len()] {
                let mut state = AggState::new(func);
                for v in &values[..feed] {
                    state.update(v);
                }
                let bytes = Partial::to_bytes(&state);
                let back = AggState::from_bytes(&bytes).unwrap();
                assert_eq!(
                    format!("{:?}", back.finish()),
                    format!("{:?}", state.finish()),
                    "{func} fed {feed}"
                );
                // Decoded partials keep merging.
                let mut merged = back;
                Partial::merge(&mut merged, &state).unwrap();
                // And corruption is an error, never a panic.
                for cut in 0..bytes.len() {
                    assert!(
                        AggState::from_bytes(&bytes[..cut]).is_err(),
                        "{func} cut {cut}"
                    );
                }
            }
        }
        let mut wrong = Partial::to_bytes(&AggState::new(AggFunc::Sum)).to_vec();
        wrong[0] ^= 0xFF;
        assert!(matches!(
            AggState::from_bytes(&wrong),
            Err(CodecError::BadMagic(_))
        ));
    }

    #[test]
    fn key_atom_canonicalization() {
        assert_eq!(
            KeyAtom::from_value(&Value::Float64(3.0)),
            KeyAtom::from_value(&Value::Int64(3))
        );
        assert_eq!(
            KeyAtom::from_value(&Value::Float64(-0.0)),
            KeyAtom::from_value(&Value::Float64(0.0))
        );
        assert_ne!(
            KeyAtom::from_value(&Value::Float64(3.5)),
            KeyAtom::from_value(&Value::Int64(3))
        );
        assert!(KeyAtom::from_value(&Value::Null).is_null());
        // NaN folds onto a single atom.
        assert_eq!(
            KeyAtom::from_value(&Value::Float64(f64::NAN)),
            KeyAtom::from_value(&Value::Float64(-f64::NAN))
        );
    }

    #[test]
    fn key_atom_roundtrip() {
        for v in [
            Value::Null,
            Value::Int64(-5),
            Value::Float64(2.5),
            Value::str("k"),
            Value::Bool(true),
        ] {
            let atom = KeyAtom::from_value(&v);
            assert_eq!(atom.to_value(), v);
        }
    }

    #[test]
    fn typed_updates_match_value_updates() {
        let inputs: [(Option<f64>, Option<i64>); 6] = [
            (Some(3.0), Some(3)),
            (None, None),
            (Some(-2.5), Some(-2)),
            (Some(f64::NAN), Some(i64::MAX)),
            (Some(0.5), Some(7)),
            (Some(3.0), Some(3)),
        ];
        for func in [
            AggFunc::CountStar,
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::CountDistinct,
            AggFunc::VarSamp,
        ] {
            let mut vf = AggState::new(func);
            let mut tf = AggState::new(func);
            let mut vi = AggState::new(func);
            let mut ti = AggState::new(func);
            for (f, i) in &inputs {
                match f {
                    Some(x) => {
                        vf.update(&Value::Float64(*x));
                        tf.update_f64(*x);
                    }
                    None => {
                        vf.update(&Value::Null);
                        tf.update_null();
                    }
                }
                match i {
                    Some(x) => {
                        vi.update(&Value::Int64(*x));
                        ti.update_i64(*x);
                    }
                    None => {
                        vi.update(&Value::Null);
                        ti.update_null();
                    }
                }
            }
            // Compare finished values bit-for-bit (NaN-safe).
            let bits = |v: Value| match v {
                Value::Float64(x) => format!("f{}", x.to_bits()),
                other => format!("{other:?}"),
            };
            assert_eq!(bits(vf.finish()), bits(tf.finish()), "{func} f64 path");
            assert_eq!(bits(vi.finish()), bits(ti.finish()), "{func} i64 path");
        }
    }

    #[test]
    fn typed_min_keeps_first_nan_like_value_path() {
        let mut via_value = AggState::new(AggFunc::Min);
        let mut typed = AggState::new(AggFunc::Min);
        for x in [f64::NAN, 1.0, -5.0] {
            via_value.update(&Value::Float64(x));
            typed.update_f64(x);
        }
        let (Value::Float64(a), Value::Float64(b)) = (via_value.finish(), typed.finish()) else {
            panic!("expected floats");
        };
        assert_eq!(a.to_bits(), b.to_bits()); // both keep the first NaN
    }

    #[test]
    fn group_map_basics_and_order() {
        let mut m = I64GroupMap::new(vec![AggFunc::CountStar, AggFunc::Sum], 4);
        for (k, v) in [(7i64, 1.0), (3, 2.0), (7, 3.0), (-1, 4.0)] {
            let slot = m.slot(k);
            slot[0].update_null();
            slot[1].update_f64(v);
        }
        m.null_slot()[0].update_null();
        m.null_slot()[1].update_f64(10.0);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        let (groups, null) = m.into_groups();
        // First-seen order.
        let keys: Vec<i64> = groups.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![7, 3, -1]);
        assert_eq!(groups[0].1[1].finish(), Value::Float64(4.0));
        assert_eq!(null.expect("null group")[1].finish(), Value::Float64(10.0));
    }

    #[test]
    fn group_map_grows_past_hint() {
        // Hint of 2 but 10k distinct keys: forces several rehashes.
        let mut m = I64GroupMap::new(vec![AggFunc::Count], 2);
        for k in 0..10_000i64 {
            m.slot(k * 1_000_003)[0].update_i64(k);
        }
        assert_eq!(m.len(), 10_000);
        let (groups, null) = m.into_groups();
        assert!(null.is_none());
        assert!(groups.iter().all(|(_, s)| s[0].finish() == Value::Int64(1)));
    }

    #[test]
    fn group_map_merge_matches_single_map() {
        let funcs = vec![AggFunc::Sum, AggFunc::Min];
        let feed = |m: &mut I64GroupMap, rows: &[(i64, f64)]| {
            for (k, v) in rows {
                let slot = m.slot(*k);
                slot[0].update_f64(*v);
                slot[1].update_f64(*v);
            }
        };
        let rows = [(1i64, 0.1), (2, 0.2), (1, 0.3), (3, 0.4), (2, 0.5)];
        let mut single = I64GroupMap::new(funcs.clone(), 4);
        feed(&mut single, &rows);
        let mut left = I64GroupMap::new(funcs.clone(), 4);
        let mut right = I64GroupMap::new(funcs, 4);
        feed(&mut left, &rows[..2]);
        feed(&mut right, &rows[2..]);
        left.merge_from(right);
        let (a, _) = single.into_groups();
        let (mut b, _) = left.into_groups();
        b.sort_by_key(|(k, _)| *k);
        let mut a = a;
        a.sort_by_key(|(k, _)| *k);
        for ((ka, sa), (kb, sb)) in a.iter().zip(&b) {
            assert_eq!(ka, kb);
            for (x, y) in sa.iter().zip(sb) {
                assert_eq!(format!("{:?}", x.finish()), format!("{:?}", y.finish()));
            }
        }
    }

    #[test]
    fn linearity_classification() {
        assert!(AggFunc::Sum.is_linear());
        assert!(AggFunc::CountStar.is_linear());
        assert!(!AggFunc::Min.is_linear());
        assert!(!AggFunc::CountDistinct.is_linear());
    }

    #[test]
    fn agg_expr_builders_and_types() {
        let schema = Schema::new(vec![aqp_storage::Field::new("x", DataType::Int64)]);
        assert_eq!(
            AggExpr::count_star("c").output_type(&schema).unwrap(),
            DataType::Int64
        );
        assert_eq!(
            AggExpr::sum(col("x"), "s").output_type(&schema).unwrap(),
            DataType::Float64
        );
        assert_eq!(
            AggExpr::min(col("x"), "m").output_type(&schema).unwrap(),
            DataType::Int64
        );
        assert_eq!(
            AggExpr::count_distinct(col("x"), "d")
                .output_type(&schema)
                .unwrap(),
            DataType::Int64
        );
        assert_eq!(format!("{}", AggFunc::Avg), "AVG");
    }
}
