//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the sketch wire codec uses: big-endian
//! `get_*`/`put_*` cursor reads over `&[u8]`, an append-only `BytesMut`
//! builder, and a cheaply cloneable frozen `Bytes` buffer.

#![deny(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// Read cursor over a byte source (implemented for `&[u8]`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Advances the cursor by `n` bytes.
    fn advance(&mut self, n: usize);
    /// Copies `dst.len()` bytes out and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "copy_to_slice past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Write cursor over a growable byte sink (implemented for [`BytesMut`]).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Freezes into an immutable, cheaply cloneable buffer.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::from(self.data.into_boxed_slice()),
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// An immutable, reference-counted byte buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Self {
            data: Arc::from(src),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(0xAB);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_slice(b"xy");
        let frozen = w.freeze();
        assert_eq!(frozen.len(), 1 + 4 + 8 + 2);

        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0123_4567_89AB_CDEF);
        let mut tail = [0u8; 2];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slicing_matches_vec_semantics() {
        let b: Bytes = vec![1u8, 2, 3, 4].into();
        assert_eq!(&b[1..3], &[2, 3]);
        assert_eq!(b.as_ref(), &[1, 2, 3, 4]);
    }
}
