//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::thread::scope` with the crossbeam 0.8 call shape
//! (`scope(|s| { s.spawn(|_| …); }) -> Result<R, _>`), implemented over
//! `std::thread::scope` (stable since Rust 1.63). Worker panics are
//! reported through the returned `Result`, as in crossbeam.

#![deny(unsafe_code)]

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// A scope handle that can spawn borrowing threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the
        /// scope (crossbeam's nested-spawn shape); the join handle is
        /// managed by the scope itself, and a panicking worker surfaces
        /// as `Err` from [`scope`].
        pub fn spawn<F, T>(&self, f: F)
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }));
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// all spawned threads are joined before this returns. Returns `Err`
    /// if any spawned thread panicked (`std::thread::scope` re-raises
    /// unjoined child panics once all threads finish; that unwind is
    /// caught here and surfaced crossbeam-style).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicU64, Ordering};

        #[test]
        fn scoped_threads_borrow_and_join() {
            let total = AtomicU64::new(0);
            let data: Vec<u64> = (0..100).collect();
            super::scope(|s| {
                for chunk in data.chunks(25) {
                    s.spawn(|_| {
                        let sum: u64 = chunk.iter().sum();
                        total.fetch_add(sum, Ordering::SeqCst);
                    });
                }
            })
            .unwrap();
            assert_eq!(total.load(Ordering::SeqCst), 4950);
        }

        #[test]
        fn panics_surface_as_err() {
            let r = super::scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }
    }
}
