//! Offline stand-in for `criterion`.
//!
//! Implements the call surface the workspace benches use — groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `iter`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros — over a simple median-of-samples wall-clock harness. Under
//! `cargo test` (no `--bench` flag) each bench body runs once as a smoke
//! test; under `cargo bench` it measures and prints one line per bench.

#![deny(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Measurement mode for the process (full under `cargo bench`).
fn measuring() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Throughput annotation (recorded, echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The per-bench timing driver passed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
    smoke: bool,
}

impl Bencher {
    /// Times `routine`, sampling it `sample_count` times (once in smoke
    /// mode). Each sample runs enough iterations to cover ~5 ms so short
    /// routines aren't dominated by timer resolution.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        if self.smoke {
            black_box(routine());
            return;
        }
        // Calibrate iterations per sample.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let iters = (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        self.samples.clear();
        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / iters);
        }
    }

    fn median(&self) -> Option<Duration> {
        let mut s = self.samples.clone();
        if s.is_empty() {
            return None;
        }
        s.sort();
        Some(s[s.len() / 2])
    }
}

fn report(label: &str, b: &Bencher, throughput: Option<Throughput>) {
    if let Some(med) = b.median() {
        let extra = match throughput {
            Some(Throughput::Elements(n)) => {
                let per_sec = n as f64 / med.as_secs_f64();
                format!("  ({per_sec:.3e} elem/s)")
            }
            Some(Throughput::Bytes(n)) => {
                let per_sec = n as f64 / med.as_secs_f64();
                format!("  ({per_sec:.3e} B/s)")
            }
            None => String::new(),
        };
        println!("bench {label:<55} median {med:>12.3?}{extra}");
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per bench.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1);
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benches a closure under `group/name`.
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_count,
            smoke: !measuring(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b, self.throughput);
    }

    /// Benches a closure that takes a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The top-level benchmark harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_count: 30,
            throughput: None,
            _parent: self,
        }
    }

    /// Benches a stand-alone closure.
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: 30,
            smoke: !measuring(),
        };
        f(&mut b);
        report(&id.to_string(), &b, None);
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_smoke() {
        let mut c = Criterion::default();
        c.bench_function("unit", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("g");
        g.sample_size(10).throughput(Throughput::Elements(4));
        g.bench_function("inner", |b| b.iter(|| black_box(2 * 2)));
        g.bench_with_input(BenchmarkId::new("with", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        g.finish();
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
        assert_eq!(BenchmarkId::new("n", 7).to_string(), "n/7");
    }
}
