//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the small slice of the `rand 0.8` API it actually uses: a seedable
//! small RNG (xoshiro256++), `gen`/`gen_range`, uniform distributions, and
//! Fisher–Yates shuffling. Streams differ from upstream `rand`, but every
//! consumer in this workspace treats seeds as opaque reproducibility
//! handles, never as cross-library fixtures.

#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: full range).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a standard sampling distribution (the `gen::<T>()` surface).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value of type `T` can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded draw in `[0, span)`; bias is below 2⁻⁶⁴.
fn bounded(rng: &mut impl RngCore, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u: f64 = Standard::sample(rng);
                (self.start as f64 + u * (self.end as f64 - self.start as f64)) as $t
            }
        }
    )*};
}
range_float!(f32, f64);

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Random number generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the same family upstream `SmallRng` uses on 64-bit
    /// targets. Fast, 256-bit state, passes BigCrush.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 state expansion, as upstream does.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Distribution objects (`Uniform`) and the sampling trait.
pub mod distributions {
    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[lo, hi)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
    }

    impl<T: Copy + PartialOrd> Uniform<T> {
        /// Creates a uniform distribution over `[lo, hi)`.
        pub fn new(lo: T, hi: T) -> Self {
            assert!(lo < hi, "Uniform::new requires lo < hi");
            Self { lo, hi }
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
            let u: f64 = super::Standard::sample(rng);
            self.lo + u * (self.hi - self.lo)
        }
    }

    impl Distribution<i64> for Uniform<i64> {
        fn sample<R: RngCore>(&self, rng: &mut R) -> i64 {
            use super::SampleRange;
            (self.lo..self.hi).sample_single(rng)
        }
    }
}

/// Slice helpers (`shuffle`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random reordering of slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_uniform() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let y = rng.gen_range(0usize..=3);
            assert!(y <= 3);
            let z = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&z));
        }
        // Every bucket of a small integer range is hit.
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input fixed");
    }

    #[test]
    fn uniform_distribution_sampling() {
        use super::distributions::{Distribution, Uniform};
        let d = Uniform::new(0.0f64, 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((0.0..1.0).contains(&x));
        }
    }
}
