//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op `Serialize`/`Deserialize` derive macros so
//! `#[derive(Serialize, Deserialize)]` annotations compile without the
//! real serde (unfetchable in this offline build environment). No code in
//! this workspace performs generic serde serialization — the sketches ship
//! over their own binary codec (`aqp-sketch::codec`).

#![deny(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
