//! Merging samples: the sampling layer's half of two-step aggregation.
//!
//! Two samples drawn independently from *disjoint* partitions of a
//! population combine into one valid sample of the union — if the designs
//! are reconciled correctly. That reconciliation is per-stratum weight
//! bookkeeping, and it is what makes shard-then-merge execution
//! statistically sound rather than merely convenient:
//!
//! * **Stratified + stratified** (same column): strata are independent SRS
//!   units, so the merged sample simply carries both strata lists (row
//!   ranges offset into the concatenated table). Duplicate keys are fine —
//!   estimation iterates strata independently, and each side's stratum
//!   keeps its own population and weights. Exact.
//! * **Fixed-size SRS + fixed-size SRS**: each side is converted to a
//!   single stratum of a stratified design (SRS within stratum *is* the
//!   SRS design, finite-population correction included), then merged as
//!   above. Exact, and the reason the merged CI matches the sharded math.
//!   A `__shard`-stratified sample (the product of such a merge) keeps
//!   absorbing further SRS shards as new strata, so a left-to-right fold
//!   over N shards works for any N.
//! * **Bernoulli / universe / bi-level at bit-identical rates**: HT
//!   estimators are sums over independent inclusion draws, so tables
//!   concatenate and population counts add. A rate mismatch is a typed
//!   [`MergeError::Incompatible`] — unequal-probability pooling would need
//!   per-row probabilities we no longer have.
//! * **Distinct and block-SRS designs**: no statistically sound merge
//!   exists without re-scanning (the frequency cap and the fixed block
//!   count are global properties), so merging returns
//!   [`MergeError::Unsupported`].
//!
//! The codec serializes design, weights, and rows ([`aqp_storage::codec`])
//! under [`tag::SAMPLE`] so shard samples can be shipped and merged
//! off-node.

use aqp_mergeable::{tag, wire, CodecError, MergeError, Partial};
use aqp_storage::codec::{decode_value, encode_value};
use aqp_storage::{decode_table, encode_table};
use bytes::{BufMut, Bytes, BytesMut};

use crate::design::{RowWeights, Sample, SampleDesign, StratumMeta};

fn concat_weights(a: &RowWeights, a_rows: usize, b: &RowWeights, b_rows: usize) -> RowWeights {
    if let (RowWeights::Uniform(x), RowWeights::Uniform(y)) = (a, b) {
        if x.to_bits() == y.to_bits() {
            return RowWeights::Uniform(*x);
        }
    }
    let mut v = Vec::with_capacity(a_rows + b_rows);
    for i in 0..a_rows {
        v.push(a.weight(i));
    }
    for i in 0..b_rows {
        v.push(b.weight(i));
    }
    RowWeights::PerRow(v)
}

/// A fixed-size SRS of `n` rows from a population of `N` is exactly one
/// stratum of a stratified design (SRS within stratum, fpc included).
/// `key` distinguishes the shard the stratum came from.
fn srs_as_stratum(population_rows: u64, rows: usize, key: i64) -> Vec<StratumMeta> {
    vec![StratumMeta {
        key: aqp_storage::Value::Int64(key),
        population_size: population_rows,
        row_start: 0,
        row_end: rows,
    }]
}

fn rate_mismatch(expected: f64, found: f64) -> MergeError {
    MergeError::Incompatible {
        kind: "sample",
        expected: format!("rate {expected}"),
        found: format!("rate {found}"),
    }
}

impl Sample {
    /// Folds `other` — an independent sample of a *disjoint* partition of
    /// the population — into `self`, reconciling designs and per-stratum
    /// weights. See the module docs for which design pairs merge and why.
    /// On error, `self` is unchanged.
    pub fn merge(&mut self, other: &Sample) -> Result<(), MergeError> {
        let a_rows = self.table.row_count();
        let b_rows = other.table.row_count();
        let merged_design = match (&self.design, &other.design) {
            (
                SampleDesign::Stratified { column, strata },
                SampleDesign::Stratified {
                    column: other_column,
                    strata: other_strata,
                },
            ) => {
                if column != other_column {
                    return Err(MergeError::Incompatible {
                        kind: "sample",
                        expected: format!("stratified on {column}"),
                        found: format!("stratified on {other_column}"),
                    });
                }
                let mut merged = strata.clone();
                merged.extend(other_strata.iter().map(|s| StratumMeta {
                    key: s.key.clone(),
                    population_size: s.population_size,
                    row_start: s.row_start + a_rows,
                    row_end: s.row_end + a_rows,
                }));
                SampleDesign::Stratified {
                    column: column.clone(),
                    strata: merged,
                }
            }
            (
                SampleDesign::FixedSizeRows { population_rows },
                SampleDesign::FixedSizeRows {
                    population_rows: other_population,
                },
            ) => {
                let mut strata = srs_as_stratum(*population_rows, a_rows, 0);
                strata.extend(
                    srs_as_stratum(*other_population, b_rows, 1)
                        .into_iter()
                        .map(|mut s| {
                            s.row_start += a_rows;
                            s.row_end += a_rows;
                            s
                        }),
                );
                SampleDesign::Stratified {
                    column: "__shard".into(),
                    strata,
                }
            }
            (
                SampleDesign::BernoulliRows {
                    rate,
                    population_rows,
                },
                SampleDesign::BernoulliRows {
                    rate: other_rate,
                    population_rows: other_population,
                },
            ) => {
                if rate.to_bits() != other_rate.to_bits() {
                    return Err(rate_mismatch(*rate, *other_rate));
                }
                SampleDesign::BernoulliRows {
                    rate: *rate,
                    population_rows: population_rows + other_population,
                }
            }
            (
                SampleDesign::BernoulliBlocks {
                    rate,
                    population_blocks,
                    population_rows,
                },
                SampleDesign::BernoulliBlocks {
                    rate: other_rate,
                    population_blocks: other_blocks,
                    population_rows: other_rows,
                },
            ) => {
                if rate.to_bits() != other_rate.to_bits() {
                    return Err(rate_mismatch(*rate, *other_rate));
                }
                SampleDesign::BernoulliBlocks {
                    rate: *rate,
                    population_blocks: population_blocks + other_blocks,
                    population_rows: population_rows + other_rows,
                }
            }
            (
                SampleDesign::Universe {
                    column,
                    rate,
                    population_rows,
                },
                SampleDesign::Universe {
                    column: other_column,
                    rate: other_rate,
                    population_rows: other_population,
                },
            ) => {
                if column != other_column {
                    return Err(MergeError::Incompatible {
                        kind: "sample",
                        expected: format!("universe on {column}"),
                        found: format!("universe on {other_column}"),
                    });
                }
                if rate.to_bits() != other_rate.to_bits() {
                    return Err(rate_mismatch(*rate, *other_rate));
                }
                SampleDesign::Universe {
                    column: column.clone(),
                    rate: *rate,
                    population_rows: population_rows + other_population,
                }
            }
            (
                SampleDesign::BiLevel {
                    block_rate,
                    row_rate,
                    population_blocks,
                    population_rows,
                },
                SampleDesign::BiLevel {
                    block_rate: other_block_rate,
                    row_rate: other_row_rate,
                    population_blocks: other_blocks,
                    population_rows: other_rows,
                },
            ) => {
                if block_rate.to_bits() != other_block_rate.to_bits()
                    || row_rate.to_bits() != other_row_rate.to_bits()
                {
                    return Err(MergeError::Incompatible {
                        kind: "sample",
                        expected: format!("bilevel rates ({block_rate}, {row_rate})"),
                        found: format!("bilevel rates ({other_block_rate}, {other_row_rate})"),
                    });
                }
                SampleDesign::BiLevel {
                    block_rate: *block_rate,
                    row_rate: *row_rate,
                    population_blocks: population_blocks + other_blocks,
                    population_rows: population_rows + other_rows,
                }
            }
            // A left-to-right fold over N > 2 SRS shards: the first merge
            // produced a `__shard`-stratified sample, and every further SRS
            // shard joins it as one more stratum. Duplicate stratum keys are
            // harmless — estimation iterates strata by position.
            (
                SampleDesign::Stratified { column, strata },
                SampleDesign::FixedSizeRows {
                    population_rows: other_population,
                },
            ) if column == "__shard" => {
                let mut merged = strata.clone();
                merged.push(StratumMeta {
                    key: aqp_storage::Value::Int64(merged.len() as i64),
                    population_size: *other_population,
                    row_start: a_rows,
                    row_end: a_rows + b_rows,
                });
                SampleDesign::Stratified {
                    column: column.clone(),
                    strata: merged,
                }
            }
            (
                SampleDesign::FixedSizeRows { population_rows },
                SampleDesign::Stratified {
                    column,
                    strata: other_strata,
                },
            ) if column == "__shard" => {
                let mut merged = srs_as_stratum(*population_rows, a_rows, -1);
                merged.extend(other_strata.iter().map(|s| StratumMeta {
                    key: s.key.clone(),
                    population_size: s.population_size,
                    row_start: s.row_start + a_rows,
                    row_end: s.row_end + a_rows,
                }));
                SampleDesign::Stratified {
                    column: column.clone(),
                    strata: merged,
                }
            }
            (a, b) if std::mem::discriminant(a) != std::mem::discriminant(b) => {
                return Err(MergeError::Unsupported {
                    kind: "sample",
                    reason: format!("cannot combine {} with {}", a.name(), b.name()),
                });
            }
            (a, _) => {
                return Err(MergeError::Unsupported {
                    kind: "sample",
                    reason: format!(
                        "{} samples have no partition-merge (design is a global property)",
                        a.name()
                    ),
                });
            }
        };
        let weights = concat_weights(&self.weights, a_rows, &other.weights, b_rows);
        // Table merge last: design reconciliation above cannot fail anymore,
        // so a schema mismatch here still leaves self unchanged.
        let mut table = self.table.clone();
        Partial::merge(&mut table, &other.table)?;
        self.table = table;
        self.design = merged_design;
        self.weights = weights;
        Ok(())
    }
}

const DESIGN_BERNOULLI_ROWS: u8 = 0;
const DESIGN_BERNOULLI_BLOCKS: u8 = 1;
const DESIGN_FIXED_ROWS: u8 = 2;
const DESIGN_FIXED_BLOCKS: u8 = 3;
const DESIGN_STRATIFIED: u8 = 4;
const DESIGN_UNIVERSE: u8 = 5;
const DESIGN_BILEVEL: u8 = 6;
const DESIGN_DISTINCT: u8 = 7;

/// Decoder cap: a sample declaring more strata / weights than this is
/// corrupt (strata and weights are bounded by sampled rows in practice).
const MAX_ITEMS: usize = 1 << 28;

fn encode_design(buf: &mut BytesMut, design: &SampleDesign) {
    match design {
        SampleDesign::BernoulliRows {
            rate,
            population_rows,
        } => {
            buf.put_u8(DESIGN_BERNOULLI_ROWS);
            wire::write_f64(buf, *rate);
            buf.put_u64(*population_rows);
        }
        SampleDesign::BernoulliBlocks {
            rate,
            population_blocks,
            population_rows,
        } => {
            buf.put_u8(DESIGN_BERNOULLI_BLOCKS);
            wire::write_f64(buf, *rate);
            buf.put_u64(*population_blocks);
            buf.put_u64(*population_rows);
        }
        SampleDesign::FixedSizeRows { population_rows } => {
            buf.put_u8(DESIGN_FIXED_ROWS);
            buf.put_u64(*population_rows);
        }
        SampleDesign::FixedSizeBlocks {
            population_blocks,
            population_rows,
        } => {
            buf.put_u8(DESIGN_FIXED_BLOCKS);
            buf.put_u64(*population_blocks);
            buf.put_u64(*population_rows);
        }
        SampleDesign::Stratified { column, strata } => {
            buf.put_u8(DESIGN_STRATIFIED);
            wire::write_str(buf, column);
            buf.put_u32(strata.len() as u32);
            for s in strata {
                encode_value(buf, &s.key);
                buf.put_u64(s.population_size);
                buf.put_u64(s.row_start as u64);
                buf.put_u64(s.row_end as u64);
            }
        }
        SampleDesign::Universe {
            column,
            rate,
            population_rows,
        } => {
            buf.put_u8(DESIGN_UNIVERSE);
            wire::write_str(buf, column);
            wire::write_f64(buf, *rate);
            buf.put_u64(*population_rows);
        }
        SampleDesign::BiLevel {
            block_rate,
            row_rate,
            population_blocks,
            population_rows,
        } => {
            buf.put_u8(DESIGN_BILEVEL);
            wire::write_f64(buf, *block_rate);
            wire::write_f64(buf, *row_rate);
            buf.put_u64(*population_blocks);
            buf.put_u64(*population_rows);
        }
        SampleDesign::Distinct {
            columns,
            cap,
            rate,
            population_rows,
        } => {
            buf.put_u8(DESIGN_DISTINCT);
            buf.put_u32(columns.len() as u32);
            for c in columns {
                wire::write_str(buf, c);
            }
            buf.put_u64(*cap as u64);
            wire::write_f64(buf, *rate);
            buf.put_u64(*population_rows);
        }
    }
}

fn decode_design(buf: &mut &[u8]) -> Result<SampleDesign, CodecError> {
    match wire::read_u8(buf)? {
        DESIGN_BERNOULLI_ROWS => Ok(SampleDesign::BernoulliRows {
            rate: wire::read_f64(buf)?,
            population_rows: wire::read_u64(buf)?,
        }),
        DESIGN_BERNOULLI_BLOCKS => Ok(SampleDesign::BernoulliBlocks {
            rate: wire::read_f64(buf)?,
            population_blocks: wire::read_u64(buf)?,
            population_rows: wire::read_u64(buf)?,
        }),
        DESIGN_FIXED_ROWS => Ok(SampleDesign::FixedSizeRows {
            population_rows: wire::read_u64(buf)?,
        }),
        DESIGN_FIXED_BLOCKS => Ok(SampleDesign::FixedSizeBlocks {
            population_blocks: wire::read_u64(buf)?,
            population_rows: wire::read_u64(buf)?,
        }),
        DESIGN_STRATIFIED => {
            let column = wire::read_str(buf)?;
            let n = wire::read_u32(buf)? as usize;
            if n > MAX_ITEMS {
                return Err(CodecError::BadDimensions);
            }
            let mut strata = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let key = decode_value(buf)?;
                let population_size = wire::read_u64(buf)?;
                let row_start = wire::read_u64(buf)? as usize;
                let row_end = wire::read_u64(buf)? as usize;
                if row_end < row_start {
                    return Err(CodecError::BadDimensions);
                }
                strata.push(StratumMeta {
                    key,
                    population_size,
                    row_start,
                    row_end,
                });
            }
            Ok(SampleDesign::Stratified { column, strata })
        }
        DESIGN_UNIVERSE => Ok(SampleDesign::Universe {
            column: wire::read_str(buf)?,
            rate: wire::read_f64(buf)?,
            population_rows: wire::read_u64(buf)?,
        }),
        DESIGN_BILEVEL => Ok(SampleDesign::BiLevel {
            block_rate: wire::read_f64(buf)?,
            row_rate: wire::read_f64(buf)?,
            population_blocks: wire::read_u64(buf)?,
            population_rows: wire::read_u64(buf)?,
        }),
        DESIGN_DISTINCT => {
            let n = wire::read_u32(buf)? as usize;
            if n > MAX_ITEMS {
                return Err(CodecError::BadDimensions);
            }
            let mut columns = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                columns.push(wire::read_str(buf)?);
            }
            Ok(SampleDesign::Distinct {
                columns,
                cap: wire::read_u64(buf)? as usize,
                rate: wire::read_f64(buf)?,
                population_rows: wire::read_u64(buf)?,
            })
        }
        _ => Err(CodecError::BadDimensions),
    }
}

/// Samples serialize as design + weights + rows and merge by partition
/// pooling (see [`Sample::merge`] for the statistical contract).
impl Partial for Sample {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        Sample::merge(self, other)
    }

    fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64 + self.table.approx_bytes());
        wire::write_header(&mut buf, tag::SAMPLE);
        encode_design(&mut buf, &self.design);
        match &self.weights {
            RowWeights::Uniform(w) => {
                buf.put_u8(0);
                wire::write_f64(&mut buf, *w);
            }
            RowWeights::PerRow(ws) => {
                buf.put_u8(1);
                buf.put_u32(ws.len() as u32);
                for &w in ws {
                    wire::write_f64(&mut buf, w);
                }
            }
        }
        buf.put_slice(&encode_table(&self.table));
        buf.freeze()
    }

    fn from_bytes(mut buf: &[u8]) -> Result<Self, CodecError> {
        let buf = &mut buf;
        wire::read_header(buf, tag::SAMPLE)?;
        let design = decode_design(buf)?;
        let weights = match wire::read_u8(buf)? {
            0 => RowWeights::Uniform(wire::read_f64(buf)?),
            1 => {
                let n = wire::read_u32(buf)? as usize;
                wire::need(buf, n.checked_mul(8).ok_or(CodecError::BadDimensions)?)?;
                let mut ws = Vec::with_capacity(n);
                for _ in 0..n {
                    ws.push(wire::read_f64(buf)?);
                }
                RowWeights::PerRow(ws)
            }
            _ => return Err(CodecError::BadDimensions),
        };
        let table = decode_table(buf)?;
        if let RowWeights::PerRow(ws) = &weights {
            if ws.len() != table.row_count() {
                return Err(CodecError::BadDimensions);
            }
        }
        if let SampleDesign::Stratified { strata, .. } = &design {
            if strata.iter().any(|s| s.row_end > table.row_count()) {
                return Err(CodecError::BadDimensions);
            }
        }
        Ok(Sample {
            table,
            design,
            weights,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqp_storage::{DataType, Field, Schema, TableBuilder, Value};

    fn small_table(values: &[f64], cap: usize) -> aqp_storage::Table {
        let schema = Schema::new(vec![Field::new("v", DataType::Float64)]);
        let mut b = TableBuilder::with_block_capacity("t", schema, cap);
        for &v in values {
            b.push_row(&[Value::Float64(v)]).unwrap();
        }
        b.finish()
    }

    fn srs(values: &[f64], population: u64) -> Sample {
        let w = population as f64 / values.len() as f64;
        Sample {
            table: small_table(values, 8),
            design: SampleDesign::FixedSizeRows {
                population_rows: population,
            },
            weights: RowWeights::Uniform(w),
        }
    }

    #[test]
    fn srs_merge_becomes_stratified_with_exact_totals() {
        // Shard A: 4 of 8 rows; shard B: 3 of 6 rows.
        let mut a = srs(&[1.0, 2.0, 3.0, 4.0], 8);
        let b = srs(&[10.0, 20.0, 30.0], 6);
        let est_a = a.estimate_sum("v").unwrap();
        let est_b = b.estimate_sum("v").unwrap();
        a.merge(&b).unwrap();
        assert!(matches!(a.design, SampleDesign::Stratified { .. }));
        let merged = a.estimate_sum("v").unwrap();
        // Strata are independent: totals and variances add exactly.
        assert!((merged.value - (est_a.value + est_b.value)).abs() < 1e-9);
        assert!((merged.variance - (est_a.variance + est_b.variance)).abs() < 1e-6);
        // Weight reconciliation: each row keeps its own shard's HT weight.
        assert_eq!(a.weights.weight(0), 2.0);
        assert_eq!(a.weights.weight(4), 2.0);
        assert_eq!(a.num_rows(), 7);
    }

    #[test]
    fn srs_fold_over_four_shards_accumulates_strata() {
        let shards = [
            srs(&[1.0, 2.0], 4),
            srs(&[3.0, 4.0], 4),
            srs(&[5.0, 6.0], 4),
            srs(&[7.0, 8.0], 4),
        ];
        let per_shard: f64 = shards
            .iter()
            .map(|s| s.estimate_sum("v").unwrap().value)
            .sum();
        let mut acc = shards[0].clone();
        for s in &shards[1..] {
            acc.merge(s).unwrap();
        }
        match &acc.design {
            SampleDesign::Stratified { column, strata } => {
                assert_eq!(column, "__shard");
                assert_eq!(strata.len(), 4);
            }
            other => panic!("unexpected design {other:?}"),
        }
        assert!((acc.estimate_sum("v").unwrap().value - per_shard).abs() < 1e-9);
    }

    #[test]
    fn stratified_merge_offsets_row_ranges() {
        let mk = |vals: &[f64], key: &str, pop: u64| Sample {
            table: small_table(vals, 8),
            design: SampleDesign::Stratified {
                column: "g".into(),
                strata: vec![StratumMeta {
                    key: Value::str(key),
                    population_size: pop,
                    row_start: 0,
                    row_end: vals.len(),
                }],
            },
            weights: RowWeights::PerRow(vec![pop as f64 / vals.len() as f64; vals.len()]),
        };
        let mut a = mk(&[10.0, 12.0], "a", 4);
        let b = mk(&[100.0, 110.0], "b", 6);
        a.merge(&b).unwrap();
        match &a.design {
            SampleDesign::Stratified { strata, .. } => {
                assert_eq!(strata.len(), 2);
                assert_eq!((strata[1].row_start, strata[1].row_end), (2, 4));
            }
            other => panic!("unexpected design {other:?}"),
        }
        // 4·11 + 6·105 = 674.
        let sum = a.estimate_sum("v").unwrap();
        assert!((sum.value - 674.0).abs() < 1e-9, "{}", sum.value);
    }

    #[test]
    fn stratified_merge_rejects_different_columns() {
        let mk = |col: &str| Sample {
            table: small_table(&[1.0], 8),
            design: SampleDesign::Stratified {
                column: col.into(),
                strata: vec![],
            },
            weights: RowWeights::Uniform(1.0),
        };
        let mut a = mk("g");
        let err = a.merge(&mk("h")).unwrap_err();
        assert!(matches!(
            err,
            MergeError::Incompatible { kind: "sample", .. }
        ));
    }

    #[test]
    fn bernoulli_merge_requires_equal_rates() {
        let mk = |rate: f64, vals: &[f64], pop: u64| Sample {
            table: small_table(vals, 4),
            design: SampleDesign::BernoulliRows {
                rate,
                population_rows: pop,
            },
            weights: RowWeights::Uniform(1.0 / rate),
        };
        let mut a = mk(0.5, &[1.0, 2.0], 4);
        let b = mk(0.5, &[3.0], 2);
        a.merge(&b).unwrap();
        match a.design {
            SampleDesign::BernoulliRows {
                rate,
                population_rows,
            } => {
                assert_eq!(rate, 0.5);
                assert_eq!(population_rows, 6);
            }
            ref other => panic!("unexpected design {other:?}"),
        }
        assert!((a.estimate_sum("v").unwrap().value - 12.0).abs() < 1e-12);

        let snapshot_rows = a.num_rows();
        let err = a.merge(&mk(0.25, &[9.0], 4)).unwrap_err();
        assert!(matches!(
            err,
            MergeError::Incompatible { kind: "sample", .. }
        ));
        assert_eq!(a.num_rows(), snapshot_rows, "failed merge must not mutate");
    }

    #[test]
    fn unsupported_pairs_error_without_panicking() {
        let bern = Sample {
            table: small_table(&[1.0], 4),
            design: SampleDesign::BernoulliRows {
                rate: 0.5,
                population_rows: 2,
            },
            weights: RowWeights::Uniform(2.0),
        };
        let distinct = Sample {
            table: small_table(&[1.0], 4),
            design: SampleDesign::Distinct {
                columns: vec!["v".into()],
                cap: 1,
                rate: 0.5,
                population_rows: 2,
            },
            weights: RowWeights::PerRow(vec![1.0]),
        };
        // Mixed kinds.
        let mut a = bern;
        assert!(matches!(
            a.merge(&distinct).unwrap_err(),
            MergeError::Unsupported { kind: "sample", .. }
        ));
        // Same kind, but the design is a global property.
        let mut d = distinct.clone();
        assert!(matches!(
            d.merge(&distinct).unwrap_err(),
            MergeError::Unsupported { kind: "sample", .. }
        ));
    }

    #[test]
    fn codec_roundtrips_every_design() {
        let table = small_table(&[1.0, 2.0, 3.0], 2);
        let designs = vec![
            SampleDesign::BernoulliRows {
                rate: 0.25,
                population_rows: 12,
            },
            SampleDesign::BernoulliBlocks {
                rate: 0.5,
                population_blocks: 4,
                population_rows: 12,
            },
            SampleDesign::FixedSizeRows {
                population_rows: 12,
            },
            SampleDesign::FixedSizeBlocks {
                population_blocks: 4,
                population_rows: 12,
            },
            SampleDesign::Stratified {
                column: "g".into(),
                strata: vec![StratumMeta {
                    key: Value::str("a"),
                    population_size: 12,
                    row_start: 0,
                    row_end: 3,
                }],
            },
            SampleDesign::Universe {
                column: "v".into(),
                rate: 0.3,
                population_rows: 12,
            },
            SampleDesign::BiLevel {
                block_rate: 0.5,
                row_rate: 0.5,
                population_blocks: 4,
                population_rows: 12,
            },
            SampleDesign::Distinct {
                columns: vec!["v".into()],
                cap: 2,
                rate: 0.25,
                population_rows: 12,
            },
        ];
        for design in designs {
            for weights in [
                RowWeights::Uniform(4.0),
                RowWeights::PerRow(vec![1.0, 2.0, 4.0]),
            ] {
                let s = Sample {
                    table: table.clone(),
                    design: design.clone(),
                    weights: weights.clone(),
                };
                let back = Sample::from_bytes(&Partial::to_bytes(&s)).unwrap();
                assert_eq!(back.design, s.design);
                assert_eq!(back.weights, s.weights);
                assert_eq!(back.num_rows(), s.num_rows());
                // Estimation behaves identically after the roundtrip.
                if !matches!(design, SampleDesign::FixedSizeBlocks { .. }) {
                    assert_eq!(
                        back.estimate_sum("v").unwrap().value,
                        s.estimate_sum("v").unwrap().value
                    );
                }
            }
        }
    }

    #[test]
    fn codec_rejects_corruption() {
        let s = srs(&[1.0, 2.0], 4);
        let bytes = Partial::to_bytes(&s);
        for cut in 0..bytes.len() {
            assert!(Sample::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut wrong = bytes.to_vec();
        wrong[0] = 0x11;
        assert!(matches!(
            Sample::from_bytes(&wrong),
            Err(CodecError::BadMagic(0x11))
        ));
        // Mismatched per-row weight count is caught.
        let bad = Sample {
            table: small_table(&[1.0, 2.0], 4),
            design: SampleDesign::FixedSizeRows { population_rows: 4 },
            weights: RowWeights::PerRow(vec![2.0]),
        };
        assert_eq!(
            Sample::from_bytes(&Partial::to_bytes(&bad)).err(),
            Some(CodecError::BadDimensions)
        );
    }

    #[test]
    fn merged_sample_roundtrips() {
        let mut a = srs(&[1.0, 2.0, 3.0, 4.0], 8);
        a.merge(&srs(&[10.0, 20.0, 30.0], 6)).unwrap();
        let back = Sample::from_bytes(&Partial::to_bytes(&a)).unwrap();
        assert_eq!(back.design, a.design);
        assert_eq!(
            back.estimate_sum("v").unwrap().value,
            a.estimate_sum("v").unwrap().value
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::bernoulli::bernoulli_rows;
    use aqp_storage::{DataType, Field, Schema, TableBuilder, Value};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Sampler-produced Bernoulli samples roundtrip through the codec
        /// with identical estimates; truncation always errors.
        #[test]
        fn bernoulli_samples_roundtrip(
            values in prop::collection::vec(-1e6f64..1e6, 1..200),
            seed in any::<u64>(),
            frac in 0.0f64..1.0,
        ) {
            let schema = Schema::new(vec![Field::new("v", DataType::Float64)]);
            let mut b = TableBuilder::with_block_capacity("p", schema, 16);
            for &v in &values {
                b.push_row(&[Value::Float64(v)]).unwrap();
            }
            let s = bernoulli_rows(&b.finish(), 0.4, seed);
            let bytes = Partial::to_bytes(&s);
            let back = Sample::from_bytes(&bytes).unwrap();
            prop_assert_eq!(back.num_rows(), s.num_rows());
            let (e0, e1) = (s.estimate_sum("v").unwrap(), back.estimate_sum("v").unwrap());
            prop_assert_eq!(e0.value, e1.value);
            prop_assert_eq!(e0.variance, e1.variance);
            let cut = ((bytes.len() - 1) as f64 * frac) as usize;
            prop_assert!(Sample::from_bytes(&bytes[..cut]).is_err());
        }

        /// Merging two disjoint-partition SRS shards yields the same point
        /// estimate as HT weighting demands, with additive variance.
        #[test]
        fn srs_shard_merge_is_exact(
            left in prop::collection::vec(-1e4f64..1e4, 2..50),
            right in prop::collection::vec(-1e4f64..1e4, 2..50),
        ) {
            let mk = |vals: &[f64]| {
                let schema = Schema::new(vec![Field::new("v", DataType::Float64)]);
                let mut b = TableBuilder::with_block_capacity("p", schema, 8);
                for &v in vals {
                    b.push_row(&[Value::Float64(v)]).unwrap();
                }
                Sample {
                    table: b.finish(),
                    design: SampleDesign::FixedSizeRows {
                        population_rows: 2 * vals.len() as u64,
                    },
                    weights: RowWeights::Uniform(2.0),
                }
            };
            let a = mk(&left);
            let b = mk(&right);
            let (ea, eb) = (a.estimate_sum("v").unwrap(), b.estimate_sum("v").unwrap());
            let mut merged = a;
            merged.merge(&b).unwrap();
            let em = merged.estimate_sum("v").unwrap();
            prop_assert!((em.value - (ea.value + eb.value)).abs() < 1e-6 * (1.0 + em.value.abs()));
            prop_assert!(
                (em.variance - (ea.variance + eb.variance)).abs()
                    < 1e-6 * (1.0 + em.variance.abs())
            );
        }
    }
}
