//! Bernoulli sampling at the row and block level.
//!
//! The pair of functions here is the smallest complete demonstration of
//! NSB's system-efficiency argument:
//!
//! * [`bernoulli_rows`] must visit **every row** of the table to flip its
//!   coin — a sample at rate 0.1% still costs a full scan.
//! * [`bernoulli_blocks`] flips one coin per **block** and never touches
//!   the rows of rejected blocks; the sampled table *shares* the selected
//!   blocks (`Arc`), so its cost is proportional to the sampled fraction.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use aqp_storage::{Table, TableBuilder};

use crate::design::{RowWeights, Sample, SampleDesign};

/// Row-level Bernoulli(rate) sampling.
///
/// Every row is independently included with probability `rate`. The
/// returned sample's rows are *copied* into fresh blocks — mirroring the
/// reality that row sampling materializes new pages.
///
/// # Panics
/// Panics if `rate` is outside `(0, 1]`.
pub fn bernoulli_rows(table: &Table, rate: f64, seed: u64) -> Sample {
    assert!(
        rate > 0.0 && rate <= 1.0,
        "rate must be in (0,1], got {rate}"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = TableBuilder::with_block_capacity(
        format!("{}__rows_{rate}", table.name()),
        table.schema().as_ref().clone(),
        table.block_capacity(),
    );
    for (_, block) in table.iter_blocks() {
        for i in 0..block.len() {
            if rng.gen::<f64>() < rate {
                builder.gather_row(block, i);
            }
        }
    }
    Sample {
        table: builder.finish(),
        design: SampleDesign::BernoulliRows {
            rate,
            population_rows: table.row_count() as u64,
        },
        weights: RowWeights::Uniform(1.0 / rate),
    }
}

/// Block-level Bernoulli(rate) sampling.
///
/// Every block is independently included with probability `rate`; selected
/// blocks are shared by reference (zero copy), rejected blocks are never
/// read. This is the `TABLESAMPLE SYSTEM` analogue.
///
/// # Panics
/// Panics if `rate` is outside `(0, 1]`.
pub fn bernoulli_blocks(table: &Table, rate: f64, seed: u64) -> Sample {
    assert!(
        rate > 0.0 && rate <= 1.0,
        "rate must be in (0,1], got {rate}"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut blocks = Vec::new();
    for (_, block) in table.iter_blocks() {
        if rng.gen::<f64>() < rate {
            blocks.push(std::sync::Arc::clone(block));
        }
    }
    let sampled = Table::from_blocks(
        format!("{}__blocks_{rate}", table.name()),
        std::sync::Arc::clone(table.schema()),
        blocks,
        table.block_capacity(),
    );
    Sample {
        table: sampled,
        design: SampleDesign::BernoulliBlocks {
            rate,
            population_blocks: table.block_count() as u64,
            population_rows: table.row_count() as u64,
        },
        weights: RowWeights::Uniform(1.0 / rate),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqp_storage::{DataType, Field, Schema, Value};
    use std::sync::Arc;

    fn table(n: usize, cap: usize) -> Table {
        let schema = Schema::new(vec![Field::new("v", DataType::Float64)]);
        let mut b = TableBuilder::with_block_capacity("t", schema, cap);
        for i in 0..n {
            b.push_row(&[Value::Float64(i as f64)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn row_sample_size_near_expectation() {
        let t = table(10_000, 128);
        let s = bernoulli_rows(&t, 0.1, 42);
        let n = s.num_rows() as f64;
        assert!((800.0..1200.0).contains(&n), "n = {n}");
    }

    #[test]
    fn row_sample_deterministic_by_seed() {
        let t = table(1000, 64);
        let a = bernoulli_rows(&t, 0.2, 7);
        let b = bernoulli_rows(&t, 0.2, 7);
        assert_eq!(a.num_rows(), b.num_rows());
        let c = bernoulli_rows(&t, 0.2, 8);
        // Different seed, almost surely different selection.
        assert_ne!(
            a.table.column_f64("v").unwrap(),
            c.table.column_f64("v").unwrap()
        );
    }

    #[test]
    fn block_sample_shares_arcs() {
        let t = table(1000, 100);
        let s = bernoulli_blocks(&t, 0.5, 3);
        // Every sampled block must be pointer-identical to a population block.
        for sb in s.table.blocks() {
            assert!(t.blocks().iter().any(|tb| Arc::ptr_eq(tb, sb)));
        }
        assert!(s.table.block_count() > 0);
        assert!(s.table.block_count() < t.block_count());
    }

    #[test]
    fn block_sample_estimates_unbiased_across_seeds() {
        let t = table(10_000, 100);
        let truth: f64 = t.column_f64("v").unwrap().iter().sum();
        let mut total = 0.0;
        let trials = 200;
        for seed in 0..trials {
            let s = bernoulli_blocks(&t, 0.2, seed);
            total += s.estimate_sum("v").unwrap().value;
        }
        let mean = total / trials as f64;
        assert!(
            (mean - truth).abs() / truth < 0.05,
            "mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn row_sample_estimates_unbiased_across_seeds() {
        let t = table(5_000, 100);
        let truth: f64 = t.column_f64("v").unwrap().iter().sum();
        let mut total = 0.0;
        let trials = 200;
        for seed in 0..trials {
            total += bernoulli_rows(&t, 0.1, seed)
                .estimate_sum("v")
                .unwrap()
                .value;
        }
        let mean = total / trials as f64;
        assert!((mean - truth).abs() / truth < 0.05);
    }

    #[test]
    fn full_rate_is_identity() {
        let t = table(100, 16);
        let s = bernoulli_blocks(&t, 1.0, 0);
        assert_eq!(s.num_rows(), 100);
        let e = s.estimate_sum("v").unwrap();
        assert_eq!(e.variance, 0.0);
        let s = bernoulli_rows(&t, 1.0, 0);
        assert_eq!(s.num_rows(), 100);
    }

    #[test]
    #[should_panic(expected = "rate must be in (0,1]")]
    fn rejects_zero_rate() {
        bernoulli_rows(&table(10, 4), 0.0, 0);
    }

    #[test]
    fn design_flags() {
        let t = table(100, 16);
        assert!(bernoulli_rows(&t, 0.5, 0).design.scans_everything());
        assert!(!bernoulli_blocks(&t, 0.5, 0).design.scans_everything());
    }
}
