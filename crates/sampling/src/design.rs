//! Samples, sampling designs, and design-correct estimation.
//!
//! A [`Sample`] bundles the sampled rows (as a [`Table`]) with the
//! [`SampleDesign`] that produced them. Estimation dispatches on the design:
//! the *same* observed rows yield different variances — and sometimes
//! different point estimates — under different designs, which is exactly the
//! statistical content of NSB's sampler taxonomy.
//!
//! All SUM/COUNT estimators are Horvitz–Thompson; AVG is the ratio
//! estimator with design-correct numerator/denominator covariance.

use aqp_stats::Estimate;
use aqp_storage::{Block, DataType, Field, Schema, StorageError, Table, TableBuilder, Value};

/// Per-row Horvitz–Thompson weights.
#[derive(Debug, Clone, PartialEq)]
pub enum RowWeights {
    /// Every sampled row carries the same weight (1 / inclusion probability).
    Uniform(f64),
    /// Row-specific weights, aligned with the sample table's global row ids.
    PerRow(Vec<f64>),
}

impl RowWeights {
    /// Weight of global sample row `i`.
    pub fn weight(&self, i: usize) -> f64 {
        match self {
            RowWeights::Uniform(w) => *w,
            RowWeights::PerRow(v) => v[i],
        }
    }
}

/// Metadata for one stratum of a stratified sample.
#[derive(Debug, Clone, PartialEq)]
pub struct StratumMeta {
    /// The stratum's key value.
    pub key: Value,
    /// Stratum size in the *population*.
    pub population_size: u64,
    /// First global row id of this stratum within the sample table.
    pub row_start: usize,
    /// One past the last global row id of this stratum.
    pub row_end: usize,
}

/// The sampling design that produced a sample.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleDesign {
    /// Row-level Bernoulli(q) sampling.
    BernoulliRows {
        /// Inclusion probability per row.
        rate: f64,
        /// Population row count.
        population_rows: u64,
    },
    /// Block-level Bernoulli(q) sampling (cluster design).
    BernoulliBlocks {
        /// Inclusion probability per block.
        rate: f64,
        /// Population block count.
        population_blocks: u64,
        /// Population row count.
        population_rows: u64,
    },
    /// Fixed-size simple random sample of rows (without replacement).
    FixedSizeRows {
        /// Population row count.
        population_rows: u64,
    },
    /// Fixed-size simple random sample of blocks.
    FixedSizeBlocks {
        /// Population block count.
        population_blocks: u64,
        /// Population row count.
        population_rows: u64,
    },
    /// Stratified sample over a grouping column.
    Stratified {
        /// The stratification column.
        column: String,
        /// Per-stratum metadata, in sample-table order.
        strata: Vec<StratumMeta>,
    },
    /// Universe (hash) sample on a key column: a key is in or out for *all*
    /// its rows, in every table sampled with the same salt.
    Universe {
        /// The key column.
        column: String,
        /// Fraction of the key universe included.
        rate: f64,
        /// Population row count.
        population_rows: u64,
    },
    /// Bi-level sampling: Bernoulli over blocks at `block_rate`, then
    /// Bernoulli over rows within surviving blocks at `row_rate`.
    BiLevel {
        /// First-stage (block) inclusion probability.
        block_rate: f64,
        /// Second-stage (within-block row) inclusion probability.
        row_rate: f64,
        /// Population block count.
        population_blocks: u64,
        /// Population row count.
        population_rows: u64,
    },
    /// Distinct sampler: the first `cap` rows of every key are kept with
    /// weight 1, the tail is Bernoulli(rate)-sampled.
    Distinct {
        /// Key columns.
        columns: Vec<String>,
        /// Rows per key kept deterministically.
        cap: usize,
        /// Sampling rate beyond the cap.
        rate: f64,
        /// Population row count.
        population_rows: u64,
    },
}

impl SampleDesign {
    /// Short human-readable name (used in experiment output).
    pub fn name(&self) -> &'static str {
        match self {
            SampleDesign::BernoulliRows { .. } => "bernoulli-rows",
            SampleDesign::BernoulliBlocks { .. } => "bernoulli-blocks",
            SampleDesign::FixedSizeRows { .. } => "srs-rows",
            SampleDesign::FixedSizeBlocks { .. } => "srs-blocks",
            SampleDesign::Stratified { .. } => "stratified",
            SampleDesign::Universe { .. } => "universe",
            SampleDesign::BiLevel { .. } => "bilevel",
            SampleDesign::Distinct { .. } => "distinct",
        }
    }

    /// Whether producing this design required touching every population
    /// block (NSB's system-efficiency axis): block designs skip blocks,
    /// everything else must at least read each row once.
    pub fn scans_everything(&self) -> bool {
        !matches!(
            self,
            SampleDesign::BernoulliBlocks { .. }
                | SampleDesign::FixedSizeBlocks { .. }
                | SampleDesign::BiLevel { .. }
        )
    }
}

/// A sampled table plus the design metadata needed for estimation.
#[derive(Debug, Clone)]
pub struct Sample {
    /// The sampled rows.
    pub table: Table,
    /// The design that produced them.
    pub design: SampleDesign,
    /// Horvitz–Thompson row weights.
    pub weights: RowWeights,
}

/// Sufficient statistics for a pair of HT totals (numerator f, denominator
/// g) under one design: estimates, variances, covariance, and the number of
/// independent sampling units.
#[derive(Debug, Clone, Copy)]
struct PairStats {
    est_f: f64,
    var_f: f64,
    est_g: f64,
    var_g: f64,
    cov: f64,
    units: u64,
}

impl Sample {
    /// Number of sampled rows.
    pub fn num_rows(&self) -> usize {
        self.table.row_count()
    }

    /// Estimates `SUM(f)` over the population, where `f` maps a sampled row
    /// to its contribution (0.0 for rows outside the aggregation domain).
    pub fn estimate_sum_with(&self, f: &mut dyn FnMut(&Block, usize) -> f64) -> Estimate {
        let stats = self.pair_stats(&mut |b, i| (f(b, i), 0.0));
        Estimate::new(stats.est_f, stats.var_f.max(0.0), stats.units)
    }

    /// Estimates the population row count of the domain selected by the
    /// indicator `ind` (1.0 in-domain, 0.0 out).
    pub fn estimate_count_with(&self, ind: &mut dyn FnMut(&Block, usize) -> f64) -> Estimate {
        self.estimate_sum_with(ind)
    }

    /// Estimates `AVG(f)` over the domain selected by `ind` via the ratio
    /// estimator `SUM(f·ind) / SUM(ind)` with design-correct covariance.
    pub fn estimate_avg_with(
        &self,
        f: &mut dyn FnMut(&Block, usize) -> f64,
        ind: &mut dyn FnMut(&Block, usize) -> f64,
    ) -> Estimate {
        let stats = self.pair_stats(&mut |b, i| {
            let w = ind(b, i);
            (f(b, i) * w, w)
        });
        let numerator = Estimate::new(stats.est_f, stats.var_f.max(0.0), stats.units);
        let denominator = Estimate::new(stats.est_g, stats.var_g.max(0.0), stats.units);
        numerator.ratio(&denominator, stats.cov)
    }

    /// Convenience: estimated population SUM of a column (NULL counts as 0).
    pub fn estimate_sum(&self, column: &str) -> Result<Estimate, StorageError> {
        let idx = self.table.schema().index_of(column)?;
        Ok(self.estimate_sum_with(&mut |b, i| b.column(idx).f64_at(i).unwrap_or(0.0)))
    }

    /// Convenience: estimated population row count.
    pub fn estimate_count(&self) -> Estimate {
        self.estimate_count_with(&mut |_, _| 1.0)
    }

    /// Convenience: estimated population AVG of a column (NULLs excluded).
    pub fn estimate_avg(&self, column: &str) -> Result<Estimate, StorageError> {
        let idx = self.table.schema().index_of(column)?;
        Ok(self.estimate_avg_with(
            &mut |b, i| b.column(idx).f64_at(i).unwrap_or(0.0),
            &mut |b, i| {
                if b.column(idx).is_null(i) {
                    0.0
                } else {
                    1.0
                }
            },
        ))
    }

    /// Materializes the sample as a table with an extra FLOAT64 weight
    /// column, so the exact engine can compute weighted (HT) aggregates —
    /// the middleware query-rewriting path.
    pub fn to_weighted_table(
        &self,
        name: impl Into<String>,
        weight_column: &str,
    ) -> Result<Table, StorageError> {
        let old = self.table.schema();
        let mut fields = old.fields().to_vec();
        fields.push(Field::new(weight_column, DataType::Float64));
        let mut builder = TableBuilder::with_block_capacity(
            name,
            Schema::new(fields),
            self.table.block_capacity(),
        );
        let mut global = 0usize;
        for (_, block) in self.table.iter_blocks() {
            for i in 0..block.len() {
                // Row materialization is fine here: this appends a computed
                // weight column (arity differs from the source block, so the
                // typed gather does not apply) and runs once per synopsis
                // build, not per query.
                let mut row = block.row(i);
                row.push(Value::Float64(self.weights.weight(global)));
                builder.push_row(&row)?;
                global += 1;
            }
        }
        Ok(builder.finish())
    }

    /// Computes per-design sufficient statistics for the HT totals of two
    /// row functions.
    fn pair_stats(&self, fg: &mut dyn FnMut(&Block, usize) -> (f64, f64)) -> PairStats {
        match &self.design {
            SampleDesign::BernoulliRows { rate, .. } => self.bernoulli_row_stats(*rate, fg),
            SampleDesign::Universe { column, rate, .. } => self.universe_stats(column, *rate, fg),
            SampleDesign::BernoulliBlocks { rate, .. } => self.bernoulli_block_stats(*rate, fg),
            SampleDesign::FixedSizeRows { population_rows } => {
                self.srs_row_stats(*population_rows, fg)
            }
            SampleDesign::FixedSizeBlocks {
                population_blocks, ..
            } => self.srs_block_stats(*population_blocks, fg),
            SampleDesign::Stratified { strata, .. } => self.stratified_stats(strata, fg),
            SampleDesign::BiLevel {
                block_rate,
                row_rate,
                ..
            } => self.bilevel_stats(*block_rate, *row_rate, fg),
            SampleDesign::Distinct { .. } => self.weighted_poisson_stats(fg),
        }
    }

    /// Bernoulli(q) over rows: HT with `Var = (1−q)/q²·Σx²`,
    /// `Cov = (1−q)/q²·Σfg`.
    fn bernoulli_row_stats(
        &self,
        q: f64,
        fg: &mut dyn FnMut(&Block, usize) -> (f64, f64),
    ) -> PairStats {
        let (mut sf, mut sf2, mut sg, mut sg2, mut sfg) = (0.0, 0.0, 0.0, 0.0, 0.0);
        let mut n = 0u64;
        for (_, block) in self.table.iter_blocks() {
            for i in 0..block.len() {
                let (x, y) = fg(block, i);
                sf += x;
                sf2 += x * x;
                sg += y;
                sg2 += y * y;
                sfg += x * y;
                n += 1;
            }
        }
        let c = (1.0 - q) / (q * q);
        PairStats {
            est_f: sf / q,
            var_f: c * sf2,
            est_g: sg / q,
            var_g: c * sg2,
            cov: c * sfg,
            units: n,
        }
    }

    /// Bernoulli(q) over blocks: same HT algebra with block totals as the
    /// sampling units — the within-block correlation NSB warns about lives
    /// entirely in these totals.
    fn bernoulli_block_stats(
        &self,
        q: f64,
        fg: &mut dyn FnMut(&Block, usize) -> (f64, f64),
    ) -> PairStats {
        let (mut sf, mut sf2, mut sg, mut sg2, mut sfg) = (0.0, 0.0, 0.0, 0.0, 0.0);
        let mut m = 0u64;
        for (_, block) in self.table.iter_blocks() {
            let (mut tf, mut tg) = (0.0, 0.0);
            for i in 0..block.len() {
                let (x, y) = fg(block, i);
                tf += x;
                tg += y;
            }
            sf += tf;
            sf2 += tf * tf;
            sg += tg;
            sg2 += tg * tg;
            sfg += tf * tg;
            m += 1;
        }
        let c = (1.0 - q) / (q * q);
        PairStats {
            est_f: sf / q,
            var_f: c * sf2,
            est_g: sg / q,
            var_g: c * sg2,
            cov: c * sfg,
            units: m,
        }
    }

    /// SRS without replacement over rows: `T̂ = N·x̄` with fpc, ratio
    /// covariance from the sample covariance of (f, g).
    fn srs_row_stats(
        &self,
        population: u64,
        fg: &mut dyn FnMut(&Block, usize) -> (f64, f64),
    ) -> PairStats {
        let mut xs = Vec::with_capacity(self.num_rows());
        let mut ys = Vec::with_capacity(self.num_rows());
        for (_, block) in self.table.iter_blocks() {
            for i in 0..block.len() {
                let (x, y) = fg(block, i);
                xs.push(x);
                ys.push(y);
            }
        }
        srs_pair(&xs, &ys, population)
    }

    /// SRS over blocks (cluster sampling): block totals are the units.
    fn srs_block_stats(
        &self,
        population_blocks: u64,
        fg: &mut dyn FnMut(&Block, usize) -> (f64, f64),
    ) -> PairStats {
        let mut xs = Vec::with_capacity(self.table.block_count());
        let mut ys = Vec::with_capacity(self.table.block_count());
        for (_, block) in self.table.iter_blocks() {
            let (mut tf, mut tg) = (0.0, 0.0);
            for i in 0..block.len() {
                let (x, y) = fg(block, i);
                tf += x;
                tg += y;
            }
            xs.push(tf);
            ys.push(tg);
        }
        srs_pair(&xs, &ys, population_blocks)
    }

    /// Stratified design: independent SRS inside each stratum; totals,
    /// variances, and covariances add across strata.
    fn stratified_stats(
        &self,
        strata: &[StratumMeta],
        fg: &mut dyn FnMut(&Block, usize) -> (f64, f64),
    ) -> PairStats {
        let mut total = PairStats {
            est_f: 0.0,
            var_f: 0.0,
            est_g: 0.0,
            var_g: 0.0,
            cov: 0.0,
            units: 0,
        };
        for s in strata {
            let count = s.row_end - s.row_start;
            if count == 0 {
                continue;
            }
            let mut xs = Vec::with_capacity(count);
            let mut ys = Vec::with_capacity(count);
            for global in s.row_start..s.row_end {
                let (bi, ri) = self.table.locate_row(global);
                let block = self.table.block(bi);
                let (x, y) = fg(block, ri);
                xs.push(x);
                ys.push(y);
            }
            let part = srs_pair(&xs, &ys, s.population_size);
            total.est_f += part.est_f;
            total.var_f += part.var_f;
            total.est_g += part.est_g;
            total.var_g += part.var_g;
            total.cov += part.cov;
            total.units += part.units;
        }
        total
    }

    /// Universe sampling: the sampled *keys* are the independent units; all
    /// rows of a key enter together, so totals are per-key.
    fn universe_stats(
        &self,
        column: &str,
        q: f64,
        fg: &mut dyn FnMut(&Block, usize) -> (f64, f64),
    ) -> PairStats {
        use std::collections::HashMap;
        let idx = self
            .table
            .schema()
            .index_of(column)
            .expect("universe key column exists in the sample by construction");
        let mut per_key: HashMap<u64, (f64, f64)> = HashMap::new();
        for (_, block) in self.table.iter_blocks() {
            let col = block.column(idx);
            for i in 0..block.len() {
                let h = aqp_expr::stable_hash64(&col.get(i));
                let e = per_key.entry(h).or_insert((0.0, 0.0));
                let (x, y) = fg(block, i);
                e.0 += x;
                e.1 += y;
            }
        }
        let (mut sf, mut sf2, mut sg, mut sg2, mut sfg) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for (tf, tg) in per_key.values() {
            sf += tf;
            sf2 += tf * tf;
            sg += tg;
            sg2 += tg * tg;
            sfg += tf * tg;
        }
        let c = (1.0 - q) / (q * q);
        PairStats {
            est_f: sf / q,
            var_f: c * sf2,
            est_g: sg / q,
            var_g: c * sg2,
            cov: c * sfg,
            units: per_key.len() as u64,
        }
    }

    /// Two-stage Bernoulli (bi-level): HT with
    /// `Var ≈ (1−q_b)/q_b²·Σ_j T̂_j² + (1−q_r)/(q_b·q_r)²·Σ_i x_i²`,
    /// where `T̂_j = t_j/q_r` are within-block-expanded block totals. The
    /// first term slightly over-counts (it includes within-block noise),
    /// making the interval conservative.
    fn bilevel_stats(
        &self,
        qb: f64,
        qr: f64,
        fg: &mut dyn FnMut(&Block, usize) -> (f64, f64),
    ) -> PairStats {
        let (mut sf, mut sg) = (0.0, 0.0);
        let (mut bf2, mut bg2, mut bfg) = (0.0, 0.0, 0.0); // Σ block-total products
        let (mut rf2, mut rg2, mut rfg) = (0.0, 0.0, 0.0); // Σ per-row products
        let mut m = 0u64;
        for (_, block) in self.table.iter_blocks() {
            let (mut tf, mut tg) = (0.0, 0.0);
            for i in 0..block.len() {
                let (x, y) = fg(block, i);
                tf += x;
                tg += y;
                rf2 += x * x;
                rg2 += y * y;
                rfg += x * y;
            }
            let (ef, eg) = (tf / qr, tg / qr);
            bf2 += ef * ef;
            bg2 += eg * eg;
            bfg += ef * eg;
            sf += tf;
            sg += tg;
            m += 1;
        }
        let q = qb * qr;
        let c_block = (1.0 - qb) / (qb * qb);
        let c_row = (1.0 - qr) / (q * q);
        PairStats {
            est_f: sf / q,
            var_f: c_block * bf2 + c_row * rf2,
            est_g: sg / q,
            var_g: c_block * bg2 + c_row * rg2,
            cov: c_block * bfg + c_row * rfg,
            units: m,
        }
    }

    /// Poisson sampling with per-row inclusion probabilities (the distinct
    /// sampler): `T̂ = Σwx`, `Var = Σw(w−1)x²` (zero for cap rows, w = 1).
    fn weighted_poisson_stats(&self, fg: &mut dyn FnMut(&Block, usize) -> (f64, f64)) -> PairStats {
        let (mut sf, mut vf, mut sg, mut vg, mut cv) = (0.0, 0.0, 0.0, 0.0, 0.0);
        let mut n = 0u64;
        let mut global = 0usize;
        for (_, block) in self.table.iter_blocks() {
            for i in 0..block.len() {
                let w = self.weights.weight(global);
                let (x, y) = fg(block, i);
                sf += w * x;
                sg += w * y;
                let excess = w * (w - 1.0);
                vf += excess * x * x;
                vg += excess * y * y;
                cv += excess * x * y;
                n += 1;
                global += 1;
            }
        }
        PairStats {
            est_f: sf,
            var_f: vf,
            est_g: sg,
            var_g: vg,
            cov: cv,
            units: n,
        }
    }
}

/// SRS-without-replacement sufficient statistics for a pair of row
/// functions: totals `N·x̄` with fpc'd variances and covariance.
fn srs_pair(xs: &[f64], ys: &[f64], population: u64) -> PairStats {
    let n = xs.len();
    let big_n = population as f64;
    if n == 0 {
        return PairStats {
            est_f: 0.0,
            var_f: f64::MAX,
            est_g: 0.0,
            var_g: f64::MAX,
            cov: 0.0,
            units: 0,
        };
    }
    let nf = n as f64;
    let mean_x: f64 = xs.iter().sum::<f64>() / nf;
    let mean_y: f64 = ys.iter().sum::<f64>() / nf;
    let (mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0);
    for (x, y) in xs.iter().zip(ys) {
        let (dx, dy) = (x - mean_x, y - mean_y);
        sxx += dx * dx;
        syy += dy * dy;
        sxy += dx * dy;
    }
    let fpc = (1.0 - nf / big_n).max(0.0);
    let (var_x, var_y, cov_xy) = if fpc == 0.0 {
        // Census: no sampling variance regardless of sample size.
        (0.0, 0.0, 0.0)
    } else if n >= 2 {
        let d = nf - 1.0;
        (sxx / d, syy / d, sxy / d)
    } else {
        // A single unit cannot estimate dispersion.
        (f64::MAX, f64::MAX, 0.0)
    };
    let scale = big_n * big_n * fpc / nf;
    PairStats {
        est_f: big_n * mean_x,
        var_f: if var_x == f64::MAX {
            f64::MAX
        } else {
            scale * var_x
        },
        est_g: big_n * mean_y,
        var_g: if var_y == f64::MAX {
            f64::MAX
        } else {
            scale * var_y
        },
        cov: if n >= 2 { scale * cov_xy } else { 0.0 },
        units: n as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqp_storage::{Field, Schema, TableBuilder};

    fn small_table(values: &[f64], cap: usize) -> Table {
        let schema = Schema::new(vec![Field::new("v", DataType::Float64)]);
        let mut b = TableBuilder::with_block_capacity("t", schema, cap);
        for &v in values {
            b.push_row(&[Value::Float64(v)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn bernoulli_rows_ht_estimates() {
        // A "sample" of 3 rows drawn at rate 0.5 from a 6-row population.
        let s = Sample {
            table: small_table(&[1.0, 2.0, 3.0], 2),
            design: SampleDesign::BernoulliRows {
                rate: 0.5,
                population_rows: 6,
            },
            weights: RowWeights::Uniform(2.0),
        };
        let sum = s.estimate_sum("v").unwrap();
        assert!((sum.value - 12.0).abs() < 1e-12);
        // Var = (0.5/0.25)·(1+4+9) = 28.
        assert!((sum.variance - 28.0).abs() < 1e-12);
        let cnt = s.estimate_count();
        assert!((cnt.value - 6.0).abs() < 1e-12);
        let avg = s.estimate_avg("v").unwrap();
        assert!((avg.value - 2.0).abs() < 1e-12);
        assert!(avg.variance.is_finite());
    }

    #[test]
    fn bernoulli_blocks_uses_block_totals() {
        // Two blocks of two rows each, rate 0.5.
        let s = Sample {
            table: small_table(&[1.0, 2.0, 3.0, 4.0], 2),
            design: SampleDesign::BernoulliBlocks {
                rate: 0.5,
                population_blocks: 4,
                population_rows: 8,
            },
            weights: RowWeights::Uniform(2.0),
        };
        let sum = s.estimate_sum("v").unwrap();
        assert!((sum.value - 20.0).abs() < 1e-12);
        // Block totals 3 and 7: Var = 2·(9+49) = 116.
        assert!((sum.variance - 116.0).abs() < 1e-12);
        assert_eq!(sum.n, 2); // units are blocks
    }

    #[test]
    fn block_design_counts_blocks_not_rows() {
        let s_rows = Sample {
            table: small_table(&[1.0, 2.0, 3.0, 4.0], 2),
            design: SampleDesign::BernoulliRows {
                rate: 0.5,
                population_rows: 8,
            },
            weights: RowWeights::Uniform(2.0),
        };
        let s_blocks = Sample {
            table: small_table(&[1.0, 2.0, 3.0, 4.0], 2),
            design: SampleDesign::BernoulliBlocks {
                rate: 0.5,
                population_blocks: 4,
                population_rows: 8,
            },
            weights: RowWeights::Uniform(2.0),
        };
        assert_eq!(s_rows.estimate_count().n, 4);
        assert_eq!(s_blocks.estimate_count().n, 2);
        // Same point estimate either way (HT is design-unbiased).
        assert_eq!(
            s_rows.estimate_count().value,
            s_blocks.estimate_count().value
        );
    }

    #[test]
    fn srs_rows_with_fpc() {
        let s = Sample {
            table: small_table(&[1.0, 2.0, 3.0, 4.0, 5.0], 8),
            design: SampleDesign::FixedSizeRows {
                population_rows: 10,
            },
            weights: RowWeights::Uniform(2.0),
        };
        let sum = s.estimate_sum("v").unwrap();
        assert!((sum.value - 30.0).abs() < 1e-12);
        // s² = 2.5; Var = 100·0.5·2.5/5 = 25.
        assert!((sum.variance - 25.0).abs() < 1e-12);
        // Census: zero variance.
        let census = Sample {
            table: small_table(&[1.0, 2.0], 8),
            design: SampleDesign::FixedSizeRows { population_rows: 2 },
            weights: RowWeights::Uniform(1.0),
        };
        assert_eq!(census.estimate_sum("v").unwrap().variance, 0.0);
    }

    #[test]
    fn srs_blocks_cluster_estimate() {
        // Blocks of 2: totals 3, 7; M = 4 blocks in population.
        let s = Sample {
            table: small_table(&[1.0, 2.0, 3.0, 4.0], 2),
            design: SampleDesign::FixedSizeBlocks {
                population_blocks: 4,
                population_rows: 8,
            },
            weights: RowWeights::Uniform(2.0),
        };
        let sum = s.estimate_sum("v").unwrap();
        // T̂ = 4·mean(3,7) = 20.
        assert!((sum.value - 20.0).abs() < 1e-12);
        // s² of totals = 8; Var = 16·0.5·8/2 = 32.
        assert!((sum.variance - 32.0).abs() < 1e-12);
    }

    #[test]
    fn stratified_sums_across_strata() {
        // Stratum A: rows [0,2) pop 4; stratum B: rows [2,3) pop 2.
        let s = Sample {
            table: small_table(&[10.0, 12.0, 100.0], 8),
            design: SampleDesign::Stratified {
                column: "g".into(),
                strata: vec![
                    StratumMeta {
                        key: Value::str("a"),
                        population_size: 4,
                        row_start: 0,
                        row_end: 2,
                    },
                    StratumMeta {
                        key: Value::str("b"),
                        population_size: 2,
                        row_start: 2,
                        row_end: 3,
                    },
                ],
            },
            weights: RowWeights::PerRow(vec![2.0, 2.0, 2.0]),
        };
        let sum = s.estimate_sum("v").unwrap();
        // 4·11 + 2·100 = 244.
        assert!((sum.value - 244.0).abs() < 1e-12);
        // Stratum B has one unit: dispersion unobservable → huge variance.
        assert_eq!(sum.variance, f64::MAX);
    }

    #[test]
    fn universe_groups_by_key() {
        // Keys: two rows of key 1, one row of key 2; rate 0.5.
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Float64),
        ]);
        let mut b = TableBuilder::with_block_capacity("t", schema, 8);
        b.push_row(&[Value::Int64(1), Value::Float64(5.0)]).unwrap();
        b.push_row(&[Value::Int64(1), Value::Float64(7.0)]).unwrap();
        b.push_row(&[Value::Int64(2), Value::Float64(3.0)]).unwrap();
        let s = Sample {
            table: b.finish(),
            design: SampleDesign::Universe {
                column: "k".into(),
                rate: 0.5,
                population_rows: 6,
            },
            weights: RowWeights::Uniform(2.0),
        };
        let sum = s.estimate_sum("v").unwrap();
        assert!((sum.value - 30.0).abs() < 1e-12);
        // Key totals 12 and 3: Var = 2·(144+9) = 306 — the per-key
        // clustering is what inflates join-friendly designs.
        assert!((sum.variance - 306.0).abs() < 1e-12);
        assert_eq!(sum.n, 2); // two key-units
    }

    #[test]
    fn distinct_poisson_weights() {
        // Three rows: weights 1 (capped), 1 (capped), 4 (tail at rate 1/4).
        let s = Sample {
            table: small_table(&[10.0, 20.0, 8.0], 8),
            design: SampleDesign::Distinct {
                columns: vec!["v".into()],
                cap: 2,
                rate: 0.25,
                population_rows: 100,
            },
            weights: RowWeights::PerRow(vec![1.0, 1.0, 4.0]),
        };
        let sum = s.estimate_sum("v").unwrap();
        assert!((sum.value - (10.0 + 20.0 + 32.0)).abs() < 1e-12);
        // Only the tail row contributes variance: 4·3·64 = 768.
        assert!((sum.variance - 768.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_has_unusable_variance() {
        let s = Sample {
            table: small_table(&[], 4),
            design: SampleDesign::FixedSizeRows {
                population_rows: 100,
            },
            weights: RowWeights::Uniform(1.0),
        };
        let e = s.estimate_sum("v").unwrap();
        assert_eq!(e.value, 0.0);
        assert_eq!(e.variance, f64::MAX);
    }

    #[test]
    fn weighted_table_materialization() {
        let s = Sample {
            table: small_table(&[1.0, 2.0], 4),
            design: SampleDesign::BernoulliRows {
                rate: 0.25,
                population_rows: 8,
            },
            weights: RowWeights::Uniform(4.0),
        };
        let wt = s.to_weighted_table("t_w", "__weight").unwrap();
        assert_eq!(wt.schema().names(), vec!["v", "__weight"]);
        assert_eq!(wt.row(0)[1], Value::Float64(4.0));
        assert_eq!(wt.row_count(), 2);
    }

    #[test]
    fn design_metadata() {
        let d = SampleDesign::BernoulliBlocks {
            rate: 0.1,
            population_blocks: 10,
            population_rows: 100,
        };
        assert_eq!(d.name(), "bernoulli-blocks");
        assert!(!d.scans_everything());
        let d = SampleDesign::BernoulliRows {
            rate: 0.1,
            population_rows: 100,
        };
        assert!(d.scans_everything());
    }

    #[test]
    fn row_weights_accessors() {
        assert_eq!(RowWeights::Uniform(3.0).weight(17), 3.0);
        assert_eq!(RowWeights::PerRow(vec![1.0, 2.0]).weight(1), 2.0);
    }
}

#[cfg(test)]
mod design_property_tests {
    use super::*;
    use crate::bernoulli::{bernoulli_blocks, bernoulli_rows};
    use crate::universe::universe_sample;
    use aqp_storage::{Field, Schema, TableBuilder};
    use proptest::prelude::*;

    fn keyed_table(values: &[(i64, f64)], cap: usize) -> Table {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Float64),
        ]);
        let mut b = TableBuilder::with_block_capacity("p", schema, cap);
        for &(k, v) in values {
            b.push_row(&[Value::Int64(k), Value::Float64(v)]).unwrap();
        }
        b.finish()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// HT count weights reconstruct the sample's own weighted size:
        /// Σ 1/π over sampled rows == estimate_count().value for every
        /// uniform design.
        #[test]
        fn weights_consistent_with_count_estimate(
            values in prop::collection::vec((-100i64..100, -1e4f64..1e4), 1..300),
            cap in 1usize..32,
            seed in any::<u64>(),
        ) {
            let t = keyed_table(&values, cap);
            for sample in [
                bernoulli_rows(&t, 0.3, seed),
                bernoulli_blocks(&t, 0.3, seed),
                universe_sample(&t, "k", 0.3, seed).unwrap(),
            ] {
                let weight_mass: f64 =
                    (0..sample.num_rows()).map(|i| sample.weights.weight(i)).sum();
                let est = sample.estimate_count().value;
                prop_assert!(
                    (weight_mass - est).abs() < 1e-6 * (1.0 + est.abs()),
                    "{}: weight mass {weight_mass} vs estimate {est}",
                    sample.design.name()
                );
            }
        }

        /// Universe samples of the same table with the same salt are
        /// identical; with the complementary threshold they partition.
        #[test]
        fn universe_determinism(
            values in prop::collection::vec((0i64..500, 0.0f64..10.0), 1..200),
            salt in any::<u64>(),
        ) {
            let t = keyed_table(&values, 16);
            let a = universe_sample(&t, "k", 0.4, salt).unwrap();
            let b = universe_sample(&t, "k", 0.4, salt).unwrap();
            prop_assert_eq!(a.num_rows(), b.num_rows());
            prop_assert_eq!(
                a.table.column_f64("v").unwrap(),
                b.table.column_f64("v").unwrap()
            );
            // A larger rate is a superset (nested samples).
            let wider = universe_sample(&t, "k", 0.8, salt).unwrap();
            prop_assert!(wider.num_rows() >= a.num_rows());
        }

        /// Weighted-table materialization preserves row count and schema.
        #[test]
        fn weighted_table_shape(
            values in prop::collection::vec((0i64..50, -1e3f64..1e3), 1..100),
            seed in any::<u64>(),
        ) {
            let t = keyed_table(&values, 8);
            let s = bernoulli_rows(&t, 0.5, seed);
            let wt = s.to_weighted_table("w", "__w").unwrap();
            prop_assert_eq!(wt.row_count(), s.num_rows());
            prop_assert_eq!(wt.schema().len(), t.schema().len() + 1);
        }
    }
}
