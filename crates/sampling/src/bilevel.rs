//! Bi-level Bernoulli sampling (Haas & König 2004): Bernoulli over
//! blocks, then Bernoulli over rows *within* the selected blocks.
//!
//! Block sampling gets the I/O economics right but pays a statistical
//! price when rows cluster within blocks; row sampling has the opposite
//! profile. Bi-level sampling interpolates: I/O cost follows the block
//! rate `q_b`, while the within-block row rate `q_r` breaks up intra-block
//! correlation. At `q_r = 1` it degenerates to pure block sampling; as
//! `q_b → 1` it approaches pure row sampling.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use aqp_storage::{Table, TableBuilder};

use crate::design::{RowWeights, Sample, SampleDesign};

/// Draws a bi-level sample: each block survives with probability
/// `block_rate`; each row of a surviving block with probability
/// `row_rate`. Only surviving blocks are ever read.
///
/// # Panics
/// Panics if either rate is outside `(0, 1]`.
pub fn bilevel_sample(table: &Table, block_rate: f64, row_rate: f64, seed: u64) -> Sample {
    assert!(
        block_rate > 0.0 && block_rate <= 1.0,
        "block rate must be in (0,1], got {block_rate}"
    );
    assert!(
        row_rate > 0.0 && row_rate <= 1.0,
        "row rate must be in (0,1], got {row_rate}"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = TableBuilder::with_block_capacity(
        format!("{}__bilevel", table.name()),
        table.schema().as_ref().clone(),
        table.block_capacity(),
    );
    let mut blocks_read = 0u64;
    for (_, block) in table.iter_blocks() {
        if rng.gen::<f64>() >= block_rate {
            continue; // block skipped: never read
        }
        blocks_read += 1;
        let mut any = false;
        for i in 0..block.len() {
            if rng.gen::<f64>() < row_rate {
                builder.gather_row(block, i);
                any = true;
            }
        }
        // Preserve block boundaries in the sample so the two-stage
        // variance can group rows by their source block: seal the current
        // partial block after each source block with any sampled rows.
        if any {
            builder.seal_block();
        }
    }
    let _ = blocks_read;
    Sample {
        table: builder.finish(),
        design: SampleDesign::BiLevel {
            block_rate,
            row_rate,
            population_blocks: table.block_count() as u64,
            population_rows: table.row_count() as u64,
        },
        weights: RowWeights::Uniform(1.0 / (block_rate * row_rate)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bernoulli::{bernoulli_blocks, bernoulli_rows};
    use aqp_storage::{DataType, Field, Schema, Value};

    /// Blocks with strong internal correlation: block j holds values near
    /// 10·j, so rows within a block are nearly identical.
    fn clustered_table(blocks: usize, per_block: usize) -> Table {
        let schema = Schema::new(vec![Field::new("v", DataType::Float64)]);
        let mut b = TableBuilder::with_block_capacity("t", schema, per_block);
        for j in 0..blocks {
            for i in 0..per_block {
                b.push_row(&[Value::Float64(10.0 * j as f64 + (i % 3) as f64 * 0.1)])
                    .unwrap();
            }
        }
        b.finish()
    }

    #[test]
    fn sample_size_matches_product_rate() {
        let t = clustered_table(500, 100);
        let s = bilevel_sample(&t, 0.2, 0.5, 3);
        let frac = s.num_rows() as f64 / 50_000.0;
        assert!((frac - 0.1).abs() < 0.02, "sampled fraction {frac}");
    }

    #[test]
    fn unbiased_across_seeds() {
        let t = clustered_table(200, 50);
        let truth: f64 = t.column_f64("v").unwrap().iter().sum();
        let mut total = 0.0;
        let trials = 300;
        for seed in 0..trials {
            total += bilevel_sample(&t, 0.3, 0.4, seed)
                .estimate_sum("v")
                .unwrap()
                .value;
        }
        let mean = total / trials as f64;
        assert!(
            (mean - truth).abs() / truth < 0.03,
            "mean {mean} truth {truth}"
        );
    }

    #[test]
    fn coverage_at_least_nominal() {
        let t = clustered_table(300, 64);
        let truth: f64 = t.column_f64("v").unwrap().iter().sum();
        let mut hits = 0;
        let trials = 300;
        for seed in 0..trials {
            let s = bilevel_sample(&t, 0.25, 0.5, seed);
            if s.estimate_sum("v").unwrap().ci(0.95).contains(truth) {
                hits += 1;
            }
        }
        let coverage = hits as f64 / trials as f64;
        // The two-stage variance estimate is conservative: coverage ≥ 95%.
        assert!(coverage >= 0.93, "coverage {coverage}");
    }

    #[test]
    fn degenerates_to_block_sampling_at_full_row_rate() {
        let t = clustered_table(100, 32);
        let bi = bilevel_sample(&t, 0.5, 1.0, 9);
        let blk = bernoulli_blocks(&t, 0.5, 9);
        // Same seed stream prefix won't match exactly (different rng
        // consumption), but design semantics should agree: both carry
        // whole blocks.
        for (_, b) in bi.table.iter_blocks() {
            assert_eq!(b.len(), 32, "full row rate keeps whole blocks");
        }
        assert_eq!(blk.num_rows() % 32, 0);
    }

    #[test]
    fn beats_block_sampling_on_clustered_data_at_equal_rows() {
        // Equal expected row budget (5%): pure block sampling takes few,
        // internally-redundant blocks; bi-level spreads the same rows over
        // 4x as many blocks → lower variance on clustered data.
        let t = clustered_table(400, 100);
        let block_var = bernoulli_blocks(&t, 0.05, 3)
            .estimate_sum("v")
            .unwrap()
            .variance;
        let bilevel_var = bilevel_sample(&t, 0.2, 0.25, 3)
            .estimate_sum("v")
            .unwrap()
            .variance;
        assert!(
            bilevel_var < block_var,
            "bi-level {bilevel_var} should beat pure block {block_var} on clustered data"
        );
    }

    #[test]
    fn io_cost_follows_block_rate() {
        // The sample's blocks all descend from the ~q_b fraction of source
        // blocks; rows touched during the build ∝ q_b, not q_b·q_r.
        let t = clustered_table(1000, 64);
        let s = bilevel_sample(&t, 0.1, 0.2, 5);
        assert!(
            s.table.block_count() <= 150,
            "at most ~10% of source blocks contribute"
        );
        // Row sampling at the same effective rate reads everything; the
        // design should still mark bi-level as block-skipping.
        assert!(!s.design.scans_everything());
        let row_equiv = bernoulli_rows(&t, 0.02, 5);
        assert!(row_equiv.design.scans_everything());
    }

    #[test]
    #[should_panic(expected = "row rate must be in (0,1]")]
    fn rejects_bad_rate() {
        bilevel_sample(&clustered_table(2, 4), 0.5, 0.0, 0);
    }
}
