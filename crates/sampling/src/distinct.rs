//! The distinct sampler (Quickr): guaranteed coverage of every key.
//!
//! Uniform sampling starves rare keys — a group with 5 rows is simply
//! absent from a 1% sample. The distinct sampler keeps the **first `cap`
//! rows of every distinct key combination with probability 1** (weight 1)
//! and Bernoulli-samples the remainder at `rate` (weight `1/rate`). Every
//! key that exists in the data therefore exists in the sample, while
//! heavy keys are still thinned aggressively. This is the sampler NSB
//! credits with making group-by answerable at query time.

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use aqp_expr::stable_hash64;
use aqp_storage::{StorageError, Table, TableBuilder};

use crate::design::{RowWeights, Sample, SampleDesign};

/// Draws a distinct sample over the composite key of `key_columns`.
///
/// # Panics
/// Panics if `cap == 0` or `rate` outside `(0, 1]`.
pub fn distinct_sample(
    table: &Table,
    key_columns: &[&str],
    cap: usize,
    rate: f64,
    seed: u64,
) -> Result<Sample, StorageError> {
    assert!(cap > 0, "cap must be positive");
    assert!(
        rate > 0.0 && rate <= 1.0,
        "rate must be in (0,1], got {rate}"
    );
    let indices: Vec<usize> = key_columns
        .iter()
        .map(|c| table.schema().index_of(c))
        .collect::<Result<_, _>>()?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut seen: HashMap<u64, usize> = HashMap::new();
    let mut builder = TableBuilder::with_block_capacity(
        format!("{}__distinct", table.name()),
        table.schema().as_ref().clone(),
        table.block_capacity(),
    );
    let mut weights = Vec::new();
    for (_, block) in table.iter_blocks() {
        for ri in 0..block.len() {
            // Composite key hash (order-sensitive chain).
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &ci in &indices {
                h = aqp_expr::hash::mix64(h ^ stable_hash64(&block.column(ci).get(ri)));
            }
            let count = seen.entry(h).or_insert(0);
            if *count < cap {
                *count += 1;
                builder.gather_row(block, ri);
                weights.push(1.0);
            } else if rng.gen::<f64>() < rate {
                builder.gather_row(block, ri);
                weights.push(1.0 / rate);
            }
        }
    }
    Ok(Sample {
        table: builder.finish(),
        design: SampleDesign::Distinct {
            columns: key_columns.iter().map(|s| s.to_string()).collect(),
            cap,
            rate,
            population_rows: table.row_count() as u64,
        },
        weights: RowWeights::PerRow(weights),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqp_storage::{DataType, Field, Schema, Value};
    use std::collections::HashSet;

    /// Zipf-ish table: key k has about 1000/k rows.
    fn skewed_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Float64),
        ]);
        let mut b = TableBuilder::with_block_capacity("t", schema, 64);
        for k in 1..=50i64 {
            for i in 0..(1000 / k) {
                b.push_row(&[Value::Int64(k), Value::Float64(i as f64)])
                    .unwrap();
            }
        }
        b.finish()
    }

    #[test]
    fn every_key_survives() {
        let t = skewed_table();
        let s = distinct_sample(&t, &["k"], 3, 0.01, 1).unwrap();
        let keys: HashSet<i64> = s
            .table
            .column_f64("k")
            .unwrap()
            .iter()
            .map(|&x| x as i64)
            .collect();
        assert_eq!(keys.len(), 50, "all 50 keys must be present");
    }

    #[test]
    fn heavy_keys_are_thinned() {
        let t = skewed_table();
        let s = distinct_sample(&t, &["k"], 3, 0.02, 1).unwrap();
        let mut counts = std::collections::HashMap::new();
        for k in s.table.column_f64("k").unwrap() {
            *counts.entry(k as i64).or_insert(0usize) += 1;
        }
        // Key 1 has 1000 rows; cap 3 + ~2% of 997 ≈ 23 rows, far below 1000.
        assert!(counts[&1] < 100, "key 1 kept {} rows", counts[&1]);
        // Rarest key (50) has 20 rows, keeps at least the cap.
        assert!(counts[&50] >= 3);
    }

    #[test]
    fn count_estimate_unbiased_across_seeds() {
        let t = skewed_table();
        let truth = t.row_count() as f64;
        let mut total = 0.0;
        let trials = 100;
        for seed in 0..trials {
            total += distinct_sample(&t, &["k"], 3, 0.05, seed)
                .unwrap()
                .estimate_count()
                .value;
        }
        let mean = total / trials as f64;
        assert!(
            (mean - truth).abs() / truth < 0.03,
            "mean {mean} truth {truth}"
        );
    }

    #[test]
    fn per_group_counts_recoverable() {
        // The whole point: per-key estimated counts are usable even for
        // rare keys.
        let t = skewed_table();
        let s = distinct_sample(&t, &["k"], 5, 0.1, 3).unwrap();
        let kidx = s.table.schema().index_of("k").unwrap();
        // Estimate count of key 40 (population 1000/40 = 25 rows).
        let est = s.estimate_count_with(&mut |b, i| {
            if b.column(kidx).get(i) == Value::Int64(40) {
                1.0
            } else {
                0.0
            }
        });
        assert!(est.value >= 5.0, "estimate {}", est.value);
        assert!((est.value - 25.0).abs() <= 20.0);
    }

    #[test]
    fn composite_keys() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Str),
        ]);
        let mut bld = TableBuilder::new("t", schema);
        for i in 0..100i64 {
            bld.push_row(&[
                Value::Int64(i % 4),
                Value::str(if i % 2 == 0 { "x" } else { "y" }),
            ])
            .unwrap();
        }
        let t = bld.finish();
        let s = distinct_sample(&t, &["a", "b"], 2, 0.5, 0).unwrap();
        // 4 × "one-parity-each" = 4 combos actually occur (a%2 determines b).
        let mut combos = HashSet::new();
        let (ai, bi) = (
            s.table.schema().index_of("a").unwrap(),
            s.table.schema().index_of("b").unwrap(),
        );
        for (_, blk) in s.table.iter_blocks() {
            for i in 0..blk.len() {
                combos.insert((
                    format!("{}", blk.column(ai).get(i)),
                    format!("{}", blk.column(bi).get(i)),
                ));
            }
        }
        assert_eq!(combos.len(), 4);
    }

    #[test]
    fn weights_are_one_or_inverse_rate() {
        let t = skewed_table();
        let s = distinct_sample(&t, &["k"], 3, 0.25, 2).unwrap();
        if let RowWeights::PerRow(w) = &s.weights {
            assert!(w.iter().all(|&x| x == 1.0 || (x - 4.0).abs() < 1e-12));
            assert!(w.contains(&1.0));
            assert!(w.iter().any(|&x| (x - 4.0).abs() < 1e-12));
        } else {
            panic!("distinct sampler must carry per-row weights");
        }
    }

    #[test]
    fn missing_column_errors() {
        let t = skewed_table();
        assert!(distinct_sample(&t, &["zzz"], 1, 0.5, 0).is_err());
    }
}
