//! Stratified sampling with proportional, Neyman, equal, and congressional
//! allocation.
//!
//! Stratified samples are the heart of the *offline* AQP systems NSB
//! surveys (AQUA's congressional samples, STRAT, BlinkDB): by giving every
//! group a guaranteed allocation they fix uniform sampling's missing-group
//! problem — at the price of committing, ahead of time, to one
//! stratification column set. E3 and E8 measure both sides of that trade.

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use aqp_stats::Moments;
use aqp_storage::{StorageError, Table, TableBuilder, Value};

use crate::design::{RowWeights, Sample, SampleDesign, StratumMeta};

/// How the row budget is split across strata.
#[derive(Debug, Clone, PartialEq)]
pub enum Allocation {
    /// `n_h ∝ N_h` — mirrors the population; small groups stay small.
    Proportional {
        /// Total row budget.
        budget: usize,
    },
    /// `n_h ∝ N_h·σ_h` of a measure column — minimizes variance of the
    /// stratified mean of that measure.
    Neyman {
        /// Total row budget.
        budget: usize,
        /// Numeric column whose per-stratum spread drives the allocation.
        measure: String,
    },
    /// Same count for every stratum — maximizes small-group coverage.
    Equal {
        /// Rows per stratum.
        per_stratum: usize,
    },
    /// Congressional (AQUA): per-stratum max of the proportional "house"
    /// and the equal "senate", rescaled to the budget. Balances per-group
    /// and overall accuracy.
    Congressional {
        /// Total row budget.
        budget: usize,
    },
}

/// Draws a stratified sample over the distinct values of `column`.
///
/// Builds per-stratum simple random samples (without replacement) with the
/// requested allocation. The returned sample's table is ordered stratum by
/// stratum, with [`StratumMeta`] recording each stratum's row range,
/// population size, and key; weights are `N_h / n_h` per row.
pub fn stratified_sample(
    table: &Table,
    column: &str,
    allocation: &Allocation,
    seed: u64,
) -> Result<Sample, StorageError> {
    stratified_sample_with_threads(table, column, allocation, seed, 1)
}

/// [`stratified_sample`] with a morsel-parallel pass 1: workers group one
/// block each, and per-block partials merge in block order, so the sampled
/// row coordinates — and hence the drawn sample — are identical at every
/// thread count. (Under Neyman allocation the per-stratum moments are
/// combined pairwise rather than by a single streaming fold, which can
/// differ from `threads == 1` in final ulps of the allocation stddevs;
/// allocations round to whole rows, so in practice the sample is the same.)
pub fn stratified_sample_with_threads(
    table: &Table,
    column: &str,
    allocation: &Allocation,
    seed: u64,
    threads: usize,
) -> Result<Sample, StorageError> {
    let col_idx = table.schema().index_of(column)?;
    let measure_idx = match allocation {
        Allocation::Neyman { measure, .. } => Some(table.schema().index_of(measure)?),
        _ => None,
    };

    // Pass 1: group row coordinates by stratum key (full scan — the cost
    // that makes this an *offline* technique).
    struct StratumAcc {
        key: Value,
        coords: Vec<(usize, usize)>,
        measure: Moments,
    }
    let mut strata: HashMap<u64, StratumAcc> = HashMap::new();
    if threads <= 1 {
        for (bi, block) in table.iter_blocks() {
            let keys = block.column(col_idx);
            for ri in 0..block.len() {
                let key = keys.get(ri);
                let h = aqp_expr::stable_hash64(&key);
                let acc = strata.entry(h).or_insert_with(|| StratumAcc {
                    key,
                    coords: Vec::new(),
                    measure: Moments::new(),
                });
                acc.coords.push((bi, ri));
                if let Some(mi) = measure_idx {
                    if let Some(v) = block.column(mi).f64_at(ri) {
                        acc.measure.push(v);
                    }
                }
            }
        }
    } else {
        let blocks: Vec<(usize, std::sync::Arc<aqp_storage::Block>)> = table
            .iter_blocks()
            .map(|(bi, b)| (bi, std::sync::Arc::clone(b)))
            .collect();
        let partials = aqp_engine::pool::parallel_map(blocks, threads, |_, (bi, block)| {
            let mut local: HashMap<u64, StratumAcc> = HashMap::new();
            let keys = block.column(col_idx);
            for ri in 0..block.len() {
                let key = keys.get(ri);
                let h = aqp_expr::stable_hash64(&key);
                let acc = local.entry(h).or_insert_with(|| StratumAcc {
                    key,
                    coords: Vec::new(),
                    measure: Moments::new(),
                });
                acc.coords.push((bi, ri));
                if let Some(mi) = measure_idx {
                    if let Some(v) = block.column(mi).f64_at(ri) {
                        acc.measure.push(v);
                    }
                }
            }
            local
        });
        // Merge in block order: per-stratum coords concatenate to exactly
        // the serial scan order, because each partial holds one block.
        for part in partials {
            for (h, acc) in part {
                match strata.entry(h) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        let dst = e.get_mut();
                        dst.coords.extend(acc.coords);
                        dst.measure = dst.measure.merge(&acc.measure);
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(acc);
                    }
                }
            }
        }
    }
    // Deterministic stratum order.
    let mut strata: Vec<StratumAcc> = strata.into_values().collect();
    strata.sort_by_key(|s| aqp_expr::stable_hash64(&s.key));

    // Allocation.
    let sizes: Vec<u64> = strata.iter().map(|s| s.coords.len() as u64).collect();
    let allocations: Vec<u64> = match allocation {
        Allocation::Proportional { budget } => proportional(&sizes, *budget as u64),
        Allocation::Neyman { budget, .. } => {
            let stds: Vec<f64> = strata
                .iter()
                .map(|s| {
                    let v = s.measure.variance();
                    if v.is_nan() {
                        0.0
                    } else {
                        v.sqrt()
                    }
                })
                .collect();
            aqp_stats::variance::neyman_allocation(&sizes, &stds, *budget as u64)
        }
        Allocation::Equal { per_stratum } => sizes
            .iter()
            .map(|&n| (*per_stratum as u64).min(n))
            .collect(),
        Allocation::Congressional { budget } => congressional(&sizes, *budget as u64),
    };

    // Pass 2: per-stratum SRS, emitted stratum by stratum.
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = TableBuilder::with_block_capacity(
        format!("{}__strat_{column}", table.name()),
        table.schema().as_ref().clone(),
        table.block_capacity(),
    );
    let mut metas = Vec::with_capacity(strata.len());
    let mut weights = Vec::new();
    let mut cursor = 0usize;
    for (acc, &n_h) in strata.iter_mut().zip(&allocations) {
        let pop = acc.coords.len();
        let take = (n_h as usize).min(pop);
        acc.coords.shuffle(&mut rng);
        let row_start = cursor;
        for &(bi, ri) in acc.coords.iter().take(take) {
            builder.gather_row(table.block(bi), ri);
            cursor += 1;
        }
        let w = if take == 0 {
            1.0
        } else {
            pop as f64 / take as f64
        };
        weights.resize(weights.len() + take, w);
        metas.push(StratumMeta {
            key: acc.key.clone(),
            population_size: pop as u64,
            row_start,
            row_end: cursor,
        });
    }
    Ok(Sample {
        table: builder.finish(),
        design: SampleDesign::Stratified {
            column: column.to_string(),
            strata: metas,
        },
        weights: RowWeights::PerRow(weights),
    })
}

/// Proportional allocation with at-least-one-per-nonempty-stratum rounding.
fn proportional(sizes: &[u64], budget: u64) -> Vec<u64> {
    let total: u64 = sizes.iter().sum();
    if total == 0 {
        return vec![0; sizes.len()];
    }
    sizes
        .iter()
        .map(|&n| {
            if n == 0 {
                0
            } else {
                (((n as f64 / total as f64) * budget as f64).round() as u64).clamp(1, n)
            }
        })
        .collect()
}

/// Congressional allocation: per-stratum max of proportional and equal,
/// rescaled to the budget.
fn congressional(sizes: &[u64], budget: u64) -> Vec<u64> {
    let k = sizes.iter().filter(|&&n| n > 0).count();
    if k == 0 {
        return vec![0; sizes.len()];
    }
    let total: u64 = sizes.iter().sum();
    let house: Vec<f64> = sizes
        .iter()
        .map(|&n| budget as f64 * n as f64 / total as f64)
        .collect();
    let senate = budget as f64 / k as f64;
    let raw: Vec<f64> = sizes
        .iter()
        .zip(&house)
        .map(|(&n, &h)| if n == 0 { 0.0 } else { h.max(senate) })
        .collect();
    let raw_total: f64 = raw.iter().sum();
    let scale = budget as f64 / raw_total;
    raw.iter()
        .zip(sizes)
        .map(|(&r, &n)| {
            if n == 0 {
                0
            } else {
                ((r * scale).round() as u64).clamp(1, n)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqp_storage::{DataType, Field, Schema};

    /// 3 strata with sizes 1000 / 100 / 10 and distinct value levels.
    fn skewed_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("g", DataType::Str),
            Field::new("v", DataType::Float64),
        ]);
        let mut b = TableBuilder::with_block_capacity("t", schema, 64);
        for i in 0..1000 {
            b.push_row(&[Value::str("big"), Value::Float64(10.0 + (i % 7) as f64)])
                .unwrap();
        }
        for i in 0..100 {
            b.push_row(&[Value::str("mid"), Value::Float64(100.0 + (i % 5) as f64)])
                .unwrap();
        }
        for i in 0..10 {
            b.push_row(&[Value::str("tiny"), Value::Float64(1000.0 + i as f64)])
                .unwrap();
        }
        b.finish()
    }

    fn stratum_count(s: &Sample, key: &str) -> usize {
        match &s.design {
            SampleDesign::Stratified { strata, .. } => strata
                .iter()
                .find(|m| m.key == Value::str(key))
                .map(|m| m.row_end - m.row_start)
                .unwrap_or(0),
            _ => panic!("not stratified"),
        }
    }

    #[test]
    fn proportional_mirrors_population() {
        let t = skewed_table();
        let s = stratified_sample(&t, "g", &Allocation::Proportional { budget: 111 }, 1).unwrap();
        let big = stratum_count(&s, "big");
        let tiny = stratum_count(&s, "tiny");
        assert!(big >= 90, "big stratum got {big}");
        assert!(tiny >= 1, "tiny stratum must keep at least one row");
        assert!(big > tiny * 10);
    }

    #[test]
    fn equal_allocation_covers_small_groups() {
        let t = skewed_table();
        let s = stratified_sample(&t, "g", &Allocation::Equal { per_stratum: 8 }, 1).unwrap();
        assert_eq!(stratum_count(&s, "big"), 8);
        assert_eq!(stratum_count(&s, "mid"), 8);
        assert_eq!(stratum_count(&s, "tiny"), 8);
    }

    #[test]
    fn congressional_between_proportional_and_equal() {
        let t = skewed_table();
        let s = stratified_sample(&t, "g", &Allocation::Congressional { budget: 90 }, 1).unwrap();
        let big = stratum_count(&s, "big");
        let tiny = stratum_count(&s, "tiny");
        // Senate floor lifts the tiny stratum well above proportional (~1),
        // while the house keeps big above equal (30).
        assert!(tiny >= 5, "tiny got {tiny}");
        assert!(big > tiny, "big {big} vs tiny {tiny}");
    }

    #[test]
    fn neyman_prefers_high_variance_strata() {
        // Two equal-size strata; one has far higher spread.
        let schema = Schema::new(vec![
            Field::new("g", DataType::Str),
            Field::new("v", DataType::Float64),
        ]);
        let mut b = TableBuilder::with_block_capacity("t", schema, 64);
        for i in 0..500 {
            b.push_row(&[Value::str("flat"), Value::Float64(5.0 + (i % 2) as f64)])
                .unwrap();
            b.push_row(&[
                Value::str("wild"),
                Value::Float64(((i * 7919) % 1000) as f64),
            ])
            .unwrap();
        }
        let t = b.finish();
        let s = stratified_sample(
            &t,
            "g",
            &Allocation::Neyman {
                budget: 100,
                measure: "v".into(),
            },
            1,
        )
        .unwrap();
        assert!(stratum_count(&s, "wild") > 2 * stratum_count(&s, "flat"));
    }

    #[test]
    fn stratified_estimate_matches_truth_closely() {
        let t = skewed_table();
        let truth: f64 = t.column_f64("v").unwrap().iter().sum();
        let s = stratified_sample(&t, "g", &Allocation::Congressional { budget: 200 }, 5).unwrap();
        let e = s.estimate_sum("v").unwrap();
        assert!(
            e.relative_error(truth) < 0.05,
            "rel err {}",
            e.relative_error(truth)
        );
    }

    #[test]
    fn weights_are_inverse_sampling_fractions() {
        let t = skewed_table();
        let s = stratified_sample(&t, "g", &Allocation::Equal { per_stratum: 10 }, 2).unwrap();
        // Count-weighted total should reconstruct the population count.
        let cnt = s.estimate_count();
        assert!((cnt.value - 1110.0).abs() < 1e-9);
        // tiny stratum: 10 of 10 → weight 1.
        if let SampleDesign::Stratified { strata, .. } = &s.design {
            let tiny = strata.iter().find(|m| m.key == Value::str("tiny")).unwrap();
            assert_eq!(s.weights.weight(tiny.row_start), 1.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let t = skewed_table();
        let a = stratified_sample(&t, "g", &Allocation::Proportional { budget: 50 }, 9).unwrap();
        let b = stratified_sample(&t, "g", &Allocation::Proportional { budget: 50 }, 9).unwrap();
        assert_eq!(
            a.table.column_f64("v").unwrap(),
            b.table.column_f64("v").unwrap()
        );
    }

    #[test]
    fn parallel_pass1_matches_serial() {
        let t = skewed_table();
        for alloc in [
            Allocation::Proportional { budget: 120 },
            Allocation::Congressional { budget: 90 },
            Allocation::Equal { per_stratum: 7 },
            Allocation::Neyman {
                budget: 100,
                measure: "v".into(),
            },
        ] {
            let serial = stratified_sample(&t, "g", &alloc, 11).unwrap();
            for threads in [2, 4, 8] {
                let par = stratified_sample_with_threads(&t, "g", &alloc, 11, threads).unwrap();
                assert_eq!(
                    serial.table.column_f64("v").unwrap(),
                    par.table.column_f64("v").unwrap(),
                    "threads={threads} alloc={alloc:?}"
                );
                assert_eq!(serial.design, par.design, "threads={threads}");
            }
        }
    }

    #[test]
    fn missing_column_errors() {
        let t = skewed_table();
        assert!(
            stratified_sample(&t, "nope", &Allocation::Proportional { budget: 10 }, 0).is_err()
        );
        assert!(stratified_sample(
            &t,
            "g",
            &Allocation::Neyman {
                budget: 10,
                measure: "nope".into()
            },
            0
        )
        .is_err());
    }

    #[test]
    fn allocation_helpers() {
        assert_eq!(proportional(&[80, 20], 10), vec![8, 2]);
        assert_eq!(proportional(&[0, 0], 10), vec![0, 0]);
        let c = congressional(&[990, 10], 100);
        assert!(c[1] >= 10); // senate floor, capped at size
        assert_eq!(congressional(&[0, 0], 10), vec![0, 0]);
    }
}
