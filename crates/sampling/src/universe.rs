//! Universe (hash) sampling on a key column.
//!
//! NSB highlights universe sampling as *the* fix for sampling under key
//! joins: instead of tossing an independent coin per row, a row is included
//! iff its **key value** hashes into the sampled fraction of the key
//! universe. Two tables sampled with the same column semantics and the same
//! `salt` then agree on which keys survive, so
//! `universe(R) ⋈ universe(S) = universe(R ⋈ S)` — the property that makes
//! `join-of-samples` statistically equivalent to `sample-of-join` at rate
//! `p` (instead of the `p²` match rate and exploding variance that
//! independent Bernoulli sampling suffers; see experiment E4).

use aqp_expr::hash::{hash_to_unit, mix64};
use aqp_expr::stable_hash64;
use aqp_storage::{StorageError, Table, TableBuilder};

use crate::design::{RowWeights, Sample, SampleDesign};

/// Draws a universe sample: keeps every row whose key hashes below `rate`.
///
/// `salt` must match across the tables of a join for their samples to
/// align; different salts give independent universes.
///
/// # Panics
/// Panics if `rate` is outside `(0, 1]`.
pub fn universe_sample(
    table: &Table,
    key_column: &str,
    rate: f64,
    salt: u64,
) -> Result<Sample, StorageError> {
    assert!(
        rate > 0.0 && rate <= 1.0,
        "rate must be in (0,1], got {rate}"
    );
    let idx = table.schema().index_of(key_column)?;
    let mut builder = TableBuilder::with_block_capacity(
        format!("{}__universe_{key_column}", table.name()),
        table.schema().as_ref().clone(),
        table.block_capacity(),
    );
    for (_, block) in table.iter_blocks() {
        let keys = block.column(idx);
        for ri in 0..block.len() {
            let h = mix64(stable_hash64(&keys.get(ri)) ^ salt);
            if hash_to_unit(h) < rate {
                builder.gather_row(block, ri);
            }
        }
    }
    Ok(Sample {
        table: builder.finish(),
        design: SampleDesign::Universe {
            column: key_column.to_string(),
            rate,
            population_rows: table.row_count() as u64,
        },
        weights: RowWeights::Uniform(1.0 / rate),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqp_storage::{DataType, Field, Schema, Value};
    use std::collections::HashSet;

    fn keyed_table(name: &str, keys: impl Iterator<Item = i64>) -> Table {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Float64),
        ]);
        let mut b = TableBuilder::with_block_capacity(name, schema, 64);
        for k in keys {
            b.push_row(&[Value::Int64(k), Value::Float64(k as f64)])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn keys_survive_atomically() {
        // Ten rows per key: a key is either fully in or fully out.
        let t = keyed_table("t", (0..1000).flat_map(|k| vec![k; 10]));
        let s = universe_sample(&t, "k", 0.2, 7).unwrap();
        let mut counts = std::collections::HashMap::new();
        for k in s.table.column_f64("k").unwrap() {
            *counts.entry(k as i64).or_insert(0) += 1;
        }
        for (&k, &c) in &counts {
            assert_eq!(c, 10, "key {k} partially sampled");
        }
    }

    #[test]
    fn two_tables_same_salt_align() {
        let r = keyed_table("r", 0..10_000);
        let s = keyed_table("s", (0..10_000).rev());
        let sr = universe_sample(&r, "k", 0.1, 99).unwrap();
        let ss = universe_sample(&s, "k", 0.1, 99).unwrap();
        let keys_r: HashSet<i64> = sr
            .table
            .column_f64("k")
            .unwrap()
            .iter()
            .map(|&x| x as i64)
            .collect();
        let keys_s: HashSet<i64> = ss
            .table
            .column_f64("k")
            .unwrap()
            .iter()
            .map(|&x| x as i64)
            .collect();
        assert_eq!(keys_r, keys_s, "same salt must sample the same key set");
        assert!(!keys_r.is_empty());
    }

    #[test]
    fn different_salts_decorrelate() {
        let r = keyed_table("r", 0..10_000);
        let a: HashSet<i64> = universe_sample(&r, "k", 0.1, 1)
            .unwrap()
            .table
            .column_f64("k")
            .unwrap()
            .iter()
            .map(|&x| x as i64)
            .collect();
        let b: HashSet<i64> = universe_sample(&r, "k", 0.1, 2)
            .unwrap()
            .table
            .column_f64("k")
            .unwrap()
            .iter()
            .map(|&x| x as i64)
            .collect();
        let overlap = a.intersection(&b).count() as f64;
        // Independent 10% samples overlap on ~1% of the universe.
        assert!(overlap / 10_000.0 < 0.03, "overlap {overlap}");
    }

    #[test]
    fn sampled_fraction_near_rate() {
        let t = keyed_table("t", 0..50_000);
        let s = universe_sample(&t, "k", 0.05, 3).unwrap();
        let frac = s.num_rows() as f64 / 50_000.0;
        assert!((frac - 0.05).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn estimate_sum_unbiased_across_salts() {
        let t = keyed_table("t", 0..5_000);
        let truth: f64 = t.column_f64("v").unwrap().iter().sum();
        let mut total = 0.0;
        let trials = 200;
        for salt in 0..trials {
            total += universe_sample(&t, "k", 0.1, salt)
                .unwrap()
                .estimate_sum("v")
                .unwrap()
                .value;
        }
        let mean = total / trials as f64;
        assert!((mean - truth).abs() / truth < 0.05);
    }

    #[test]
    fn missing_key_column_errors() {
        let t = keyed_table("t", 0..10);
        assert!(universe_sample(&t, "zzz", 0.5, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "rate must be in (0,1]")]
    fn rejects_bad_rate() {
        let t = keyed_table("t", 0..10);
        let _ = universe_sample(&t, "k", 1.5, 0);
    }
}
