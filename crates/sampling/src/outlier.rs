//! The outlier index (Chaudhuri, Das, Datar, Motwani & Narasayya, 2001):
//! keep the heavy tail of a measure column **exactly**, sample only the
//! well-behaved remainder.
//!
//! Uniform sampling's variance on skewed aggregates is dominated by the
//! few extreme rows — whether the sample happens to catch them swings the
//! estimate wildly. The outlier index removes exactly that term: the
//! top-fraction rows by |measure| are stored and aggregated exactly, and
//! the sampled remainder has bounded values, so its CLT interval is tight.
//! NSB lists this as the classical answer to skew within the
//! pre-computed-sample family (it shares that family's maintenance cost).

use aqp_stats::Estimate;
use aqp_storage::{StorageError, Table, TableBuilder};

use crate::bernoulli::bernoulli_rows;
use crate::design::Sample;

/// An outlier index over one measure column: exact outliers + a sampled
/// remainder.
#[derive(Debug, Clone)]
pub struct OutlierIndex {
    /// Rows whose |measure| is at or above the threshold (kept exactly).
    pub outliers: Table,
    /// Bernoulli row sample of the remaining rows.
    pub sample: Sample,
    /// The indexed measure column.
    pub column: String,
    /// |measure| threshold that separated outliers from the remainder.
    pub threshold: f64,
}

/// Builds an outlier index: the `outlier_fraction` rows with the largest
/// |column| values are stored exactly; the rest is Bernoulli-sampled at
/// `sample_rate`.
///
/// # Panics
/// Panics if `outlier_fraction` is outside [0, 1) or `sample_rate`
/// outside (0, 1].
pub fn build_outlier_index(
    table: &Table,
    column: &str,
    outlier_fraction: f64,
    sample_rate: f64,
    seed: u64,
) -> Result<OutlierIndex, StorageError> {
    assert!(
        (0.0..1.0).contains(&outlier_fraction),
        "outlier fraction must be in [0,1), got {outlier_fraction}"
    );
    assert!(
        sample_rate > 0.0 && sample_rate <= 1.0,
        "sample rate must be in (0,1], got {sample_rate}"
    );
    let idx = table.schema().index_of(column)?;
    // Find the |v| threshold for the requested tail mass.
    let mut magnitudes: Vec<f64> = Vec::with_capacity(table.row_count());
    for (_, block) in table.iter_blocks() {
        let col = block.column(idx);
        for i in 0..col.len() {
            magnitudes.push(col.f64_at(i).unwrap_or(0.0).abs());
        }
    }
    let k = ((table.row_count() as f64) * outlier_fraction).round() as usize;
    let threshold = if k == 0 {
        f64::INFINITY
    } else {
        let cut = magnitudes.len() - k;
        magnitudes.select_nth_unstable_by(cut, |a, b| a.partial_cmp(b).expect("finite magnitudes"));
        magnitudes[cut]
    };

    // Split the table.
    let mut outliers = TableBuilder::with_block_capacity(
        format!("{}__outliers", table.name()),
        table.schema().as_ref().clone(),
        table.block_capacity(),
    );
    let mut remainder = TableBuilder::with_block_capacity(
        format!("{}__remainder", table.name()),
        table.schema().as_ref().clone(),
        table.block_capacity(),
    );
    for (_, block) in table.iter_blocks() {
        let col = block.column(idx);
        for i in 0..block.len() {
            let mag = col.f64_at(i).unwrap_or(0.0).abs();
            if mag >= threshold {
                outliers.gather_row(block, i);
            } else {
                remainder.gather_row(block, i);
            }
        }
    }
    let remainder = remainder.finish();
    let sample = bernoulli_rows(&remainder, sample_rate, seed);
    Ok(OutlierIndex {
        outliers: outliers.finish(),
        sample,
        column: column.to_string(),
        threshold,
    })
}

impl OutlierIndex {
    /// Rows stored exactly plus rows sampled — the index's total footprint.
    pub fn stored_rows(&self) -> usize {
        self.outliers.row_count() + self.sample.num_rows()
    }

    /// Estimates the population SUM of the indexed column: exact outlier
    /// contribution plus the HT estimate over the remainder.
    pub fn estimate_sum(&self) -> Result<Estimate, StorageError> {
        let exact: f64 = self.outliers.column_f64(&self.column)?.iter().sum();
        let remainder = self.sample.estimate_sum(&self.column)?;
        Ok(Estimate::exact(exact).add_independent(&remainder))
    }

    /// Estimates the population SUM of the indexed column over the domain
    /// selected by `pred` (a row predicate over `(block, row)` of either
    /// partition). The outlier partition is filtered exactly.
    pub fn estimate_sum_where(
        &self,
        pred: &mut dyn FnMut(&aqp_storage::Block, usize) -> bool,
    ) -> Result<Estimate, StorageError> {
        let idx = self.outliers.schema().index_of(&self.column)?;
        let mut exact = 0.0;
        for (_, block) in self.outliers.iter_blocks() {
            for i in 0..block.len() {
                if pred(block, i) {
                    exact += block.column(idx).f64_at(i).unwrap_or(0.0);
                }
            }
        }
        let sidx = self.sample.table.schema().index_of(&self.column)?;
        let remainder = self.sample.estimate_sum_with(&mut |b, i| {
            if pred(b, i) {
                b.column(sidx).f64_at(i).unwrap_or(0.0)
            } else {
                0.0
            }
        });
        Ok(Estimate::exact(exact).add_independent(&remainder))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqp_storage::{DataType, Field, Schema, Value};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Lognormal-ish heavy-tailed data: a few rows dominate the SUM.
    fn heavy_tailed(n: usize, seed: u64) -> Table {
        let mut rng = SmallRng::seed_from_u64(seed);
        let schema = Schema::new(vec![Field::new("v", DataType::Float64)]);
        let mut b = TableBuilder::with_block_capacity("t", schema, 256);
        for _ in 0..n {
            let u: f64 = rng.gen::<f64>().max(1e-12);
            // Pareto tail with alpha ~1.3: occasional enormous values.
            let v = u.powf(-1.0 / 1.3);
            b.push_row(&[Value::Float64(v)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn splits_at_the_right_fraction() {
        let t = heavy_tailed(50_000, 1);
        let oi = build_outlier_index(&t, "v", 0.01, 0.05, 2).unwrap();
        let frac = oi.outliers.row_count() as f64 / 50_000.0;
        assert!((frac - 0.01).abs() < 0.002, "outlier fraction {frac}");
        // All outliers are at least as large as every remainder row.
        let min_outlier = oi
            .outliers
            .column_f64("v")
            .unwrap()
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let max_rest = oi
            .sample
            .table
            .column_f64("v")
            .unwrap()
            .iter()
            .copied()
            .fold(0.0, f64::max);
        assert!(min_outlier >= max_rest);
    }

    #[test]
    fn slashes_variance_on_heavy_tails() {
        let t = heavy_tailed(50_000, 3);
        // Plain 5% sample vs outlier index with 1% exact + 4% sample
        // (comparable storage).
        let plain = bernoulli_rows(&t, 0.05, 7);
        let plain_est = plain.estimate_sum("v").unwrap();
        let oi = build_outlier_index(&t, "v", 0.01, 0.04, 7).unwrap();
        let oi_est = oi.estimate_sum().unwrap();
        assert!(
            oi_est.variance < plain_est.variance / 4.0,
            "outlier index var {} should be far below plain var {}",
            oi_est.variance,
            plain_est.variance
        );
    }

    #[test]
    fn estimates_are_accurate_across_seeds() {
        let t = heavy_tailed(30_000, 5);
        let truth: f64 = t.column_f64("v").unwrap().iter().sum();
        let mut worst = 0.0f64;
        for seed in 0..20 {
            let oi = build_outlier_index(&t, "v", 0.02, 0.05, seed).unwrap();
            let e = oi.estimate_sum().unwrap();
            worst = worst.max(e.relative_error(truth));
        }
        assert!(worst < 0.1, "worst rel err {worst}");
    }

    #[test]
    fn zero_fraction_is_plain_sampling() {
        let t = heavy_tailed(5_000, 9);
        let oi = build_outlier_index(&t, "v", 0.0, 0.1, 3).unwrap();
        assert_eq!(oi.outliers.row_count(), 0);
        assert_eq!(oi.threshold, f64::INFINITY);
        assert!(oi.estimate_sum().unwrap().value > 0.0);
    }

    #[test]
    fn filtered_estimate() {
        let t = heavy_tailed(30_000, 11);
        let vs = t.column_f64("v").unwrap();
        let truth: f64 = vs.iter().filter(|&&v| v > 2.0).sum();
        let oi = build_outlier_index(&t, "v", 0.02, 0.1, 13).unwrap();
        let vi_out = oi.outliers.schema().index_of("v").unwrap();
        let _ = vi_out;
        let e = oi
            .estimate_sum_where(&mut |b, i| {
                b.column_by_name("v")
                    .map(|c| c.f64_at(i).unwrap_or(0.0) > 2.0)
                    .unwrap_or(false)
            })
            .unwrap();
        assert!(
            e.relative_error(truth) < 0.1,
            "filtered rel err {}",
            e.relative_error(truth)
        );
    }

    #[test]
    fn footprint_accounting() {
        let t = heavy_tailed(10_000, 15);
        let oi = build_outlier_index(&t, "v", 0.01, 0.05, 1).unwrap();
        assert_eq!(
            oi.stored_rows(),
            oi.outliers.row_count() + oi.sample.num_rows()
        );
        assert!(oi.stored_rows() < 2_000);
    }

    #[test]
    #[should_panic(expected = "outlier fraction")]
    fn rejects_bad_fraction() {
        let t = heavy_tailed(100, 0);
        let _ = build_outlier_index(&t, "v", 1.0, 0.1, 0);
    }
}
