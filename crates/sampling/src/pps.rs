//! Measure-biased (probability-proportional-to-size) sampling with
//! replacement, and the Hansen–Hurwitz estimator.
//!
//! The offline trick behind Sample+Seek-style systems: sample rows with
//! probability proportional to a *measure* column. For `SUM(measure)`
//! itself every draw contributes exactly the population total, so the
//! estimator has **zero variance**; for measures correlated with the
//! biased one the variance is still far below uniform sampling. The cost
//! is workload commitment (the bias bakes in one measure) and a full
//! offline pass to compute the sampling probabilities — the same
//! maintenance trap as every pre-computed synopsis.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use aqp_stats::Estimate;
use aqp_storage::{StorageError, Table, TableBuilder};

/// A PPS-with-replacement sample: `n` independent draws, row `i` drawn
/// with probability `|measure_i| / Σ|measure|` per draw.
#[derive(Debug, Clone)]
pub struct PpsSample {
    /// The sampled rows (duplicates possible — draws are independent).
    pub table: Table,
    /// Per-draw inclusion probability of the drawn row.
    pub draw_probs: Vec<f64>,
    /// The biased measure column.
    pub measure: String,
    /// Population row count.
    pub population_rows: u64,
}

/// Draws a PPS-with-replacement sample of `n` rows biased by `measure`.
///
/// Rows whose measure is zero (or NULL) are never drawn; they contribute
/// nothing to any SUM over a non-negative measure, so the estimator stays
/// unbiased for sums of functions that vanish with the measure. For
/// general aggregates over other columns, prefer a uniform design.
///
/// # Panics
/// Panics if `n == 0`.
pub fn pps_sample(
    table: &Table,
    measure: &str,
    n: usize,
    seed: u64,
) -> Result<PpsSample, StorageError> {
    assert!(n > 0, "sample size must be positive");
    let idx = table.schema().index_of(measure)?;
    // Offline pass: cumulative |measure| per row.
    let mut cumulative = Vec::with_capacity(table.row_count());
    let mut total = 0.0f64;
    for (_, block) in table.iter_blocks() {
        let col = block.column(idx);
        for i in 0..block.len() {
            total += col.f64_at(i).unwrap_or(0.0).abs();
            cumulative.push(total);
        }
    }
    let mut builder = TableBuilder::with_block_capacity(
        format!("{}__pps_{measure}", table.name()),
        table.schema().as_ref().clone(),
        table.block_capacity(),
    );
    let mut draw_probs = Vec::with_capacity(n);
    if total > 0.0 {
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..n {
            let u = rng.gen::<f64>() * total;
            let row = cumulative
                .partition_point(|&c| c <= u)
                .min(cumulative.len() - 1);
            let mass = cumulative[row] - if row == 0 { 0.0 } else { cumulative[row - 1] };
            let (bi, ri) = table.locate_row(row);
            builder.gather_row(table.block(bi), ri);
            draw_probs.push(mass / total);
        }
    }
    Ok(PpsSample {
        table: builder.finish(),
        draw_probs,
        measure: measure.to_string(),
        population_rows: table.row_count() as u64,
    })
}

impl PpsSample {
    /// Number of draws.
    pub fn num_draws(&self) -> usize {
        self.table.row_count()
    }

    /// Hansen–Hurwitz estimate of `SUM(f)` over the population:
    /// `(1/n)·Σ f_i/p_i` with variance `s²(f/p)/n`.
    pub fn estimate_sum_with(
        &self,
        f: &mut dyn FnMut(&aqp_storage::Block, usize) -> f64,
    ) -> Estimate {
        let n = self.num_draws();
        if n == 0 {
            return Estimate::new(0.0, f64::MAX, 0);
        }
        let mut terms = Vec::with_capacity(n);
        let mut global = 0usize;
        for (_, block) in self.table.iter_blocks() {
            for i in 0..block.len() {
                let p = self.draw_probs[global];
                terms.push(if p > 0.0 { f(block, i) / p } else { 0.0 });
                global += 1;
            }
        }
        let mean = terms.iter().sum::<f64>() / n as f64;
        let variance = if n >= 2 {
            let ss: f64 = terms.iter().map(|t| (t - mean) * (t - mean)).sum();
            ss / ((n - 1) as f64 * n as f64)
        } else {
            f64::MAX
        };
        Estimate::new(mean, variance, n as u64)
    }

    /// Convenience: estimated population SUM of a column.
    pub fn estimate_sum(&self, column: &str) -> Result<Estimate, StorageError> {
        let idx = self.table.schema().index_of(column)?;
        Ok(self.estimate_sum_with(&mut |b, i| b.column(idx).f64_at(i).unwrap_or(0.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bernoulli::bernoulli_rows;
    use aqp_storage::{DataType, Field, Schema, Value};

    /// Heavy-tailed measure + a correlated and an independent column.
    fn table(n: usize, seed: u64) -> Table {
        let mut rng = SmallRng::seed_from_u64(seed);
        let schema = Schema::new(vec![
            Field::new("m", DataType::Float64),
            Field::new("corr", DataType::Float64),
            Field::new("indep", DataType::Float64),
        ]);
        let mut b = TableBuilder::with_block_capacity("t", schema, 256);
        for _ in 0..n {
            let u: f64 = rng.gen::<f64>().max(1e-12);
            let m = u.powf(-1.0 / 1.5); // Pareto-ish
            b.push_row(&[
                Value::Float64(m),
                Value::Float64(2.0 * m + rng.gen::<f64>()),
                Value::Float64(rng.gen::<f64>() * 100.0),
            ])
            .unwrap();
        }
        b.finish()
    }

    #[test]
    fn zero_variance_for_the_biased_measure() {
        let t = table(50_000, 1);
        let truth: f64 = t.column_f64("m").unwrap().iter().sum();
        let s = pps_sample(&t, "m", 100, 7).unwrap();
        let e = s.estimate_sum("m").unwrap();
        // Every HH term equals the total exactly.
        assert!((e.value - truth).abs() / truth < 1e-9);
        assert!(e.variance < 1e-12 * truth * truth);
    }

    #[test]
    fn crushes_uniform_on_correlated_measures() {
        let t = table(50_000, 2);
        let truth: f64 = t.column_f64("corr").unwrap().iter().sum();
        // 500 PPS draws vs a 1% (≈500-row) uniform sample.
        let pps = pps_sample(&t, "m", 500, 3).unwrap();
        let pps_est = pps.estimate_sum("corr").unwrap();
        let uni = bernoulli_rows(&t, 0.01, 3);
        let uni_est = uni.estimate_sum("corr").unwrap();
        assert!(pps_est.relative_error(truth) < 0.05);
        assert!(
            pps_est.variance < uni_est.variance / 10.0,
            "pps var {} vs uniform var {}",
            pps_est.variance,
            uni_est.variance
        );
    }

    #[test]
    fn unbiased_across_seeds_for_uncorrelated_measures() {
        // Still unbiased for an independent column — just not better.
        let t = table(20_000, 5);
        let truth: f64 = t.column_f64("indep").unwrap().iter().sum();
        let mut total = 0.0;
        let trials = 200;
        for seed in 0..trials {
            total += pps_sample(&t, "m", 400, seed)
                .unwrap()
                .estimate_sum("indep")
                .unwrap()
                .value;
        }
        let mean = total / trials as f64;
        assert!(
            (mean - truth).abs() / truth < 0.1,
            "mean {mean} truth {truth}"
        );
    }

    #[test]
    fn ci_covers_truth() {
        let t = table(30_000, 8);
        let truth: f64 = t.column_f64("corr").unwrap().iter().sum();
        let mut hits = 0;
        let trials = 100;
        for seed in 0..trials {
            let s = pps_sample(&t, "m", 300, seed).unwrap();
            if s.estimate_sum("corr").unwrap().ci(0.95).contains(truth) {
                hits += 1;
            }
        }
        assert!(hits >= 88, "coverage {hits}/{trials}");
    }

    #[test]
    fn zero_measure_table() {
        let schema = Schema::new(vec![Field::new("m", DataType::Float64)]);
        let mut b = TableBuilder::new("z", schema);
        for _ in 0..10 {
            b.push_row(&[Value::Float64(0.0)]).unwrap();
        }
        let t = b.finish();
        let s = pps_sample(&t, "m", 5, 0).unwrap();
        assert_eq!(s.num_draws(), 0);
        assert_eq!(s.estimate_sum("m").unwrap().value, 0.0);
    }

    #[test]
    fn missing_column_errors() {
        let t = table(100, 0);
        assert!(pps_sample(&t, "zzz", 10, 0).is_err());
    }
}
