//! The sampler zoo of *Approximate Query Processing: No Silver Bullet*.
//!
//! NSB's central observation about sampling-based AQP is that the *design*
//! of the sample — not just its size — determines which queries it can
//! answer and at what cost:
//!
//! | Sampler | Touches all data? | Answers | Module |
//! |---|---|---|---|
//! | Bernoulli rows | yes (must inspect every row) | any linear aggregate | [`bernoulli`] |
//! | Bernoulli **blocks** | **no** (skips whole blocks) | linear aggregates, wider CIs if rows cluster | [`bernoulli`] |
//! | Reservoir (fixed-size SRS) | yes | linear aggregates | [`reservoir`] |
//! | Fixed-size block SRS | no | linear aggregates | [`reservoir`] |
//! | Stratified (proportional / Neyman / congressional) | yes, offline | group-by without missing groups | [`stratified`] |
//! | Universe (hash of a key) | yes¹ | **joins on the sampled key** | [`universe`] |
//! | Distinct (frequency cap) | yes | rare groups, error-bounded group-by | [`distinct`] |
//!
//! ¹ universe sampling is usually evaluated during the scan; its benefit is
//! statistical (join alignment), not scan skipping.
//!
//! Every sampler produces a [`Sample`]: a sampled table plus
//! the [`SampleDesign`] metadata needed to attach
//! Horvitz–Thompson weights and compute design-correct variance estimates
//! ([`design`] module). All randomness is seeded and reproducible.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bernoulli;
pub mod bilevel;
pub mod design;
pub mod distinct;
pub mod merge;
pub mod outlier;
pub mod pps;
pub mod reservoir;
pub mod stratified;
pub mod universe;

pub use bernoulli::{bernoulli_blocks, bernoulli_rows};
pub use bilevel::bilevel_sample;
pub use design::{RowWeights, Sample, SampleDesign};
pub use distinct::distinct_sample;
pub use outlier::{build_outlier_index, OutlierIndex};
pub use pps::{pps_sample, PpsSample};
pub use reservoir::{block_srs, reservoir_rows};
pub use stratified::{stratified_sample, stratified_sample_with_threads, Allocation};
pub use universe::universe_sample;
