//! Fixed-size simple random sampling: reservoir sampling over rows, and
//! SRS over blocks (the `tsm_system_rows` analogue).

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use aqp_storage::{Table, TableBuilder};

use crate::design::{RowWeights, Sample, SampleDesign};

/// Algorithm-R reservoir sampling: a uniform simple random sample of
/// exactly `min(n, rows)` rows, in one pass over the table.
///
/// # Panics
/// Panics if `n == 0`.
pub fn reservoir_rows(table: &Table, n: usize, seed: u64) -> Sample {
    assert!(n > 0, "reservoir size must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    // The reservoir stores (block, row) coordinates to defer materialization.
    let mut reservoir: Vec<(usize, usize)> = Vec::with_capacity(n);
    let mut seen = 0usize;
    for (bi, block) in table.iter_blocks() {
        for ri in 0..block.len() {
            if reservoir.len() < n {
                reservoir.push((bi, ri));
            } else {
                let j = rng.gen_range(0..=seen);
                if j < n {
                    reservoir[j] = (bi, ri);
                }
            }
            seen += 1;
        }
    }
    let population = table.row_count();
    let mut builder = TableBuilder::with_block_capacity(
        format!("{}__srs_{n}", table.name()),
        table.schema().as_ref().clone(),
        table.block_capacity(),
    );
    for &(bi, ri) in &reservoir {
        builder.gather_row(table.block(bi), ri);
    }
    let actual = reservoir.len();
    Sample {
        table: builder.finish(),
        design: SampleDesign::FixedSizeRows {
            population_rows: population as u64,
        },
        weights: RowWeights::Uniform(if actual == 0 {
            1.0
        } else {
            population as f64 / actual as f64
        }),
    }
}

/// Simple random sample of exactly `min(m, blocks)` whole blocks, chosen
/// without replacement. Selected blocks are shared by reference; rejected
/// blocks are never read.
///
/// # Panics
/// Panics if `m == 0`.
pub fn block_srs(table: &Table, m: usize, seed: u64) -> Sample {
    assert!(m > 0, "block sample size must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    let total = table.block_count();
    let mut indices: Vec<usize> = (0..total).collect();
    indices.shuffle(&mut rng);
    let mut chosen: Vec<usize> = indices.into_iter().take(m.min(total)).collect();
    chosen.sort_unstable(); // preserve storage order for locality
    let blocks = chosen
        .iter()
        .map(|&i| std::sync::Arc::clone(table.block(i)))
        .collect();
    let sampled = Table::from_blocks(
        format!("{}__blocksrs_{m}", table.name()),
        std::sync::Arc::clone(table.schema()),
        blocks,
        table.block_capacity(),
    );
    let actual = sampled.block_count();
    Sample {
        table: sampled,
        design: SampleDesign::FixedSizeBlocks {
            population_blocks: total as u64,
            population_rows: table.row_count() as u64,
        },
        weights: RowWeights::Uniform(if actual == 0 {
            1.0
        } else {
            total as f64 / actual as f64
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqp_storage::{DataType, Field, Schema, Value};

    fn table(n: usize, cap: usize) -> Table {
        let schema = Schema::new(vec![Field::new("v", DataType::Float64)]);
        let mut b = TableBuilder::with_block_capacity("t", schema, cap);
        for i in 0..n {
            b.push_row(&[Value::Float64(i as f64)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn reservoir_exact_size() {
        let t = table(10_000, 128);
        let s = reservoir_rows(&t, 500, 1);
        assert_eq!(s.num_rows(), 500);
    }

    #[test]
    fn reservoir_caps_at_population() {
        let t = table(10, 4);
        let s = reservoir_rows(&t, 100, 1);
        assert_eq!(s.num_rows(), 10);
        // Census → zero variance.
        assert_eq!(s.estimate_sum("v").unwrap().variance, 0.0);
    }

    #[test]
    fn reservoir_is_uniform() {
        // Every row should appear with roughly equal frequency across seeds.
        let t = table(100, 16);
        let mut counts = vec![0u32; 100];
        let trials = 2000;
        for seed in 0..trials {
            let s = reservoir_rows(&t, 10, seed);
            for v in s.table.column_f64("v").unwrap() {
                counts[v as usize] += 1;
            }
        }
        // Expected count = trials * 10 / 100 = 200; allow ±40%.
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (120..=280).contains(&c),
                "row {i} appeared {c} times (expected ~200)"
            );
        }
    }

    #[test]
    fn reservoir_estimate_accuracy() {
        let t = table(10_000, 128);
        let truth: f64 = t.column_f64("v").unwrap().iter().sum();
        let s = reservoir_rows(&t, 2000, 3);
        let e = s.estimate_sum("v").unwrap();
        // 20% SRS of a uniform 0..10000 sequence: well within 5%.
        assert!(e.relative_error(truth) < 0.05);
        // CI at 99% should cover the truth for this seed.
        assert!(e.ci(0.99).contains(truth));
    }

    #[test]
    fn block_srs_exact_block_count() {
        let t = table(1000, 50); // 20 blocks
        let s = block_srs(&t, 5, 9);
        assert_eq!(s.table.block_count(), 5);
        assert_eq!(s.num_rows(), 250);
        // Shares Arcs.
        for sb in s.table.blocks() {
            assert!(t.blocks().iter().any(|tb| std::sync::Arc::ptr_eq(tb, sb)));
        }
    }

    #[test]
    fn block_srs_caps_at_population() {
        let t = table(100, 50);
        let s = block_srs(&t, 10, 0);
        assert_eq!(s.table.block_count(), 2);
        assert_eq!(s.estimate_sum("v").unwrap().variance, 0.0); // census fpc
    }

    #[test]
    fn block_srs_unbiased_across_seeds() {
        let t = table(5_000, 50);
        let truth: f64 = t.column_f64("v").unwrap().iter().sum();
        let mut total = 0.0;
        let trials = 300;
        for seed in 0..trials {
            total += block_srs(&t, 20, seed).estimate_sum("v").unwrap().value;
        }
        let mean = total / trials as f64;
        assert!((mean - truth).abs() / truth < 0.03);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_reservoir_rejected() {
        reservoir_rows(&table(10, 4), 0, 0);
    }
}
