//! Scalar values and their data types.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// The data types the engine supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE float.
    Float64,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Int64 => "INT64",
            Self::Float64 => "FLOAT64",
            Self::Str => "STR",
            Self::Bool => "BOOL",
        };
        f.write_str(s)
    }
}

/// A single scalar value, the unit of row-oriented interchange.
///
/// Strings are `Arc<str>` so values clone cheaply through operators.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int64(i64),
    /// 64-bit float.
    Float64(f64),
    /// UTF-8 string.
    Str(Arc<str>),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The value's data type, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int64(_) => Some(DataType::Int64),
            Value::Float64(_) => Some(DataType::Float64),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// Whether this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: integers and floats coerce to `f64`; booleans map to
    /// 0/1; strings and NULL yield `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int64(v) => Some(*v as f64),
            Value::Float64(v) => Some(*v),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view (no coercion from float).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int64(v) => Some(*v),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL-style three-valued comparison: NULL compares as `None`; numeric
    /// types compare after coercion to `f64`; mixed non-numeric types yield
    /// `None`.
    pub fn sql_cmp(&self, other: &Value) -> Option<std::cmp::Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Str(a), Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int64(v) => write!(f, "{v}"),
            Value::Float64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn data_types() {
        assert_eq!(Value::Int64(1).data_type(), Some(DataType::Int64));
        assert_eq!(Value::Float64(1.0).data_type(), Some(DataType::Float64));
        assert_eq!(Value::str("a").data_type(), Some(DataType::Str));
        assert_eq!(Value::Bool(true).data_type(), Some(DataType::Bool));
        assert_eq!(Value::Null.data_type(), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn numeric_coercion() {
        assert_eq!(Value::Int64(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float64(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::str("x").as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn typed_views() {
        assert_eq!(Value::Int64(7).as_i64(), Some(7));
        assert_eq!(Value::Float64(7.0).as_i64(), None);
        assert_eq!(Value::Bool(false).as_bool(), Some(false));
        assert_eq!(Value::str("hi").as_str(), Some("hi"));
    }

    #[test]
    fn sql_cmp_semantics() {
        assert_eq!(
            Value::Int64(1).sql_cmp(&Value::Int64(2)),
            Some(Ordering::Less)
        );
        // Cross-type numeric comparison.
        assert_eq!(
            Value::Int64(2).sql_cmp(&Value::Float64(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::str("b").sql_cmp(&Value::str("a")),
            Some(Ordering::Greater)
        );
        // NULL never compares.
        assert_eq!(Value::Null.sql_cmp(&Value::Int64(1)), None);
        assert_eq!(Value::Int64(1).sql_cmp(&Value::Null), None);
        // Incomparable mixed types.
        assert_eq!(Value::str("1").sql_cmp(&Value::Int64(1)), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int64(-4).to_string(), "-4");
        assert_eq!(Value::str("abc").to_string(), "abc");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(DataType::Float64.to_string(), "FLOAT64");
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Value::from(5i64), Value::Int64(5));
        assert_eq!(Value::from(2.5f64), Value::Float64(2.5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from("s".to_string()), Value::str("s"));
    }
}
