//! Tables: sequences of fixed-capacity blocks, plus the builder that seals
//! blocks as they fill.

use std::sync::{Arc, OnceLock};

use crate::block::Block;
use crate::column::Column;
use crate::error::StorageError;
use crate::schema::Schema;
use crate::value::Value;
use crate::zone::ZoneMap;

/// Default number of rows per block — the same order of magnitude as rows
/// per page in row stores and per row-group stripe in column stores, so
/// block-sampling experiments exercise realistic block counts.
pub const DEFAULT_BLOCK_CAPACITY: usize = 1024;

/// An immutable block-structured table.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Arc<Schema>,
    blocks: Vec<Arc<Block>>,
    /// Starting global row id of each block (parallel to `blocks`).
    offsets: Vec<usize>,
    /// Lazily built per-block zone maps (parallel to `blocks`), shared
    /// across table clones. Lazy so `from_blocks` stays zero-copy — a
    /// block sample must not pay a full pass over blocks it never reads.
    zones: Arc<Vec<OnceLock<ZoneMap>>>,
    block_capacity: usize,
    row_count: usize,
}

impl Table {
    /// Assembles a table directly from existing blocks — the zero-copy path
    /// block sampling uses: a block sample of a table is just a subset of
    /// its `Arc<Block>`s, so non-sampled blocks are never touched.
    ///
    /// # Panics
    /// Panics if any block's schema differs from `schema`.
    pub fn from_blocks(
        name: impl Into<String>,
        schema: Arc<Schema>,
        blocks: Vec<Arc<Block>>,
        block_capacity: usize,
    ) -> Self {
        let mut offsets = Vec::with_capacity(blocks.len());
        let mut row_count = 0;
        for b in &blocks {
            assert_eq!(
                b.schema().as_ref(),
                schema.as_ref(),
                "block schema mismatch in from_blocks"
            );
            offsets.push(row_count);
            row_count += b.len();
        }
        let zones = Arc::new((0..blocks.len()).map(|_| OnceLock::new()).collect());
        Self {
            name: name.into(),
            schema,
            blocks,
            offsets,
            zones,
            block_capacity,
            row_count,
        }
    }

    /// The zone map for block `index`, built on first access and cached
    /// (shared across clones of this table).
    pub fn zone(&self, index: usize) -> &ZoneMap {
        self.zones[index].get_or_init(|| self.blocks[index].zone_map())
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Total row count.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The block-capacity the builder used (actual blocks may be shorter at
    /// the tail).
    pub fn block_capacity(&self) -> usize {
        self.block_capacity
    }

    /// The blocks, in storage order.
    pub fn blocks(&self) -> &[Arc<Block>] {
        &self.blocks
    }

    /// Block at index.
    pub fn block(&self, index: usize) -> &Arc<Block> {
        &self.blocks[index]
    }

    /// Materializes row `i` (global row id) as values. O(log #blocks) via
    /// binary search over block offsets (blocks may have uneven lengths
    /// when the table was assembled from a block sample).
    pub fn row(&self, i: usize) -> Vec<Value> {
        let (b, r) = self.locate_row(i);
        self.blocks[b].row(r)
    }

    /// Maps a global row id to `(block index, offset within block)`.
    pub fn locate_row(&self, i: usize) -> (usize, usize) {
        assert!(i < self.row_count, "row index {i} out of bounds");
        let b = match self.offsets.binary_search(&i) {
            Ok(exact) => exact,
            Err(insert) => insert - 1,
        };
        (b, i - self.offsets[b])
    }

    /// Iterates over `(block_index, block)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (usize, &Arc<Block>)> {
        self.blocks.iter().enumerate()
    }

    /// Collects an entire column across blocks as `f64` values, skipping
    /// NULLs. Convenience for ground-truth computations in tests and
    /// experiments.
    pub fn column_f64(&self, name: &str) -> Result<Vec<f64>, StorageError> {
        let idx = self.schema.index_of(name)?;
        let mut out = Vec::with_capacity(self.row_count);
        for block in &self.blocks {
            let col = block.column(idx);
            for i in 0..col.len() {
                if let Some(v) = col.f64_at(i) {
                    out.push(v);
                }
            }
        }
        Ok(out)
    }

    /// Partitions the table into exactly `n` contiguous shards along block
    /// boundaries — the unit of shard-then-merge execution. Zero-copy: each
    /// shard shares the parent's `Arc<Block>`s. Shard `j` takes blocks
    /// `[j·B/n, (j+1)·B/n)`, so every block lands in exactly one shard (in
    /// order) and shards may be empty when `n` exceeds the block count.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn shard(&self, n: usize) -> Vec<Table> {
        assert!(n > 0, "shard count must be positive");
        let len = self.blocks.len();
        (0..n)
            .map(|j| {
                let lo = j * len / n;
                let hi = (j + 1) * len / n;
                Table::from_blocks(
                    format!("{}__shard_{j}", self.name),
                    Arc::clone(&self.schema),
                    self.blocks[lo..hi].to_vec(),
                    self.block_capacity,
                )
            })
            .collect()
    }

    /// The rows `from_row..` as a new table — the *delta* view incremental
    /// synopsis maintenance folds in after an append. Whole trailing blocks
    /// are shared zero-copy; if `from_row` cuts a block, that block's tail
    /// rows are copied into a fresh partial block.
    ///
    /// # Panics
    /// Panics if `from_row > row_count()`.
    pub fn tail(&self, from_row: usize) -> Table {
        assert!(
            from_row <= self.row_count,
            "tail start {from_row} out of bounds (rows {})",
            self.row_count
        );
        let name = format!("{}__tail", self.name);
        if from_row == self.row_count {
            return Table::from_blocks(name, Arc::clone(&self.schema), vec![], self.block_capacity);
        }
        let (b, r) = self.locate_row(from_row);
        let mut blocks = Vec::with_capacity(self.blocks.len() - b);
        if r == 0 {
            blocks.extend(self.blocks[b..].iter().cloned());
        } else {
            let src = &self.blocks[b];
            let mut partial = Block::with_capacity(Arc::clone(&self.schema), src.len() - r);
            for i in r..src.len() {
                partial.gather_row(src, i);
            }
            blocks.push(Arc::new(partial));
            blocks.extend(self.blocks[b + 1..].iter().cloned());
        }
        Table::from_blocks(name, Arc::clone(&self.schema), blocks, self.block_capacity)
    }

    /// Approximate in-memory footprint in bytes (data vectors only).
    pub fn approx_bytes(&self) -> usize {
        let mut total = 0;
        for block in &self.blocks {
            for col in block.columns() {
                total += match col {
                    Column::Int64 { data, .. } => data.len() * 8,
                    Column::Float64 { data, .. } => data.len() * 8,
                    Column::Bool { data, .. } => data.len(),
                    Column::Str { data, .. } => data.iter().map(|s| s.len() + 16).sum::<usize>(),
                };
            }
        }
        total
    }
}

/// Builds a [`Table`] row by row, sealing a block whenever it reaches the
/// configured capacity.
#[derive(Debug)]
pub struct TableBuilder {
    name: String,
    schema: Arc<Schema>,
    blocks: Vec<Arc<Block>>,
    current: Block,
    block_capacity: usize,
    row_count: usize,
}

impl TableBuilder {
    /// Starts a builder with the default block capacity.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Self::with_block_capacity(name, schema, DEFAULT_BLOCK_CAPACITY)
    }

    /// Starts a builder with an explicit block capacity.
    ///
    /// # Panics
    /// Panics if `block_capacity == 0`.
    pub fn with_block_capacity(
        name: impl Into<String>,
        schema: Schema,
        block_capacity: usize,
    ) -> Self {
        assert!(block_capacity > 0, "block capacity must be positive");
        let schema = Arc::new(schema);
        Self {
            name: name.into(),
            schema: Arc::clone(&schema),
            blocks: Vec::new(),
            current: Block::with_capacity(schema, block_capacity),
            block_capacity,
            row_count: 0,
        }
    }

    /// The schema being built against.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Rows appended so far.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Appends one row.
    pub fn push_row(&mut self, row: &[Value]) -> Result<(), StorageError> {
        self.current.push_row(row)?;
        self.row_count += 1;
        if self.current.len() == self.block_capacity {
            let sealed = std::mem::replace(
                &mut self.current,
                Block::with_capacity(Arc::clone(&self.schema), self.block_capacity),
            );
            self.blocks.push(Arc::new(sealed));
        }
        Ok(())
    }

    /// Appends row `i` of `src` (same schema shape as the builder's) via
    /// typed per-column copies — no `Vec<Value>` materialization. The
    /// samplers' hot copy loops use this instead of
    /// `push_row(&block.row(i))`.
    ///
    /// # Panics
    /// Panics on arity or column-type mismatch (see [`Block::gather_row`]).
    pub fn gather_row(&mut self, src: &Block, i: usize) {
        self.current.gather_row(src, i);
        self.row_count += 1;
        if self.current.len() == self.block_capacity {
            let sealed = std::mem::replace(
                &mut self.current,
                Block::with_capacity(Arc::clone(&self.schema), self.block_capacity),
            );
            self.blocks.push(Arc::new(sealed));
        }
    }

    /// Appends many rows.
    pub fn push_rows<'a>(
        &mut self,
        rows: impl IntoIterator<Item = &'a [Value]>,
    ) -> Result<(), StorageError> {
        for row in rows {
            self.push_row(row)?;
        }
        Ok(())
    }

    /// Seals the current partial block immediately (no-op when empty).
    /// Samplers use this to preserve source-block boundaries in a sampled
    /// table, so block-design estimators can group rows correctly.
    pub fn seal_block(&mut self) {
        if !self.current.is_empty() {
            let sealed = std::mem::replace(
                &mut self.current,
                Block::with_capacity(Arc::clone(&self.schema), self.block_capacity),
            );
            self.blocks.push(Arc::new(sealed));
        }
    }

    /// Seals the final partial block and produces the immutable table.
    pub fn finish(mut self) -> Table {
        if !self.current.is_empty() {
            self.blocks.push(Arc::new(self.current));
        }
        Table::from_blocks(self.name, self.schema, self.blocks, self.block_capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::value::DataType;

    fn build(n: usize, cap: usize) -> Table {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("v", DataType::Float64),
        ]);
        let mut b = TableBuilder::with_block_capacity("t", schema, cap);
        for i in 0..n {
            b.push_row(&[Value::Int64(i as i64), Value::Float64(i as f64 * 2.0)])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn blocks_seal_at_capacity() {
        let t = build(10, 4);
        assert_eq!(t.row_count(), 10);
        assert_eq!(t.block_count(), 3); // 4 + 4 + 2
        assert_eq!(t.block(0).len(), 4);
        assert_eq!(t.block(2).len(), 2);
        assert_eq!(t.block_capacity(), 4);
    }

    #[test]
    fn exact_multiple_has_no_partial_block() {
        let t = build(8, 4);
        assert_eq!(t.block_count(), 2);
        assert!(t.blocks().iter().all(|b| b.len() == 4));
    }

    #[test]
    fn empty_table() {
        let t = build(0, 4);
        assert_eq!(t.row_count(), 0);
        assert_eq!(t.block_count(), 0);
    }

    #[test]
    fn global_row_lookup() {
        let t = build(10, 4);
        assert_eq!(t.row(0)[0], Value::Int64(0));
        assert_eq!(t.row(5)[0], Value::Int64(5)); // second block, offset 1
        assert_eq!(t.row(9)[1], Value::Float64(18.0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        build(3, 4).row(3);
    }

    #[test]
    fn column_f64_skips_nulls() {
        let schema = Schema::new(vec![Field::nullable("v", DataType::Float64)]);
        let mut b = TableBuilder::with_block_capacity("t", schema, 2);
        b.push_row(&[Value::Float64(1.0)]).unwrap();
        b.push_row(&[Value::Null]).unwrap();
        b.push_row(&[Value::Float64(3.0)]).unwrap();
        let t = b.finish();
        assert_eq!(t.column_f64("v").unwrap(), vec![1.0, 3.0]);
        assert!(t.column_f64("missing").is_err());
    }

    #[test]
    fn approx_bytes_grows_with_rows() {
        assert!(build(1000, 128).approx_bytes() > build(10, 128).approx_bytes());
    }

    #[test]
    fn zone_maps_lazy_and_shared() {
        let t = build(10, 4);
        let z = t.zone(1); // rows 4..8, v = id*2
        assert_eq!(z.rows, 4);
        assert_eq!(z.column(0).bounds, Some((4.0, 7.0)));
        assert_eq!(z.column(1).bounds, Some((8.0, 14.0)));
        // Clones share the cache.
        let t2 = t.clone();
        assert!(std::ptr::eq(t2.zone(1), t.zone(1)));
    }

    #[test]
    fn shard_partitions_blocks_in_order() {
        let t = build(20, 4); // 5 blocks
        for n in [1, 2, 4, 8] {
            let shards = t.shard(n);
            assert_eq!(shards.len(), n, "n={n}");
            let total: usize = shards.iter().map(Table::row_count).sum();
            assert_eq!(total, 20, "n={n}");
            // Rows appear in original order across the shard sequence.
            let mut seen = Vec::new();
            for s in &shards {
                for i in 0..s.row_count() {
                    seen.push(s.row(i)[0].clone());
                }
            }
            let expect: Vec<Value> = (0..20).map(|i| Value::Int64(i as i64)).collect();
            assert_eq!(seen, expect, "n={n}");
        }
        // Shards share block Arcs with the parent (zero-copy).
        let shards = t.shard(2);
        assert!(Arc::ptr_eq(shards[0].block(0), t.block(0)));
    }

    #[test]
    fn tail_returns_delta_rows() {
        let t = build(10, 4); // blocks: 4 + 4 + 2
                              // Block-aligned tail is zero-copy.
        let aligned = t.tail(8);
        assert_eq!(aligned.row_count(), 2);
        assert!(Arc::ptr_eq(aligned.block(0), t.block(2)));
        // Mid-block tail copies the cut block's remainder.
        let mid = t.tail(6);
        assert_eq!(mid.row_count(), 4);
        assert_eq!(mid.row(0)[0], Value::Int64(6));
        assert_eq!(mid.row(3)[0], Value::Int64(9));
        // Degenerate cases.
        assert_eq!(t.tail(10).row_count(), 0);
        assert_eq!(t.tail(0).row_count(), 10);
    }

    #[test]
    fn push_rows_bulk() {
        let schema = Schema::new(vec![Field::new("id", DataType::Int64)]);
        let mut b = TableBuilder::new("t", schema);
        let rows: Vec<Vec<Value>> = (0..5).map(|i| vec![Value::Int64(i)]).collect();
        b.push_rows(rows.iter().map(|r| r.as_slice())).unwrap();
        assert_eq!(b.row_count(), 5);
        assert_eq!(b.finish().row_count(), 5);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        TableBuilder::with_block_capacity(
            "t",
            Schema::new(vec![Field::new("id", DataType::Int64)]),
            0,
        );
    }
}

#[cfg(test)]
mod from_blocks_tests {
    use super::*;
    use crate::schema::Field;
    use crate::value::DataType;

    #[test]
    fn uneven_blocks_row_lookup() {
        let schema = Arc::new(Schema::new(vec![Field::new("id", DataType::Int64)]));
        let mk = |vals: &[i64]| {
            let mut b = Block::new(Arc::clone(&schema));
            for &v in vals {
                b.push_row(&[Value::Int64(v)]).unwrap();
            }
            Arc::new(b)
        };
        let t = Table::from_blocks(
            "s",
            Arc::clone(&schema),
            vec![mk(&[1, 2, 3]), mk(&[4]), mk(&[5, 6])],
            4,
        );
        assert_eq!(t.row_count(), 6);
        assert_eq!(t.block_count(), 3);
        assert_eq!(t.row(0)[0], Value::Int64(1));
        assert_eq!(t.row(3)[0], Value::Int64(4));
        assert_eq!(t.row(4)[0], Value::Int64(5));
        assert_eq!(t.row(5)[0], Value::Int64(6));
        assert_eq!(t.locate_row(4), (2, 0));
    }

    #[test]
    fn from_blocks_shares_arcs() {
        let schema = Arc::new(Schema::new(vec![Field::new("id", DataType::Int64)]));
        let mut b = Block::new(Arc::clone(&schema));
        b.push_row(&[Value::Int64(1)]).unwrap();
        let block = Arc::new(b);
        let t = Table::from_blocks("s", schema, vec![Arc::clone(&block)], 1);
        assert!(Arc::ptr_eq(&block, t.block(0)));
    }

    #[test]
    fn empty_from_blocks() {
        let schema = Arc::new(Schema::new(vec![Field::new("id", DataType::Int64)]));
        let t = Table::from_blocks("s", schema, vec![], 8);
        assert_eq!(t.row_count(), 0);
    }
}
