//! Storage error type.

use std::fmt;

use crate::value::DataType;

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A referenced column name does not exist in the schema.
    ColumnNotFound {
        /// The missing column's name.
        name: String,
    },
    /// A value's type did not match the column's declared type.
    TypeMismatch {
        /// Column name.
        column: String,
        /// Declared type.
        expected: DataType,
        /// Type actually supplied.
        actual: DataType,
    },
    /// A NULL was supplied for a non-nullable column.
    NullViolation {
        /// Column name.
        column: String,
    },
    /// A row had the wrong number of values for the schema.
    ArityMismatch {
        /// Number of fields the schema declares.
        expected: usize,
        /// Number of values supplied.
        actual: usize,
    },
    /// The named table already exists in the catalog.
    TableExists {
        /// Table name.
        name: String,
    },
    /// The named table does not exist in the catalog.
    TableNotFound {
        /// Table name.
        name: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ColumnNotFound { name } => write!(f, "column not found: {name}"),
            Self::TypeMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "type mismatch for column {column}: expected {expected:?}, got {actual:?}"
            ),
            Self::NullViolation { column } => {
                write!(f, "NULL supplied for non-nullable column {column}")
            }
            Self::ArityMismatch { expected, actual } => {
                write!(
                    f,
                    "row arity mismatch: schema has {expected} fields, row has {actual}"
                )
            }
            Self::TableExists { name } => write!(f, "table already exists: {name}"),
            Self::TableNotFound { name } => write!(f, "table not found: {name}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = StorageError::ColumnNotFound {
            name: "x".to_string(),
        };
        assert_eq!(e.to_string(), "column not found: x");
        let e = StorageError::ArityMismatch {
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains("3 fields"));
        let e = StorageError::TypeMismatch {
            column: "c".into(),
            expected: DataType::Int64,
            actual: DataType::Float64,
        };
        assert!(e.to_string().contains("Int64"));
    }
}
