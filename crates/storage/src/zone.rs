//! Zone maps: per-block, per-column min/max and null statistics.
//!
//! A zone map is the classic "small materialized aggregate" over one
//! block: for every column, the number of NULL slots plus (when the type
//! admits a sound ordering) numeric lower/upper bounds over the non-NULL
//! slots. Scans consult the zone map *before* touching a block's data:
//! if a predicate provably selects no row of the block, the whole block
//! is skipped — the same economics block sampling exploits, but with a
//! hard guarantee instead of a probabilistic one.
//!
//! Bounds are kept in `f64`, the domain SQL comparisons in this workspace
//! actually compare in ([`crate::value::Value::sql_cmp`] coerces INT64 and
//! BOOL operands to `f64`). Soundness rules:
//!
//! * INT64 endpoints whose magnitude exceeds 2⁵³ are not exactly
//!   representable in `f64`; such an endpoint widens to ±∞ rather than
//!   risk rounding *inward*.
//! * A FLOAT64 column containing any NaN gets no bounds at all: NaN
//!   compares as incomparable (NULL result), outside any interval.
//! * STR columns get no bounds (only null counts); string predicates are
//!   never pruned by zone.
//! * BOOL columns use 0/1 bounds, matching the `f64` coercion comparisons
//!   apply to them.

use crate::block::Block;
use crate::column::Column;

/// Largest integer magnitude exactly representable in `f64` (2⁵³).
const MAX_EXACT_I64_IN_F64: i64 = 1 << 53;

/// Per-column zone statistics within one block.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnZone {
    /// Number of NULL slots in the column.
    pub null_count: usize,
    /// `(min, max)` over the non-NULL slots as `f64`, or `None` when the
    /// column admits no sound numeric bounds (strings, all-NULL, NaN
    /// present). Endpoints may be ±∞ (INT64 widening).
    pub bounds: Option<(f64, f64)>,
}

impl ColumnZone {
    /// Whether every slot of the column is NULL within this block.
    pub fn all_null(&self, rows: usize) -> bool {
        self.null_count == rows
    }
}

/// Zone statistics for one block: row count plus one [`ColumnZone`] per
/// schema column, in schema order.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneMap {
    /// Rows in the block the map summarizes.
    pub rows: usize,
    /// Per-column statistics, in schema order.
    pub columns: Vec<ColumnZone>,
}

impl ZoneMap {
    /// Builds the zone map for a block in one pass per column.
    pub fn build(block: &Block) -> ZoneMap {
        ZoneMap {
            rows: block.len(),
            columns: block.columns().iter().map(column_zone).collect(),
        }
    }

    /// The zone for column `index`.
    pub fn column(&self, index: usize) -> &ColumnZone {
        &self.columns[index]
    }
}

fn column_zone(col: &Column) -> ColumnZone {
    let null_count = col.null_count();
    let valid = col.validity_mask();
    let is_valid = |i: usize| valid.is_none_or(|m| m[i]);
    let bounds = match col {
        Column::Int64 { data, .. } => {
            let mut range: Option<(i64, i64)> = None;
            for (i, &v) in data.iter().enumerate() {
                if is_valid(i) {
                    range = Some(match range {
                        None => (v, v),
                        Some((lo, hi)) => (lo.min(v), hi.max(v)),
                    });
                }
            }
            range.map(|(lo, hi)| {
                let lo = if lo < -MAX_EXACT_I64_IN_F64 {
                    f64::NEG_INFINITY
                } else {
                    lo as f64
                };
                let hi = if hi > MAX_EXACT_I64_IN_F64 {
                    f64::INFINITY
                } else {
                    hi as f64
                };
                (lo, hi)
            })
        }
        Column::Float64 { data, .. } => {
            let mut range: Option<(f64, f64)> = None;
            for (i, &v) in data.iter().enumerate() {
                if is_valid(i) {
                    if v.is_nan() {
                        return ColumnZone {
                            null_count,
                            bounds: None,
                        };
                    }
                    range = Some(match range {
                        None => (v, v),
                        Some((lo, hi)) => (lo.min(v), hi.max(v)),
                    });
                }
            }
            range
        }
        Column::Bool { data, .. } => {
            let mut range: Option<(f64, f64)> = None;
            for (i, &v) in data.iter().enumerate() {
                if is_valid(i) {
                    let x = if v { 1.0 } else { 0.0 };
                    range = Some(match range {
                        None => (x, x),
                        Some((lo, hi)) => (lo.min(x), hi.max(x)),
                    });
                }
            }
            range
        }
        Column::Str { .. } => None,
    };
    ColumnZone { null_count, bounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::value::{DataType, Value};
    use std::sync::Arc;

    fn block_of(rows: &[[Value; 2]]) -> Block {
        let schema = Arc::new(Schema::new(vec![
            Field::nullable("a", DataType::Int64),
            Field::nullable("b", DataType::Float64),
        ]));
        let mut b = Block::new(schema);
        for r in rows {
            b.push_row(r).unwrap();
        }
        b
    }

    #[test]
    fn basic_bounds_and_null_counts() {
        let b = block_of(&[
            [Value::Int64(3), Value::Float64(-1.5)],
            [Value::Int64(-7), Value::Null],
            [Value::Int64(10), Value::Float64(2.0)],
        ]);
        let z = ZoneMap::build(&b);
        assert_eq!(z.rows, 3);
        assert_eq!(z.column(0).bounds, Some((-7.0, 10.0)));
        assert_eq!(z.column(0).null_count, 0);
        assert_eq!(z.column(1).bounds, Some((-1.5, 2.0)));
        assert_eq!(z.column(1).null_count, 1);
    }

    #[test]
    fn all_null_column_has_no_bounds() {
        let b = block_of(&[[Value::Null, Value::Null], [Value::Null, Value::Null]]);
        let z = ZoneMap::build(&b);
        assert_eq!(z.column(0).bounds, None);
        assert!(z.column(0).all_null(z.rows));
        assert_eq!(z.column(1).null_count, 2);
    }

    #[test]
    fn nan_poisons_float_bounds() {
        let b = block_of(&[
            [Value::Int64(1), Value::Float64(1.0)],
            [Value::Int64(2), Value::Float64(f64::NAN)],
        ]);
        let z = ZoneMap::build(&b);
        assert_eq!(z.column(1).bounds, None);
        assert_eq!(z.column(0).bounds, Some((1.0, 2.0)));
    }

    #[test]
    fn huge_ints_widen_to_infinity() {
        let b = block_of(&[
            [Value::Int64(i64::MIN), Value::Float64(0.0)],
            [Value::Int64(i64::MAX), Value::Float64(0.0)],
        ]);
        let z = ZoneMap::build(&b);
        assert_eq!(z.column(0).bounds, Some((f64::NEG_INFINITY, f64::INFINITY)));
        // Exactly representable endpoints stay tight.
        let b = block_of(&[[Value::Int64(1 << 53), Value::Float64(0.0)]]);
        let z = ZoneMap::build(&b);
        assert_eq!(
            z.column(0).bounds,
            Some(((1i64 << 53) as f64, (1i64 << 53) as f64))
        );
    }

    #[test]
    fn str_and_bool_zones() {
        let schema = Arc::new(Schema::new(vec![
            Field::new("s", DataType::Str),
            Field::new("f", DataType::Bool),
        ]));
        let mut b = Block::new(schema);
        b.push_row(&[Value::str("x"), Value::Bool(true)]).unwrap();
        b.push_row(&[Value::str("y"), Value::Bool(true)]).unwrap();
        let z = ZoneMap::build(&b);
        assert_eq!(z.column(0).bounds, None);
        assert_eq!(z.column(1).bounds, Some((1.0, 1.0)));
    }
}
