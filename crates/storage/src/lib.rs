//! Block-structured columnar in-memory storage.
//!
//! The storage layer deliberately makes **blocks first-class**: a
//! [`Table`] is a sequence of fixed-capacity
//! [`Block`]s, each holding one typed [`Column`]
//! vector per schema field. Blocks are the minimum unit of data access — the
//! same role database pages play — so *block sampling* can skip entire blocks
//! before a single predicate is evaluated, reproducing the scan-skipping
//! economics that make block sampling attractive in the systems surveyed by
//! *Approximate Query Processing: No Silver Bullet* (SIGMOD 2017).
//!
//! Modules:
//! * [`value`] — scalar [`Value`]s and [`DataType`]s.
//! * [`mod@column`] — typed columnar vectors with optional validity masks.
//! * [`schema`] — named, typed fields.
//! * [`block`] — the fixed-capacity columnar batch.
//! * [`table`] — tables, builders, row/block iteration.
//! * [`catalog`] — a thread-safe name → table map.
//! * [`error`] — storage error type.
//! * [`codec`] — the table wire codec and `Partial` impl (tables merge by
//!   zero-copy block concatenation for shard-then-merge execution).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod block;
pub mod catalog;
pub mod codec;
pub mod column;
pub mod error;
pub mod schema;
pub mod table;
pub mod value;
pub mod zone;

pub use block::Block;
pub use catalog::Catalog;
pub use codec::{decode_table, encode_table};
pub use column::Column;
pub use error::StorageError;
pub use schema::{Field, Schema};
pub use table::{Table, TableBuilder};
pub use value::{DataType, Value};
pub use zone::{ColumnZone, ZoneMap};
