//! Typed columnar vectors with optional validity (NULL) masks.

use std::sync::Arc;

use crate::error::StorageError;
use crate::value::{DataType, Value};

/// A typed column of values.
///
/// Each variant holds a dense data vector plus an optional validity mask;
/// `None` means every slot is valid (the common case, kept mask-free so scan
/// kernels stay branch-light).
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit integers.
    Int64 {
        /// Dense values (slot content is unspecified where invalid).
        data: Vec<i64>,
        /// `true` = valid; `None` = all valid.
        validity: Option<Vec<bool>>,
    },
    /// 64-bit floats.
    Float64 {
        /// Dense values.
        data: Vec<f64>,
        /// Validity mask.
        validity: Option<Vec<bool>>,
    },
    /// UTF-8 strings (cheaply clonable).
    Str {
        /// Dense values.
        data: Vec<Arc<str>>,
        /// Validity mask.
        validity: Option<Vec<bool>>,
    },
    /// Booleans.
    Bool {
        /// Dense values.
        data: Vec<bool>,
        /// Validity mask.
        validity: Option<Vec<bool>>,
    },
}

impl Column {
    /// Creates an empty column of the given type.
    pub fn new(data_type: DataType) -> Self {
        Self::with_capacity(data_type, 0)
    }

    /// Creates an empty column with reserved capacity.
    pub fn with_capacity(data_type: DataType, capacity: usize) -> Self {
        match data_type {
            DataType::Int64 => Column::Int64 {
                data: Vec::with_capacity(capacity),
                validity: None,
            },
            DataType::Float64 => Column::Float64 {
                data: Vec::with_capacity(capacity),
                validity: None,
            },
            DataType::Str => Column::Str {
                data: Vec::with_capacity(capacity),
                validity: None,
            },
            DataType::Bool => Column::Bool {
                data: Vec::with_capacity(capacity),
                validity: None,
            },
        }
    }

    /// Builds an all-valid column from `i64` values.
    pub fn from_i64(data: Vec<i64>) -> Self {
        Column::Int64 {
            data,
            validity: None,
        }
    }

    /// Builds an all-valid column from `f64` values.
    pub fn from_f64(data: Vec<f64>) -> Self {
        Column::Float64 {
            data,
            validity: None,
        }
    }

    /// Builds an all-valid column from strings.
    pub fn from_str_values<S: AsRef<str>>(data: impl IntoIterator<Item = S>) -> Self {
        Column::Str {
            data: data.into_iter().map(|s| Arc::from(s.as_ref())).collect(),
            validity: None,
        }
    }

    /// Builds an all-valid column from booleans.
    pub fn from_bool(data: Vec<bool>) -> Self {
        Column::Bool {
            data,
            validity: None,
        }
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int64 { .. } => DataType::Int64,
            Column::Float64 { .. } => DataType::Float64,
            Column::Str { .. } => DataType::Str,
            Column::Bool { .. } => DataType::Bool,
        }
    }

    /// Number of slots (valid or not).
    pub fn len(&self) -> usize {
        match self {
            Column::Int64 { data, .. } => data.len(),
            Column::Float64 { data, .. } => data.len(),
            Column::Str { data, .. } => data.len(),
            Column::Bool { data, .. } => data.len(),
        }
    }

    /// Whether the column has no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn validity(&self) -> &Option<Vec<bool>> {
        match self {
            Column::Int64 { validity, .. }
            | Column::Float64 { validity, .. }
            | Column::Str { validity, .. }
            | Column::Bool { validity, .. } => validity,
        }
    }

    fn validity_mut(&mut self) -> &mut Option<Vec<bool>> {
        match self {
            Column::Int64 { validity, .. }
            | Column::Float64 { validity, .. }
            | Column::Str { validity, .. }
            | Column::Bool { validity, .. } => validity,
        }
    }

    /// Whether slot `i` holds NULL.
    pub fn is_null(&self, i: usize) -> bool {
        match self.validity() {
            Some(mask) => !mask[i],
            None => false,
        }
    }

    /// Number of NULL slots.
    pub fn null_count(&self) -> usize {
        match self.validity() {
            Some(mask) => mask.iter().filter(|&&v| !v).count(),
            None => 0,
        }
    }

    /// Appends a value, checking its type against the column's.
    ///
    /// Integers coerce into float columns (the one implicit widening SQL
    /// engines universally allow); all other mismatches error.
    pub fn push(&mut self, value: &Value) -> Result<(), StorageError> {
        if value.is_null() {
            self.push_null();
            return Ok(());
        }
        let mismatch = |col: &Column| StorageError::TypeMismatch {
            column: String::new(),
            expected: col.data_type(),
            actual: value.data_type().expect("non-null checked above"),
        };
        match self {
            Column::Int64 { data, validity } => {
                let v = value.as_i64().ok_or_else(|| {
                    mismatch(&Column::Int64 {
                        data: vec![],
                        validity: None,
                    })
                })?;
                data.push(v);
                if let Some(mask) = validity {
                    mask.push(true);
                }
            }
            Column::Float64 { data, validity } => {
                let v = value.as_f64().ok_or_else(|| {
                    mismatch(&Column::Float64 {
                        data: vec![],
                        validity: None,
                    })
                })?;
                data.push(v);
                if let Some(mask) = validity {
                    mask.push(true);
                }
            }
            Column::Str { data, validity } => match value {
                Value::Str(s) => {
                    data.push(Arc::clone(s));
                    if let Some(mask) = validity {
                        mask.push(true);
                    }
                }
                _ => {
                    return Err(mismatch(&Column::Str {
                        data: vec![],
                        validity: None,
                    }))
                }
            },
            Column::Bool { data, validity } => match value {
                Value::Bool(b) => {
                    data.push(*b);
                    if let Some(mask) = validity {
                        mask.push(true);
                    }
                }
                _ => {
                    return Err(mismatch(&Column::Bool {
                        data: vec![],
                        validity: None,
                    }))
                }
            },
        }
        Ok(())
    }

    /// Appends a NULL slot.
    pub fn push_null(&mut self) {
        let len = self.len();
        // Materialize the mask lazily on first NULL.
        if self.validity().is_none() {
            *self.validity_mut() = Some(vec![true; len]);
        }
        match self {
            Column::Int64 { data, .. } => data.push(0),
            Column::Float64 { data, .. } => data.push(0.0),
            Column::Str { data, .. } => data.push(Arc::from("")),
            Column::Bool { data, .. } => data.push(false),
        }
        self.validity_mut()
            .as_mut()
            .expect("mask materialized above")
            .push(false);
    }

    /// The value at slot `i` (NULL-aware).
    pub fn get(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match self {
            Column::Int64 { data, .. } => Value::Int64(data[i]),
            Column::Float64 { data, .. } => Value::Float64(data[i]),
            Column::Str { data, .. } => Value::Str(Arc::clone(&data[i])),
            Column::Bool { data, .. } => Value::Bool(data[i]),
        }
    }

    /// Numeric view of slot `i`: `None` for NULL or non-numeric columns.
    pub fn f64_at(&self, i: usize) -> Option<f64> {
        if self.is_null(i) {
            return None;
        }
        match self {
            Column::Int64 { data, .. } => Some(data[i] as f64),
            Column::Float64 { data, .. } => Some(data[i]),
            Column::Bool { data, .. } => Some(if data[i] { 1.0 } else { 0.0 }),
            Column::Str { .. } => None,
        }
    }

    /// Raw `i64` slice view (slot content is unspecified where invalid);
    /// `None` for other column types. Scan kernels read these directly
    /// instead of materializing per-row [`Value`]s.
    pub fn i64_values(&self) -> Option<&[i64]> {
        match self {
            Column::Int64 { data, .. } => Some(data),
            _ => None,
        }
    }

    /// Raw `f64` slice view; `None` for other column types.
    pub fn f64_values(&self) -> Option<&[f64]> {
        match self {
            Column::Float64 { data, .. } => Some(data),
            _ => None,
        }
    }

    /// Raw `bool` slice view; `None` for other column types.
    pub fn bool_values(&self) -> Option<&[bool]> {
        match self {
            Column::Bool { data, .. } => Some(data),
            _ => None,
        }
    }

    /// Raw string slice view; `None` for other column types.
    pub fn str_values(&self) -> Option<&[Arc<str>]> {
        match self {
            Column::Str { data, .. } => Some(data),
            _ => None,
        }
    }

    /// The validity mask as a slice (`true` = valid); `None` means every
    /// slot is valid.
    pub fn validity_mask(&self) -> Option<&[bool]> {
        self.validity().as_deref()
    }

    /// Appends slot `i` of `src` (same type) onto `self` without
    /// materializing a [`Value`] — the typed gather primitive row
    /// assembly (joins, samplers) is built on.
    ///
    /// # Panics
    /// Panics on type mismatch; gathers happen strictly between columns
    /// of one schema.
    pub fn push_slot(&mut self, src: &Column, i: usize) {
        if src.is_null(i) {
            self.push_null();
            return;
        }
        match (&mut *self, src) {
            (Column::Int64 { data, validity }, Column::Int64 { data: s, .. }) => {
                data.push(s[i]);
                if let Some(mask) = validity {
                    mask.push(true);
                }
            }
            (Column::Float64 { data, validity }, Column::Float64 { data: s, .. }) => {
                data.push(s[i]);
                if let Some(mask) = validity {
                    mask.push(true);
                }
            }
            // The one implicit widening `push` allows: INT64 into FLOAT64.
            (Column::Float64 { data, validity }, Column::Int64 { data: s, .. }) => {
                data.push(s[i] as f64);
                if let Some(mask) = validity {
                    mask.push(true);
                }
            }
            (Column::Str { data, validity }, Column::Str { data: s, .. }) => {
                data.push(Arc::clone(&s[i]));
                if let Some(mask) = validity {
                    mask.push(true);
                }
            }
            (Column::Bool { data, validity }, Column::Bool { data: s, .. }) => {
                data.push(s[i]);
                if let Some(mask) = validity {
                    mask.push(true);
                }
            }
            (dst, src) => panic!(
                "push_slot type mismatch: {} slot into {} column",
                src.data_type(),
                dst.data_type()
            ),
        }
    }

    /// Gathers the slots at `indices` into a new column (typed copies; no
    /// per-slot [`Value`] materialization).
    pub fn take(&self, indices: &[usize]) -> Column {
        let validity = take_mask(self.validity(), indices);
        match self {
            Column::Int64 { data, .. } => Column::Int64 {
                data: indices.iter().map(|&i| data[i]).collect(),
                validity,
            },
            Column::Float64 { data, .. } => Column::Float64 {
                data: indices.iter().map(|&i| data[i]).collect(),
                validity,
            },
            Column::Str { data, .. } => Column::Str {
                data: indices.iter().map(|&i| Arc::clone(&data[i])).collect(),
                validity,
            },
            Column::Bool { data, .. } => Column::Bool {
                data: indices.iter().map(|&i| data[i]).collect(),
                validity,
            },
        }
    }

    /// Appends all slots of `other` (same type) onto `self`.
    ///
    /// # Panics
    /// Panics on type mismatch — concatenation happens strictly between
    /// columns of one schema.
    pub fn append(&mut self, other: &Column) {
        assert_eq!(
            self.data_type(),
            other.data_type(),
            "append requires matching column types"
        );
        for i in 0..other.len() {
            if other.is_null(i) {
                self.push_null();
            } else {
                self.push(&other.get(i)).expect("types match");
            }
        }
    }
}

/// Gathers a validity mask through `indices`, normalizing an all-valid
/// result back to `None` (so gathered columns compare equal to columns
/// that never saw a NULL).
fn take_mask(validity: &Option<Vec<bool>>, indices: &[usize]) -> Option<Vec<bool>> {
    let mask = validity.as_ref()?;
    let gathered: Vec<bool> = indices.iter().map(|&i| mask[i]).collect();
    gathered.iter().any(|&v| !v).then_some(gathered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_roundtrip() {
        let mut c = Column::new(DataType::Int64);
        c.push(&Value::Int64(1)).unwrap();
        c.push(&Value::Null).unwrap();
        c.push(&Value::Int64(3)).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Value::Int64(1));
        assert_eq!(c.get(1), Value::Null);
        assert_eq!(c.get(2), Value::Int64(3));
        assert!(c.is_null(1));
        assert!(!c.is_null(0));
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn int_coerces_into_float_column() {
        let mut c = Column::new(DataType::Float64);
        c.push(&Value::Int64(2)).unwrap();
        assert_eq!(c.get(0), Value::Float64(2.0));
    }

    #[test]
    fn type_mismatch_errors() {
        let mut c = Column::new(DataType::Int64);
        assert!(c.push(&Value::str("x")).is_err());
        let mut c = Column::new(DataType::Str);
        assert!(c.push(&Value::Int64(1)).is_err());
        let mut c = Column::new(DataType::Bool);
        assert!(c.push(&Value::Float64(0.0)).is_err());
    }

    #[test]
    fn f64_view() {
        let c = Column::from_i64(vec![1, 2]);
        assert_eq!(c.f64_at(0), Some(1.0));
        let c = Column::from_bool(vec![true, false]);
        assert_eq!(c.f64_at(0), Some(1.0));
        assert_eq!(c.f64_at(1), Some(0.0));
        let c = Column::from_str_values(["a"]);
        assert_eq!(c.f64_at(0), None);
        let mut c = Column::new(DataType::Float64);
        c.push_null();
        assert_eq!(c.f64_at(0), None);
    }

    #[test]
    fn lazy_validity_mask() {
        let mut c = Column::from_i64(vec![1, 2, 3]);
        assert_eq!(c.null_count(), 0);
        c.push_null();
        assert_eq!(c.null_count(), 1);
        assert!(!c.is_null(0));
        assert!(c.is_null(3));
    }

    #[test]
    fn take_gathers_with_nulls() {
        let mut c = Column::new(DataType::Str);
        c.push(&Value::str("a")).unwrap();
        c.push_null();
        c.push(&Value::str("c")).unwrap();
        let t = c.take(&[2, 1, 0, 0]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.get(0), Value::str("c"));
        assert_eq!(t.get(1), Value::Null);
        assert_eq!(t.get(2), Value::str("a"));
        assert_eq!(t.get(3), Value::str("a"));
    }

    #[test]
    fn append_concatenates() {
        let mut a = Column::from_i64(vec![1, 2]);
        let mut b = Column::from_i64(vec![3]);
        b.push_null();
        a.append(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.get(2), Value::Int64(3));
        assert_eq!(a.get(3), Value::Null);
    }

    #[test]
    #[should_panic(expected = "matching column types")]
    fn append_rejects_mismatch() {
        let mut a = Column::from_i64(vec![1]);
        a.append(&Column::from_bool(vec![true]));
    }

    #[test]
    fn take_normalizes_all_valid_mask() {
        let mut c = Column::from_i64(vec![1, 2, 3]);
        c.push_null();
        // Gather only valid slots: the result must carry no mask at all,
        // exactly as the push-based gather produced.
        let t = c.take(&[0, 2]);
        assert_eq!(t, Column::from_i64(vec![1, 3]));
        let t = c.take(&[3, 0]);
        assert!(t.is_null(0));
        assert_eq!(t.get(1), Value::Int64(1));
    }

    #[test]
    fn slice_views() {
        let c = Column::from_i64(vec![4, 5]);
        assert_eq!(c.i64_values(), Some(&[4i64, 5][..]));
        assert_eq!(c.f64_values(), None);
        assert_eq!(c.validity_mask(), None);
        let mut c = Column::from_f64(vec![1.5]);
        c.push_null();
        assert_eq!(c.f64_values(), Some(&[1.5, 0.0][..]));
        assert_eq!(c.validity_mask(), Some(&[true, false][..]));
        assert_eq!(
            Column::from_bool(vec![true]).bool_values(),
            Some(&[true][..])
        );
        assert_eq!(
            Column::from_str_values(["a"]).str_values().map(<[_]>::len),
            Some(1)
        );
    }

    #[test]
    fn push_slot_gathers_typed() {
        let mut src = Column::from_f64(vec![1.0, 2.0]);
        src.push_null();
        let mut dst = Column::new(DataType::Float64);
        dst.push_slot(&src, 2);
        dst.push_slot(&src, 0);
        assert!(dst.is_null(0));
        assert_eq!(dst.get(1), Value::Float64(1.0));
        // INT64 widens into FLOAT64, as with push().
        let ints = Column::from_i64(vec![7]);
        dst.push_slot(&ints, 0);
        assert_eq!(dst.get(2), Value::Float64(7.0));
    }

    #[test]
    #[should_panic(expected = "push_slot type mismatch")]
    fn push_slot_rejects_mismatch() {
        let mut dst = Column::new(DataType::Int64);
        dst.push_slot(&Column::from_bool(vec![true]), 0);
    }

    #[test]
    fn builders() {
        assert_eq!(Column::from_f64(vec![1.5]).get(0), Value::Float64(1.5));
        assert_eq!(
            Column::from_str_values(vec!["x", "y"]).get(1),
            Value::str("y")
        );
        assert_eq!(Column::with_capacity(DataType::Bool, 10).len(), 0);
        assert!(Column::new(DataType::Int64).is_empty());
    }
}
