//! Schemas: ordered, named, typed fields.

use serde::{Deserialize, Serialize};

use crate::error::StorageError;
use crate::value::DataType;

/// One named, typed column declaration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Column name (unique within a schema).
    pub name: String,
    /// Column data type.
    pub data_type: DataType,
    /// Whether NULLs are permitted.
    pub nullable: bool,
}

impl Field {
    /// A non-nullable field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Self {
            name: name.into(),
            data_type,
            nullable: false,
        }
    }

    /// A nullable field.
    pub fn nullable(name: impl Into<String>, data_type: DataType) -> Self {
        Self {
            name: name.into(),
            data_type,
            nullable: true,
        }
    }
}

/// An ordered collection of fields.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema from fields.
    ///
    /// # Panics
    /// Panics if two fields share a name — schemas are construction-time
    /// artifacts, so a duplicate is a programming error, not runtime input.
    pub fn new(fields: Vec<Field>) -> Self {
        for (i, f) in fields.iter().enumerate() {
            assert!(
                !fields[..i].iter().any(|g| g.name == f.name),
                "duplicate column name in schema: {}",
                f.name
            );
        }
        Self { fields }
    }

    /// The fields, in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the named field.
    pub fn index_of(&self, name: &str) -> Result<usize, StorageError> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| StorageError::ColumnNotFound {
                name: name.to_string(),
            })
    }

    /// The named field.
    pub fn field(&self, name: &str) -> Result<&Field, StorageError> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// Field at a positional index.
    pub fn field_at(&self, index: usize) -> &Field {
        &self.fields[index]
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::nullable("price", DataType::Float64),
            Field::new("tag", DataType::Str),
        ])
    }

    #[test]
    fn lookup_by_name_and_index() {
        let s = schema();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.index_of("price").unwrap(), 1);
        assert_eq!(s.field("tag").unwrap().data_type, DataType::Str);
        assert_eq!(s.field_at(0).name, "id");
        assert_eq!(s.names(), vec!["id", "price", "tag"]);
    }

    #[test]
    fn missing_column_errors() {
        let s = schema();
        assert!(matches!(
            s.index_of("nope"),
            Err(StorageError::ColumnNotFound { .. })
        ));
    }

    #[test]
    fn nullable_flag() {
        let s = schema();
        assert!(!s.field("id").unwrap().nullable);
        assert!(s.field("price").unwrap().nullable);
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn rejects_duplicates() {
        Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("a", DataType::Float64),
        ]);
    }
}
