//! Blocks: fixed-capacity columnar batches, the minimum unit of data access.
//!
//! A block plays the role a disk page plays in the systems NSB surveys:
//! block sampling decides per *block* whether to touch it at all, which is
//! where its system efficiency comes from.

use std::sync::Arc;

use crate::column::Column;
use crate::error::StorageError;
use crate::schema::Schema;
use crate::value::Value;

/// A columnar batch of rows sharing one schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    schema: Arc<Schema>,
    columns: Vec<Column>,
    len: usize,
}

impl Block {
    /// Creates an empty block for the schema.
    pub fn new(schema: Arc<Schema>) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::new(f.data_type))
            .collect();
        Self {
            schema,
            columns,
            len: 0,
        }
    }

    /// Creates an empty block with per-column reserved capacity.
    pub fn with_capacity(schema: Arc<Schema>, capacity: usize) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::with_capacity(f.data_type, capacity))
            .collect();
        Self {
            schema,
            columns,
            len: 0,
        }
    }

    /// Assembles a block directly from columns (lengths must agree and
    /// types must match the schema).
    ///
    /// # Panics
    /// Panics on length or type disagreement; blocks are built by trusted
    /// operators, so disagreement is a bug.
    pub fn from_columns(schema: Arc<Schema>, columns: Vec<Column>) -> Self {
        assert_eq!(
            schema.len(),
            columns.len(),
            "column count must match schema"
        );
        let len = columns.first().map_or(0, Column::len);
        for (f, c) in schema.fields().iter().zip(&columns) {
            assert_eq!(
                f.data_type,
                c.data_type(),
                "column {} type mismatch",
                f.name
            );
            assert_eq!(c.len(), len, "ragged columns in block");
        }
        Self {
            schema,
            columns,
            len,
        }
    }

    /// The block's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the block holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The columns, in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column at index.
    pub fn column(&self, index: usize) -> &Column {
        &self.columns[index]
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column, StorageError> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    /// Appends a row of values.
    pub fn push_row(&mut self, row: &[Value]) -> Result<(), StorageError> {
        if row.len() != self.schema.len() {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.len(),
                actual: row.len(),
            });
        }
        for ((value, column), field) in row.iter().zip(&mut self.columns).zip(self.schema.fields())
        {
            if value.is_null() && !field.nullable {
                return Err(StorageError::NullViolation {
                    column: field.name.clone(),
                });
            }
            column.push(value).map_err(|e| match e {
                StorageError::TypeMismatch {
                    expected, actual, ..
                } => StorageError::TypeMismatch {
                    column: field.name.clone(),
                    expected,
                    actual,
                },
                other => other,
            })?;
        }
        self.len += 1;
        Ok(())
    }

    /// Materializes row `i` as values.
    ///
    /// Allocates a fresh `Vec<Value>` per call — convenience for tests,
    /// display, and result inspection only. Hot paths (scan kernels, join
    /// materialization, samplers) read column slices or gather with
    /// [`Block::gather_row`] / [`Column::push_slot`] instead.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// Appends row `i` of `src` (same schema shape: equal arity, matching
    /// column types) onto this block via typed per-column copies — no
    /// `Vec<Value>` materialization. The gather primitive samplers use.
    ///
    /// # Panics
    /// Panics on arity or column-type mismatch.
    pub fn gather_row(&mut self, src: &Block, i: usize) {
        assert_eq!(
            self.columns.len(),
            src.columns.len(),
            "gather_row arity mismatch"
        );
        for (dst, s) in self.columns.iter_mut().zip(&src.columns) {
            dst.push_slot(s, i);
        }
        self.len += 1;
    }

    /// Appends the concatenation of `left` row `li` and `right` row `ri`
    /// onto this block, whose columns are `left`'s followed by `right`'s
    /// (the shape of a join output) — typed per-column copies, no
    /// `Vec<Value>` materialization.
    ///
    /// # Panics
    /// Panics on arity or column-type mismatch.
    pub fn gather_concat_row(&mut self, left: &Block, li: usize, right: &Block, ri: usize) {
        assert_eq!(
            self.columns.len(),
            left.columns.len() + right.columns.len(),
            "gather_concat_row arity mismatch"
        );
        let (dl, dr) = self.columns.split_at_mut(left.columns.len());
        for (dst, s) in dl.iter_mut().zip(&left.columns) {
            dst.push_slot(s, li);
        }
        for (dst, s) in dr.iter_mut().zip(&right.columns) {
            dst.push_slot(s, ri);
        }
        self.len += 1;
    }

    /// Builds this block's [`crate::zone::ZoneMap`] (one pass per column).
    pub fn zone_map(&self) -> crate::zone::ZoneMap {
        crate::zone::ZoneMap::build(self)
    }

    /// Gathers the rows at `indices` into a new block.
    pub fn take(&self, indices: &[usize]) -> Block {
        let columns = self.columns.iter().map(|c| c.take(indices)).collect();
        Block {
            schema: Arc::clone(&self.schema),
            columns,
            len: indices.len(),
        }
    }

    /// Filters rows by a boolean mask (`mask.len() == self.len()`).
    pub fn filter(&self, mask: &[bool]) -> Block {
        assert_eq!(mask.len(), self.len, "mask length must equal row count");
        let indices: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &keep)| keep.then_some(i))
            .collect();
        self.take(&indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::value::DataType;

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::nullable("v", DataType::Float64),
        ]))
    }

    fn sample_block() -> Block {
        let mut b = Block::new(schema());
        b.push_row(&[Value::Int64(1), Value::Float64(10.0)])
            .unwrap();
        b.push_row(&[Value::Int64(2), Value::Null]).unwrap();
        b.push_row(&[Value::Int64(3), Value::Float64(30.0)])
            .unwrap();
        b
    }

    #[test]
    fn push_and_read_rows() {
        let b = sample_block();
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.row(0), vec![Value::Int64(1), Value::Float64(10.0)]);
        assert_eq!(b.row(1), vec![Value::Int64(2), Value::Null]);
        assert_eq!(b.column_by_name("id").unwrap().get(2), Value::Int64(3));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut b = Block::new(schema());
        assert!(matches!(
            b.push_row(&[Value::Int64(1)]),
            Err(StorageError::ArityMismatch { .. })
        ));
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn null_violation_rejected() {
        let mut b = Block::new(schema());
        assert!(matches!(
            b.push_row(&[Value::Null, Value::Float64(1.0)]),
            Err(StorageError::NullViolation { .. })
        ));
    }

    #[test]
    fn type_mismatch_names_column() {
        let mut b = Block::new(schema());
        let err = b
            .push_row(&[Value::str("oops"), Value::Float64(1.0)])
            .unwrap_err();
        match err {
            StorageError::TypeMismatch { column, .. } => assert_eq!(column, "id"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn take_and_filter() {
        let b = sample_block();
        let t = b.take(&[2, 0]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.row(0)[0], Value::Int64(3));
        let f = b.filter(&[true, false, true]);
        assert_eq!(f.len(), 2);
        assert_eq!(f.row(1)[0], Value::Int64(3));
    }

    #[test]
    fn from_columns_checks() {
        let s = schema();
        let b = Block::from_columns(
            Arc::clone(&s),
            vec![
                Column::from_i64(vec![1, 2]),
                Column::from_f64(vec![1.0, 2.0]),
            ],
        );
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn gather_concat_row_packs_join_rows() {
        let left = sample_block();
        let right = {
            let s = Arc::new(Schema::new(vec![Field::new("k", DataType::Int64)]));
            let mut b = Block::new(s);
            b.push_row(&[Value::Int64(7)]).unwrap();
            b.push_row(&[Value::Int64(8)]).unwrap();
            b
        };
        let out_schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::nullable("v", DataType::Float64),
            Field::new("k", DataType::Int64),
        ]));
        let mut out = Block::new(out_schema);
        out.gather_concat_row(&left, 1, &right, 0);
        out.gather_concat_row(&left, 2, &right, 1);
        assert_eq!(out.len(), 2);
        assert_eq!(
            out.row(0),
            vec![Value::Int64(2), Value::Null, Value::Int64(7)]
        );
        assert_eq!(
            out.row(1),
            vec![Value::Int64(3), Value::Float64(30.0), Value::Int64(8)]
        );
    }

    #[test]
    #[should_panic(expected = "ragged columns")]
    fn from_columns_rejects_ragged() {
        Block::from_columns(
            schema(),
            vec![Column::from_i64(vec![1]), Column::from_f64(vec![1.0, 2.0])],
        );
    }
}
