//! Binary wire codec for tables — the storage layer's half of the
//! two-step aggregation contract.
//!
//! A [`Table`] is itself a partial: sharded execution partitions a table's
//! blocks, per-shard operators may materialize small result tables, and a
//! coordinator concatenates them. The codec here serializes schema, blocks,
//! and columns (including validity masks) into the workspace wire format so
//! a table partial can be cached or shipped like any sketch.
//!
//! [`encode_value`]/[`decode_value`] are exported for downstream codecs
//! (sampling designs carry stratum-key [`Value`]s in their headers).

use std::sync::Arc;

use aqp_mergeable::{tag, wire, CodecError, MergeError, Partial};
use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::block::Block;
use crate::column::Column;
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::{DataType, Value};

/// Decoder allocation caps: headers declaring more than this are corrupt.
const MAX_FIELDS: usize = 1 << 12;
const MAX_BLOCKS: usize = 1 << 24;
const MAX_ROWS_PER_BLOCK: usize = 1 << 24;

fn dtype_byte(dt: DataType) -> u8 {
    match dt {
        DataType::Int64 => 0,
        DataType::Float64 => 1,
        DataType::Str => 2,
        DataType::Bool => 3,
    }
}

fn dtype_from_byte(b: u8) -> Result<DataType, CodecError> {
    match b {
        0 => Ok(DataType::Int64),
        1 => Ok(DataType::Float64),
        2 => Ok(DataType::Str),
        3 => Ok(DataType::Bool),
        _ => Err(CodecError::BadDimensions),
    }
}

/// Serializes one scalar [`Value`] (type byte + payload).
pub fn encode_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0xFF),
        Value::Int64(x) => {
            buf.put_u8(0);
            wire::write_i64(buf, *x);
        }
        Value::Float64(x) => {
            buf.put_u8(1);
            wire::write_f64(buf, *x);
        }
        Value::Str(s) => {
            buf.put_u8(2);
            wire::write_str(buf, s);
        }
        Value::Bool(b) => {
            buf.put_u8(3);
            buf.put_u8(*b as u8);
        }
    }
}

/// Deserializes one scalar [`Value`].
pub fn decode_value(buf: &mut &[u8]) -> Result<Value, CodecError> {
    match wire::read_u8(buf)? {
        0xFF => Ok(Value::Null),
        0 => Ok(Value::Int64(wire::read_i64(buf)?)),
        1 => Ok(Value::Float64(wire::read_f64(buf)?)),
        2 => Ok(Value::Str(Arc::from(wire::read_str(buf)?.as_str()))),
        3 => Ok(Value::Bool(wire::read_u8(buf)? != 0)),
        _ => Err(CodecError::BadDimensions),
    }
}

fn encode_schema(buf: &mut BytesMut, schema: &Schema) {
    buf.put_u32(schema.len() as u32);
    for f in schema.fields() {
        wire::write_str(buf, &f.name);
        buf.put_u8(dtype_byte(f.data_type));
        buf.put_u8(f.nullable as u8);
    }
}

fn decode_schema(buf: &mut &[u8]) -> Result<Schema, CodecError> {
    let n = wire::read_u32(buf)? as usize;
    if n > MAX_FIELDS {
        return Err(CodecError::BadDimensions);
    }
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        let name = wire::read_str(buf)?;
        let data_type = dtype_from_byte(wire::read_u8(buf)?)?;
        let nullable = wire::read_u8(buf)? != 0;
        if fields.iter().any(|f: &Field| f.name == name) {
            return Err(CodecError::BadDimensions);
        }
        fields.push(Field {
            name,
            data_type,
            nullable,
        });
    }
    Ok(Schema::new(fields))
}

fn encode_column(buf: &mut BytesMut, col: &Column) {
    let encode_validity = |buf: &mut BytesMut, validity: &Option<Vec<bool>>| match validity {
        None => buf.put_u8(0),
        Some(mask) => {
            buf.put_u8(1);
            for &v in mask {
                buf.put_u8(v as u8);
            }
        }
    };
    match col {
        Column::Int64 { data, validity } => {
            encode_validity(buf, validity);
            for &v in data {
                wire::write_i64(buf, v);
            }
        }
        Column::Float64 { data, validity } => {
            encode_validity(buf, validity);
            for &v in data {
                wire::write_f64(buf, v);
            }
        }
        Column::Str { data, validity } => {
            encode_validity(buf, validity);
            for s in data {
                wire::write_str(buf, s);
            }
        }
        Column::Bool { data, validity } => {
            encode_validity(buf, validity);
            for &v in data {
                buf.put_u8(v as u8);
            }
        }
    }
}

fn decode_column(buf: &mut &[u8], dt: DataType, rows: usize) -> Result<Column, CodecError> {
    let validity = if wire::read_u8(buf)? != 0 {
        wire::need(buf, rows)?;
        let mut mask = Vec::with_capacity(rows);
        for _ in 0..rows {
            mask.push(buf.get_u8() != 0);
        }
        Some(mask)
    } else {
        None
    };
    Ok(match dt {
        DataType::Int64 => {
            wire::need(buf, rows * 8)?;
            let mut data = Vec::with_capacity(rows);
            for _ in 0..rows {
                data.push(buf.get_u64() as i64);
            }
            Column::Int64 { data, validity }
        }
        DataType::Float64 => {
            wire::need(buf, rows * 8)?;
            let mut data = Vec::with_capacity(rows);
            for _ in 0..rows {
                data.push(f64::from_bits(buf.get_u64()));
            }
            Column::Float64 { data, validity }
        }
        DataType::Str => {
            let mut data = Vec::with_capacity(rows.min(1024));
            for _ in 0..rows {
                data.push(Arc::from(wire::read_str(buf)?.as_str()));
            }
            Column::Str { data, validity }
        }
        DataType::Bool => {
            wire::need(buf, rows)?;
            let mut data = Vec::with_capacity(rows);
            for _ in 0..rows {
                data.push(buf.get_u8() != 0);
            }
            Column::Bool { data, validity }
        }
    })
}

/// Serializes a table: name, block capacity, schema, then each block's
/// columns in schema order.
pub fn encode_table(t: &Table) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + t.approx_bytes());
    wire::write_header(&mut buf, tag::TABLE);
    wire::write_str(&mut buf, t.name());
    buf.put_u64(t.block_capacity() as u64);
    encode_schema(&mut buf, t.schema());
    buf.put_u32(t.block_count() as u32);
    for (_, block) in t.iter_blocks() {
        buf.put_u64(block.len() as u64);
        for col in block.columns() {
            encode_column(&mut buf, col);
        }
    }
    buf.freeze()
}

/// Deserializes a table produced by [`encode_table`].
pub fn decode_table(mut buf: &[u8]) -> Result<Table, CodecError> {
    let buf = &mut buf;
    wire::read_header(buf, tag::TABLE)?;
    let name = wire::read_str(buf)?;
    let block_capacity = wire::read_u64(buf)? as usize;
    if block_capacity == 0 {
        return Err(CodecError::BadDimensions);
    }
    let schema = Arc::new(decode_schema(buf)?);
    let num_blocks = wire::read_u32(buf)? as usize;
    if num_blocks > MAX_BLOCKS {
        return Err(CodecError::BadDimensions);
    }
    let mut blocks = Vec::with_capacity(num_blocks);
    for _ in 0..num_blocks {
        let rows = wire::read_u64(buf)? as usize;
        if rows > MAX_ROWS_PER_BLOCK {
            return Err(CodecError::BadDimensions);
        }
        let mut columns = Vec::with_capacity(schema.len());
        for field in schema.fields() {
            columns.push(decode_column(buf, field.data_type, rows)?);
        }
        blocks.push(Arc::new(Block::from_columns(Arc::clone(&schema), columns)));
    }
    Ok(Table::from_blocks(name, schema, blocks, block_capacity))
}

fn schema_summary(schema: &Schema) -> String {
    let cols: Vec<String> = schema
        .fields()
        .iter()
        .map(|f| format!("{}:{}", f.name, f.data_type))
        .collect();
    format!("[{}]", cols.join(", "))
}

/// Tables merge by block concatenation (zero-copy: the merged table shares
/// the input blocks' `Arc`s). Schemas must be identical; the receiving
/// table's name and block capacity win. Merge-equals-union is exact: the
/// merged table holds precisely the rows of both inputs, in order.
impl Partial for Table {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.schema().as_ref() != other.schema().as_ref() {
            return Err(MergeError::Incompatible {
                kind: "table",
                expected: schema_summary(self.schema()),
                found: schema_summary(other.schema()),
            });
        }
        let blocks: Vec<Arc<Block>> = self
            .blocks()
            .iter()
            .chain(other.blocks())
            .map(Arc::clone)
            .collect();
        *self = Table::from_blocks(
            self.name().to_string(),
            Arc::clone(self.schema()),
            blocks,
            self.block_capacity(),
        );
        Ok(())
    }

    fn to_bytes(&self) -> Bytes {
        encode_table(self)
    }

    fn from_bytes(buf: &[u8]) -> Result<Self, CodecError> {
        decode_table(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn sample_table(n: usize) -> Table {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::nullable("price", DataType::Float64),
            Field::new("tag", DataType::Str),
            Field::new("flag", DataType::Bool),
        ]);
        let mut b = TableBuilder::with_block_capacity("t", schema, 7);
        for i in 0..n {
            let price = if i % 5 == 0 {
                Value::Null
            } else {
                Value::Float64(i as f64 * 1.5)
            };
            b.push_row(&[
                Value::Int64(i as i64),
                price,
                Value::str(format!("tag{}", i % 3)),
                Value::Bool(i % 2 == 0),
            ])
            .unwrap();
        }
        b.finish()
    }

    fn tables_equal(a: &Table, b: &Table) -> bool {
        a.name() == b.name()
            && a.schema() == b.schema()
            && a.row_count() == b.row_count()
            && (0..a.row_count()).all(|i| a.row(i) == b.row(i))
    }

    #[test]
    fn table_roundtrip_with_nulls_and_strings() {
        let t = sample_table(23);
        let back = decode_table(&encode_table(&t)).unwrap();
        assert!(tables_equal(&t, &back));
        assert_eq!(back.block_capacity(), t.block_capacity());
        assert_eq!(back.block_count(), t.block_count());
    }

    #[test]
    fn empty_table_roundtrip() {
        let t = sample_table(0);
        let back = decode_table(&encode_table(&t)).unwrap();
        assert_eq!(back.row_count(), 0);
        assert_eq!(back.schema(), t.schema());
    }

    #[test]
    fn truncation_and_corrupt_header_error() {
        let bytes = encode_table(&sample_table(10));
        assert!(decode_table(&[]).is_err());
        for cut in [0, 1, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_table(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut wrong = bytes.to_vec();
        wrong[0] = 0x01;
        assert_eq!(decode_table(&wrong).err(), Some(CodecError::BadMagic(0x01)));
        let mut future = bytes.to_vec();
        future[1] = 99;
        assert_eq!(
            decode_table(&future).err(),
            Some(CodecError::BadVersion(99))
        );
    }

    #[test]
    fn merge_concatenates_rows_in_order() {
        let a = sample_table(10);
        let b = sample_table(25);
        let mut merged = a.clone();
        Partial::merge(&mut merged, &b).unwrap();
        assert_eq!(merged.row_count(), 35);
        for i in 0..10 {
            assert_eq!(merged.row(i), a.row(i));
        }
        for i in 0..25 {
            assert_eq!(merged.row(10 + i), b.row(i));
        }
        // Zero-copy: blocks are shared, not duplicated.
        assert!(Arc::ptr_eq(merged.block(0), a.block(0)));
    }

    #[test]
    fn merge_rejects_schema_mismatch() {
        let mut a = sample_table(3);
        let snapshot_rows = a.row_count();
        let other = {
            let schema = Schema::new(vec![Field::new("x", DataType::Int64)]);
            TableBuilder::new("o", schema).finish()
        };
        let err = Partial::merge(&mut a, &other).unwrap_err();
        assert!(
            matches!(err, MergeError::Incompatible { kind: "table", .. }),
            "{err}"
        );
        assert_eq!(a.row_count(), snapshot_rows);
    }

    #[test]
    fn value_codec_roundtrip() {
        let values = [
            Value::Null,
            Value::Int64(-42),
            Value::Float64(2.5),
            Value::str("héllo"),
            Value::Bool(true),
        ];
        let mut buf = BytesMut::new();
        for v in &values {
            encode_value(&mut buf, v);
        }
        let frozen = buf.freeze();
        let mut slice: &[u8] = &frozen;
        for v in &values {
            assert_eq!(&decode_value(&mut slice).unwrap(), v);
        }
        let mut empty: &[u8] = &[];
        assert!(decode_value(&mut empty).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::table::TableBuilder;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn arbitrary_tables_roundtrip(
            rows in proptest::collection::vec((any::<i64>(), -1e12f64..1e12, any::<bool>()), 0..60),
            cap in 1usize..16,
        ) {
            let schema = Schema::new(vec![
                Field::new("a", DataType::Int64),
                Field::new("b", DataType::Float64),
                Field::new("c", DataType::Bool),
            ]);
            let mut b = TableBuilder::with_block_capacity("p", schema, cap);
            for &(x, y, z) in &rows {
                b.push_row(&[Value::Int64(x), Value::Float64(y), Value::Bool(z)]).unwrap();
            }
            let t = b.finish();
            let back = Table::from_bytes(&Partial::to_bytes(&t)).unwrap();
            prop_assert_eq!(back.row_count(), t.row_count());
            for i in 0..t.row_count() {
                prop_assert_eq!(back.row(i), t.row(i));
            }
        }

        #[test]
        fn truncated_tables_never_panic(
            n in 0usize..40,
            frac in 0.0f64..1.0,
        ) {
            let schema = Schema::new(vec![Field::new("a", DataType::Int64)]);
            let mut b = TableBuilder::with_block_capacity("p", schema, 8);
            for i in 0..n {
                b.push_row(&[Value::Int64(i as i64)]).unwrap();
            }
            let bytes = Partial::to_bytes(&b.finish());
            let cut = ((bytes.len() - 1) as f64 * frac) as usize;
            prop_assert!(Table::from_bytes(&bytes[..cut]).is_err());
        }
    }
}
