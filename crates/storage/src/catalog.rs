//! A thread-safe catalog mapping table names to tables.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::StorageError;
use crate::table::Table;

/// A concurrent name → table map. Readers (query executors) take a shared
/// lock; writers (loads, appends) take an exclusive one.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<BTreeMap<String, Arc<Table>>>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a table under its own name.
    ///
    /// Errors if the name is taken.
    pub fn register(&self, table: Table) -> Result<Arc<Table>, StorageError> {
        let mut tables = self.tables.write();
        let name = table.name().to_string();
        if tables.contains_key(&name) {
            return Err(StorageError::TableExists { name });
        }
        let arc = Arc::new(table);
        tables.insert(name, Arc::clone(&arc));
        Ok(arc)
    }

    /// Replaces (or inserts) a table, returning the previous version if any.
    /// This is the "data update" path the offline-synopsis staleness
    /// experiments exercise.
    pub fn replace(&self, table: Table) -> Option<Arc<Table>> {
        let mut tables = self.tables.write();
        tables.insert(table.name().to_string(), Arc::new(table))
    }

    /// Looks up a table by name.
    pub fn get(&self, name: &str) -> Result<Arc<Table>, StorageError> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::TableNotFound {
                name: name.to_string(),
            })
    }

    /// Removes a table, returning it if present.
    pub fn remove(&self, name: &str) -> Option<Arc<Table>> {
        self.tables.write().remove(name)
    }

    /// All registered table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.read().len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::table::TableBuilder;
    use crate::value::{DataType, Value};

    fn table(name: &str, rows: i64) -> Table {
        let schema = Schema::new(vec![Field::new("id", DataType::Int64)]);
        let mut b = TableBuilder::new(name, schema);
        for i in 0..rows {
            b.push_row(&[Value::Int64(i)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn register_and_get() {
        let c = Catalog::new();
        assert!(c.is_empty());
        c.register(table("a", 3)).unwrap();
        assert_eq!(c.get("a").unwrap().row_count(), 3);
        assert_eq!(c.len(), 1);
        assert_eq!(c.table_names(), vec!["a".to_string()]);
    }

    #[test]
    fn duplicate_registration_fails() {
        let c = Catalog::new();
        c.register(table("a", 1)).unwrap();
        assert!(matches!(
            c.register(table("a", 2)),
            Err(StorageError::TableExists { .. })
        ));
    }

    #[test]
    fn replace_swaps_versions() {
        let c = Catalog::new();
        c.register(table("a", 1)).unwrap();
        let old = c.replace(table("a", 5)).unwrap();
        assert_eq!(old.row_count(), 1);
        assert_eq!(c.get("a").unwrap().row_count(), 5);
    }

    #[test]
    fn missing_table_errors() {
        let c = Catalog::new();
        assert!(matches!(
            c.get("nope"),
            Err(StorageError::TableNotFound { .. })
        ));
    }

    #[test]
    fn remove_returns_table() {
        let c = Catalog::new();
        c.register(table("a", 2)).unwrap();
        assert_eq!(c.remove("a").unwrap().row_count(), 2);
        assert!(c.remove("a").is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn concurrent_readers() {
        let c = Arc::new(Catalog::new());
        c.register(table("a", 100)).unwrap();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        assert_eq!(c.get("a").unwrap().row_count(), 100);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
