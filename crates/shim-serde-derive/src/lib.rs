//! Offline stand-in for `serde_derive`.
//!
//! The workspace marks types `#[derive(Serialize, Deserialize)]` to
//! document wire-readiness, but nothing in-tree performs generic serde
//! serialization (the sketches use their own binary codec). These derives
//! therefore expand to nothing, which keeps the attribute surface
//! compiling without the real proc-macro stack (syn/quote) the offline
//! build environment cannot fetch.

#![deny(unsafe_code)]

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
