//! Canonical metric names shared across crates.
//!
//! Metrics are looked up by string name in the global registry; a typo
//! silently creates a second time series. Emitters and dashboards/tests
//! should both reference these constants so the names stay a single
//! source of truth. [`ALL_METRIC_NAMES`] enumerates every series the
//! workspace emits; a session-level test asserts that everything showing
//! up in a Prometheus scrape is listed here.

/// Counter: base-table blocks skipped by zone-map pruning. Always on.
/// The prune *rate* is `pruned / (pruned + scanned)` using
/// [`BLOCKS_SCANNED_TOTAL`] as the denominator.
pub const BLOCKS_PRUNED_TOTAL: &str = "aqp_blocks_pruned_total";

/// Counter: base-table blocks actually read by scans. Always on.
pub const BLOCKS_SCANNED_TOTAL: &str = "aqp_blocks_scanned_total";

/// Labeled counter: plan dispatches through the typed kernel path vs the
/// scalar fallback. Always on.
pub const KERNEL_DISPATCH_TOTAL: &str = "aqp_kernel_dispatch_total";

/// Label key for [`KERNEL_DISPATCH_TOTAL`].
pub const KERNEL_DISPATCH_LABEL: &str = "path";

/// Label value: the plan compiled to typed kernels.
pub const KERNEL_DISPATCH_KERNEL: &str = "kernel";

/// Label value: the plan ran on the scalar `Value` path.
pub const KERNEL_DISPATCH_FALLBACK: &str = "fallback";

/// Histogram: time a morsel spends queued before a worker picks it up.
pub const POOL_QUEUE_WAIT_US: &str = "engine_pool_queue_wait_us";

/// Gauge: workers participating in the most recent pooled operator.
pub const POOL_WORKERS: &str = "engine_pool_workers";

/// Gauge: busy-time fraction of the most recent pooled operator.
pub const POOL_WORKER_UTILIZATION: &str = "engine_pool_worker_utilization";

// ---- Router (AqpSession) series ------------------------------------------

/// Labeled counter: runtime + static declines by the router, keyed by
/// [`DECLINE_REASON_LABEL`]. The label values are exactly
/// `DeclineReason::tag()` strings, enumerated in [`DECLINE_REASON_TAGS`].
pub const DECLINE_TOTAL: &str = "aqp_decline_total";

/// Label key for [`DECLINE_TOTAL`]: the machine-readable decline tag.
pub const DECLINE_REASON_LABEL: &str = "reason";

/// Counter: eligibility probes the router skipped because the static
/// analyzer already blocked the family.
pub const PROBES_SKIPPED_TOTAL: &str = "aqp_probes_skipped_total";

/// Labeled counter: queries answered, keyed by [`ROUTED_WINNER_LABEL`].
/// The label values are `TechniqueKind::name()` strings, enumerated in
/// [`ROUTED_WINNER_TAGS`].
pub const ROUTED_TOTAL: &str = "aqp_routed_total";

/// Label key for [`ROUTED_TOTAL`]: the winning technique's kebab name.
pub const ROUTED_WINNER_LABEL: &str = "winner";

/// Every label value [`DECLINE_TOTAL`] can carry — one per
/// `DeclineReason::tag()`. Kept in the reason enum's declaration order;
/// an `aqp-core` test asserts the two lists cannot drift.
pub const DECLINE_REASON_TAGS: &[&str] = &[
    "unsupported-shape",
    "unsupported-aggregate",
    "joins-unsupported",
    "group-by-unsupported",
    "no-synopsis",
    "synopsis-mismatch",
    "stale-synopsis",
    "table-too-small",
    "empty-pilot",
    "rate-above-cap",
    "insufficient-support",
    "missing-table",
    "quarantined",
];

/// Every label value [`ROUTED_TOTAL`] can carry — one per
/// `TechniqueKind::name()`, in routing policy order.
pub const ROUTED_WINNER_TAGS: &[&str] = &[
    "offline-synopsis",
    "online-sampling",
    "online-aggregation",
    "rewrite-middleware",
    "exact",
];

// ---- Service (AqpService) series -----------------------------------------

/// Histogram: time a query spends in the service's bounded admission
/// queue before execution starts (µs). Always on.
pub const SERVICE_QUEUE_WAIT_US: &str = "aqp_service_queue_wait_us";

/// Gauge: queries waiting in the admission queue right now.
pub const SERVICE_QUEUE_DEPTH: &str = "aqp_service_queue_depth";

/// Gauge: queries executing right now (admitted, not yet answered).
pub const SERVICE_INFLIGHT: &str = "aqp_service_inflight";

/// Labeled counter: admission-control outcomes, keyed by
/// [`ADMISSION_DECISION_LABEL`]. The label values are enumerated in
/// [`ADMISSION_DECISION_TAGS`].
pub const ADMISSION_TOTAL: &str = "aqp_admission_total";

/// Label key for [`ADMISSION_TOTAL`]: what admission control decided.
pub const ADMISSION_DECISION_LABEL: &str = "decision";

/// Every label value [`ADMISSION_TOTAL`] can carry: the contract was
/// accepted as asked, accepted with an honest guarantee downgrade, or
/// rejected (queue full, deadline unmeetable, or contract unattainable
/// under a strict degrade policy).
pub const ADMISSION_DECISION_TAGS: &[&str] = &["accepted", "degraded", "rejected"];

/// Labeled counter: plan-cache lookups, keyed by [`PLAN_CACHE_EVENT_LABEL`].
/// The label values are enumerated in [`PLAN_CACHE_EVENT_TAGS`].
pub const PLAN_CACHE_TOTAL: &str = "aqp_plan_cache_total";

/// Label key for [`PLAN_CACHE_TOTAL`]: what the lookup found.
pub const PLAN_CACHE_EVENT_LABEL: &str = "event";

/// Every label value [`PLAN_CACHE_TOTAL`] can carry: `hit` (fingerprint
/// found and still valid — lint and probes skipped), `miss` (never seen),
/// `stale` (found but invalidated by a routing-epoch bump or a fact-table
/// row-count change), `evicted` (capacity eviction on insert), and
/// `uncacheable` (plan outside the normalized shape).
pub const PLAN_CACHE_EVENT_TAGS: &[&str] = &["hit", "miss", "stale", "evicted", "uncacheable"];

// ---- Technique-internal series -------------------------------------------

/// Histogram: wall cost of the online sampler's pilot pass (µs).
pub const ONLINE_PILOT_US: &str = "aqp_online_pilot_us";

/// Histogram: relative CI half-width after each progressive OLA update.
pub const OLA_CI_REL_HALF_WIDTH: &str = "aqp_ola_ci_rel_half_width";

/// Histogram: offline synopsis build cost (µs).
pub const SYNOPSIS_BUILD_US: &str = "aqp_synopsis_build_us";

/// Counter: incremental synopsis maintenance operations completed.
pub const SYNOPSIS_MAINTAINED_TOTAL: &str = "aqp_synopsis_maintained_total";

// ---- Accuracy-audit series -----------------------------------------------

/// Label key shared by all per-technique audit series: the audited
/// technique's kebab name (a [`ROUTED_WINNER_TAGS`] value).
pub const TECHNIQUE_LABEL: &str = "technique";

/// Labeled counter: ground-truth audits performed, keyed by
/// [`TECHNIQUE_LABEL`].
pub const AUDIT_TOTAL: &str = "aqp_audit_total";

/// Labeled counter: audits where the exact answer fell *outside* the
/// reported interval (or, for point estimates, missed the contract),
/// keyed by [`TECHNIQUE_LABEL`].
pub const AUDIT_CI_MISS_TOTAL: &str = "aqp_audit_ci_miss_total";

/// Labeled histogram: observed relative error of audited answers, keyed
/// by [`TECHNIQUE_LABEL`] (bounds: [`crate::metrics::REL_ERROR_BOUNDS`]).
pub const AUDIT_REL_ERR: &str = "aqp_audit_rel_err";

/// Labeled histogram: wall cost of the exact audit re-execution (µs),
/// keyed by [`TECHNIQUE_LABEL`].
pub const AUDIT_WALL_US: &str = "aqp_audit_wall_us";

/// Labeled counter: quarantine entries — a technique's windowed observed
/// coverage fell below the configured floor — keyed by
/// [`TECHNIQUE_LABEL`].
pub const QUARANTINED_TOTAL: &str = "aqp_quarantined_total";

// ---- Synopsis drift series -----------------------------------------------

/// Label key for the per-table synopsis drift gauges.
pub const TABLE_LABEL: &str = "table";

/// Labeled gauge: relative row-count divergence of a stratified synopsis
/// (|current − built| / built), refreshed on every staleness probe and
/// reset to 0 by `maintain_*`.
pub const SYNOPSIS_STALENESS: &str = "aqp_synopsis_staleness";

/// Labeled gauge: rows the base table held when the synopsis was built
/// (or last maintained).
pub const SYNOPSIS_ROWS_AT_BUILD: &str = "aqp_synopsis_rows_at_build";

/// Labeled gauge: rows appended to the base table since the synopsis was
/// built; resets to 0 on `maintain_*`.
pub const SYNOPSIS_ROWS_APPENDED: &str = "aqp_synopsis_rows_appended";

/// Labeled gauge: ground-truth audits failed against this table's
/// synopsis since it was last maintained; resets to 0 on `maintain_*`.
pub const SYNOPSIS_FAILED_AUDITS: &str = "aqp_synopsis_failed_audits";

/// Every metric name the workspace emits. A session test scrapes the
/// global registry after a mixed workload and asserts each series name
/// appears here — so new emitters must register their name in this
/// module, keeping it the single source of truth.
pub const ALL_METRIC_NAMES: &[&str] = &[
    BLOCKS_PRUNED_TOTAL,
    BLOCKS_SCANNED_TOTAL,
    KERNEL_DISPATCH_TOTAL,
    POOL_QUEUE_WAIT_US,
    POOL_WORKERS,
    POOL_WORKER_UTILIZATION,
    DECLINE_TOTAL,
    PROBES_SKIPPED_TOTAL,
    ROUTED_TOTAL,
    SERVICE_QUEUE_WAIT_US,
    SERVICE_QUEUE_DEPTH,
    SERVICE_INFLIGHT,
    ADMISSION_TOTAL,
    PLAN_CACHE_TOTAL,
    ONLINE_PILOT_US,
    OLA_CI_REL_HALF_WIDTH,
    SYNOPSIS_BUILD_US,
    SYNOPSIS_MAINTAINED_TOTAL,
    AUDIT_TOTAL,
    AUDIT_CI_MISS_TOTAL,
    AUDIT_REL_ERR,
    AUDIT_WALL_US,
    QUARANTINED_TOTAL,
    SYNOPSIS_STALENESS,
    SYNOPSIS_ROWS_AT_BUILD,
    SYNOPSIS_ROWS_APPENDED,
    SYNOPSIS_FAILED_AUDITS,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_table_is_unique_and_well_formed() {
        let mut seen = std::collections::BTreeSet::new();
        for name in ALL_METRIC_NAMES {
            assert!(seen.insert(*name), "duplicate metric name {name}");
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "non-conforming metric name {name}"
            );
            assert!(
                name.starts_with("aqp_") || name.starts_with("engine_"),
                "unprefixed metric name {name}"
            );
        }
    }

    #[test]
    fn tag_tables_are_unique() {
        for tags in [
            DECLINE_REASON_TAGS,
            ROUTED_WINNER_TAGS,
            ADMISSION_DECISION_TAGS,
            PLAN_CACHE_EVENT_TAGS,
        ] {
            let mut seen = std::collections::BTreeSet::new();
            for tag in tags {
                assert!(seen.insert(*tag), "duplicate tag {tag}");
            }
        }
    }
}
