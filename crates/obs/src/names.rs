//! Canonical metric names shared across crates.
//!
//! Metrics are looked up by string name in the global registry; a typo
//! silently creates a second time series. Emitters and dashboards/tests
//! should both reference these constants so the names stay a single
//! source of truth.

/// Counter: base-table blocks skipped by zone-map pruning. Always on.
/// The prune *rate* is `pruned / (pruned + scanned)` using
/// [`BLOCKS_SCANNED_TOTAL`] as the denominator.
pub const BLOCKS_PRUNED_TOTAL: &str = "aqp_blocks_pruned_total";

/// Counter: base-table blocks actually read by scans. Always on.
pub const BLOCKS_SCANNED_TOTAL: &str = "aqp_blocks_scanned_total";

/// Labeled counter: plan dispatches through the typed kernel path vs the
/// scalar fallback. Always on.
pub const KERNEL_DISPATCH_TOTAL: &str = "aqp_kernel_dispatch_total";

/// Label key for [`KERNEL_DISPATCH_TOTAL`].
pub const KERNEL_DISPATCH_LABEL: &str = "path";

/// Label value: the plan compiled to typed kernels.
pub const KERNEL_DISPATCH_KERNEL: &str = "kernel";

/// Label value: the plan ran on the scalar `Value` path.
pub const KERNEL_DISPATCH_FALLBACK: &str = "fallback";

/// Histogram: time a morsel spends queued before a worker picks it up.
pub const POOL_QUEUE_WAIT_US: &str = "engine_pool_queue_wait_us";

/// Gauge: workers participating in the most recent pooled operator.
pub const POOL_WORKERS: &str = "engine_pool_workers";

/// Gauge: busy-time fraction of the most recent pooled operator.
pub const POOL_WORKER_UTILIZATION: &str = "engine_pool_worker_utilization";
