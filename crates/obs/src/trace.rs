//! Lightweight RAII span tracer with parent/child links.
//!
//! Spans are cheap enough to wrap every morsel, operator, eligibility
//! probe, technique attempt, and synopsis build: when no collector is
//! enabled (the default), [`span`] is a single relaxed atomic load that
//! returns an inert handle — no clock read, no allocation, no lock. The
//! overhead contract (< 100ns per disabled span in release builds) is
//! enforced by a guarded smoke test in this crate and recorded in
//! `BENCH_obs.json` by the engine benches.
//!
//! When enabled via [`set_enabled`], each span records its start offset
//! (nanoseconds since a process-wide epoch), duration, parent id, trace
//! id, recording thread, and optional row count / detail string into a
//! sharded global buffer. Parenting is implicit through a thread-local
//! "current span" cell; work handed to pool worker threads carries an
//! explicit [`SpanCtx`] (captured with [`Span::ctx`] or [`current_ctx`])
//! and opens children with [`child_span`].
//!
//! Records are drained either wholesale ([`drain`]) or per trace
//! ([`drain_trace`]), so concurrent queries — and concurrent tests — can
//! each reclaim exactly their own spans. [`build_tree`] reassembles a
//! drained batch into a forest and [`render_tree`] pretty-prints one root
//! as an indented operator tree, collapsing large same-name sibling
//! groups (e.g. hundreds of morsel spans) into a single `×N` line.

use std::cell::Cell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Number of lock shards in the global span buffer. Threads map onto
/// shards by a process-assigned ordinal, so workers rarely contend.
const SHARDS: usize = 16;

/// Sibling groups at least this large render as one aggregated line.
const COLLAPSE_AT: usize = 5;

static ENABLED: AtomicBool = AtomicBool::new(false);
static CAPTURE_LOCK: Mutex<()> = Mutex::new(());
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static OPEN_SPANS: AtomicI64 = AtomicI64::new(0);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static CURRENT: Cell<SpanCtx> = const { Cell::new(SpanCtx { span: 0, trace: 0 }) };
    static THREAD_ORD: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

/// Stable small ordinal for the calling thread, used for shard selection
/// and recorded on every span so per-thread invariants can be checked.
pub(crate) fn thread_ord() -> u64 {
    THREAD_ORD.with(|t| *t)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn shards() -> &'static [Mutex<Vec<SpanRecord>>; SHARDS] {
    static BUF: OnceLock<[Mutex<Vec<SpanRecord>>; SHARDS]> = OnceLock::new();
    BUF.get_or_init(|| std::array::from_fn(|_| Mutex::new(Vec::new())))
}

/// Turns span collection on or off process-wide. Off (the default) makes
/// every span constructor a no-op costing one relaxed atomic load.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether a collector is currently installed. Call sites use this to
/// gate *extra* work (clock reads for histograms, row counting) that
/// should cost nothing when observability is off.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Number of spans currently open (created while enabled, not yet
/// dropped). Zero after all instrumented work has unwound.
pub fn open_span_count() -> i64 {
    OPEN_SPANS.load(Ordering::Relaxed)
}

/// A copyable reference to a live span: its id and the trace it belongs
/// to. Pass across threads to parent worker-side spans under the
/// operator that spawned them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanCtx {
    /// Id of the span, 0 when no span is in scope.
    pub span: u64,
    /// Id of the enclosing trace (query), 0 when no span is in scope.
    pub trace: u64,
}

/// One completed span, as stored in the collector buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id of this span.
    pub id: u64,
    /// Id of the parent span, 0 for roots.
    pub parent: u64,
    /// Id of the trace this span belongs to.
    pub trace: u64,
    /// Static name, e.g. `"op:aggregate"` or `"morsel:filter"`.
    pub name: &'static str,
    /// Optional free-form annotation (table name, decline reason, ...).
    pub detail: Option<String>,
    /// Rows attributed to this span via [`Span::set_rows`].
    pub rows: u64,
    /// Start offset in nanoseconds since the process-wide epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
    /// Ordinal of the recording thread (see module docs).
    pub thread: u64,
}

impl SpanRecord {
    /// End offset (`start_ns + duration_ns`) in epoch nanoseconds.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.duration_ns
    }
}

/// An RAII span: records itself into the collector when dropped. Created
/// inert (all methods no-ops) when collection is disabled.
#[derive(Debug)]
pub struct Span {
    active: bool,
    id: u64,
    parent: u64,
    trace: u64,
    name: &'static str,
    rows: u64,
    detail: Option<String>,
    start: Option<Instant>,
    start_ns: u64,
    prev: SpanCtx,
}

impl Span {
    fn inert(name: &'static str) -> Self {
        Span {
            active: false,
            id: 0,
            parent: 0,
            trace: 0,
            name,
            rows: 0,
            detail: None,
            start: None,
            start_ns: 0,
            prev: SpanCtx::default(),
        }
    }

    fn open(name: &'static str, parent: SpanCtx) -> Self {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let trace = if parent.trace != 0 {
            parent.trace
        } else {
            NEXT_ID.fetch_add(1, Ordering::Relaxed)
        };
        let prev = CURRENT.with(|c| c.replace(SpanCtx { span: id, trace }));
        OPEN_SPANS.fetch_add(1, Ordering::Relaxed);
        let now = Instant::now();
        Span {
            active: true,
            id,
            parent: parent.span,
            trace,
            name,
            rows: 0,
            detail: None,
            start: Some(now),
            start_ns: now.saturating_duration_since(epoch()).as_nanos() as u64,
            prev,
        }
    }

    /// Whether this span will produce a record (collection was enabled at
    /// creation). Use to skip work done only to annotate the span.
    pub fn is_recording(&self) -> bool {
        self.active
    }

    /// Attributes a row count to this span (no-op when inert).
    pub fn set_rows(&mut self, rows: u64) {
        if self.active {
            self.rows = rows;
        }
    }

    /// Attaches a free-form annotation (no-op — and no allocation — when
    /// inert unless the caller already built the string).
    pub fn set_detail(&mut self, detail: impl Into<String>) {
        if self.active {
            self.detail = Some(detail.into());
        }
    }

    /// This span's id/trace pair, for parenting children across threads.
    /// Zeroed (and therefore ignored by [`child_span`]) when inert.
    pub fn ctx(&self) -> SpanCtx {
        if self.active {
            SpanCtx {
                span: self.id,
                trace: self.trace,
            }
        } else {
            SpanCtx::default()
        }
    }

    /// Explicitly closes the span (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let duration_ns = self
            .start
            .map(|s| s.elapsed().as_nanos() as u64)
            .unwrap_or(0);
        CURRENT.with(|c| c.set(self.prev));
        OPEN_SPANS.fetch_sub(1, Ordering::Relaxed);
        let rec = SpanRecord {
            id: self.id,
            parent: self.parent,
            trace: self.trace,
            name: self.name,
            detail: self.detail.take(),
            rows: self.rows,
            start_ns: self.start_ns,
            duration_ns,
            thread: thread_ord(),
        };
        let shard = thread_ord() as usize % SHARDS;
        shards()[shard]
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(rec);
    }
}

/// Opens a span parented under the calling thread's current span (a root
/// of a fresh trace when none is in scope). Inert when disabled.
pub fn span(name: &'static str) -> Span {
    if !ENABLED.load(Ordering::Relaxed) {
        return Span::inert(name);
    }
    let parent = CURRENT.with(|c| c.get());
    Span::open(name, parent)
}

/// Opens a root span that always starts a fresh trace, regardless of any
/// span already in scope on this thread. Inert when disabled.
pub fn root_span(name: &'static str) -> Span {
    if !ENABLED.load(Ordering::Relaxed) {
        return Span::inert(name);
    }
    Span::open(name, SpanCtx::default())
}

/// Opens a span under an explicit parent context — the cross-thread
/// variant used by pool workers, which cannot see the spawning thread's
/// current span. Inert when disabled.
pub fn child_span(name: &'static str, parent: SpanCtx) -> Span {
    if !ENABLED.load(Ordering::Relaxed) {
        return Span::inert(name);
    }
    Span::open(name, parent)
}

/// The calling thread's current span context (zeroed when none).
pub fn current_ctx() -> SpanCtx {
    CURRENT.with(|c| c.get())
}

/// Removes and returns every buffered record, sorted by start offset.
pub fn drain() -> Vec<SpanRecord> {
    let mut out = Vec::new();
    for shard in shards() {
        out.append(&mut *shard.lock().unwrap_or_else(|p| p.into_inner()));
    }
    out.sort_by_key(|r| (r.start_ns, r.id));
    out
}

/// Removes and returns the records of one trace, sorted by start offset;
/// records of other traces stay buffered. This is how concurrent queries
/// (and concurrent tests) each reclaim exactly their own spans.
pub fn drain_trace(trace: u64) -> Vec<SpanRecord> {
    let mut out = Vec::new();
    for shard in shards() {
        let mut buf = shard.lock().unwrap_or_else(|p| p.into_inner());
        let mut keep = Vec::with_capacity(buf.len());
        for rec in buf.drain(..) {
            if rec.trace == trace {
                out.push(rec);
            } else {
                keep.push(rec);
            }
        }
        *buf = keep;
    }
    out.sort_by_key(|r| (r.start_ns, r.id));
    out
}

/// Runs `f` with collection enabled and returns its output together with
/// every span recorded during the call (minus any a callee already
/// reclaimed via [`drain_trace`], e.g. `AqpSession::answer` attaching its
/// own trace to the report). Serializes concurrent captures in the same
/// process so tests cannot see each other's spans. Not reentrant.
pub fn capture<T>(f: impl FnOnce() -> T) -> (T, Vec<SpanRecord>) {
    let _guard = CAPTURE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let was_enabled = is_enabled();
    drop(drain());
    set_enabled(true);
    let out = f();
    set_enabled(was_enabled);
    (out, drain())
}

/// One node of a reassembled span tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// The completed span at this node.
    pub record: SpanRecord,
    /// Child spans, ordered by start offset.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Total duration of direct children, in nanoseconds.
    pub fn child_ns(&self) -> u64 {
        self.children.iter().map(|c| c.record.duration_ns).sum()
    }

    /// Duration not accounted for by direct children (saturating: with
    /// parallel workers, summed child wall time can exceed the parent).
    pub fn self_ns(&self) -> u64 {
        self.record.duration_ns.saturating_sub(self.child_ns())
    }
}

/// Reassembles drained records into a forest of [`SpanNode`]s. Records
/// whose parent is absent from the batch become roots; children are
/// ordered by start offset.
pub fn build_tree(mut records: Vec<SpanRecord>) -> Vec<SpanNode> {
    records.sort_by_key(|r| (r.start_ns, r.id));
    let present: HashMap<u64, ()> = records.iter().map(|r| (r.id, ())).collect();
    let mut by_parent: HashMap<u64, Vec<SpanRecord>> = HashMap::new();
    let mut roots = Vec::new();
    for rec in records {
        if rec.parent != 0 && present.contains_key(&rec.parent) {
            by_parent.entry(rec.parent).or_default().push(rec);
        } else {
            roots.push(rec);
        }
    }
    fn assemble(rec: SpanRecord, by_parent: &mut HashMap<u64, Vec<SpanRecord>>) -> SpanNode {
        let children = by_parent
            .remove(&rec.id)
            .unwrap_or_default()
            .into_iter()
            .map(|c| assemble(c, by_parent))
            .collect();
        SpanNode {
            record: rec,
            children,
        }
    }
    roots
        .into_iter()
        .map(|r| assemble(r, &mut by_parent))
        .collect()
}

/// Formats a nanosecond count with an adaptive unit.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// Renders one span tree as an indented text block: per node its name,
/// detail, wall time, self time (when it has children), and rows. Sibling
/// runs of the same name with 5+ members (morsels, typically) collapse
/// into a single `name ×N` line carrying totals, so the morsel count per
/// operator stays visible without a thousand-line dump.
pub fn render_tree(root: &SpanNode) -> String {
    let mut out = String::new();
    render_into(root, 0, &mut out);
    out
}

fn render_into(node: &SpanNode, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    let rec = &node.record;
    let _ = write!(out, "{pad}{}", rec.name);
    if let Some(d) = &rec.detail {
        let _ = write!(out, " [{d}]");
    }
    let _ = write!(out, "  wall={}", fmt_ns(rec.duration_ns));
    if !node.children.is_empty() {
        let _ = write!(out, " self={}", fmt_ns(node.self_ns()));
    }
    if rec.rows > 0 {
        let _ = write!(out, " rows={}", rec.rows);
    }
    out.push('\n');
    // Group children by name, preserving first-appearance order.
    let mut order: Vec<&'static str> = Vec::new();
    let mut groups: HashMap<&'static str, Vec<&SpanNode>> = HashMap::new();
    for child in &node.children {
        if !groups.contains_key(child.record.name) {
            order.push(child.record.name);
        }
        groups.entry(child.record.name).or_default().push(child);
    }
    for name in order {
        let group = &groups[name];
        if group.len() >= COLLAPSE_AT {
            let total: u64 = group.iter().map(|n| n.record.duration_ns).sum();
            let rows: u64 = group.iter().map(|n| n.record.rows).sum();
            let pad = "  ".repeat(depth + 1);
            let _ = write!(out, "{pad}{name} ×{}  wall={}", group.len(), fmt_ns(total));
            if rows > 0 {
                let _ = write!(out, " rows={rows}");
            }
            out.push('\n');
        } else {
            for child in group {
                render_into(child, depth + 1, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_are_inert_and_record_nothing() {
        let ((), records) = capture(|| {
            set_enabled(false);
            let mut s = span("never");
            assert!(!s.is_recording());
            s.set_rows(10);
            s.set_detail("ignored");
            assert_eq!(s.ctx(), SpanCtx::default());
            drop(s);
            set_enabled(true);
        });
        assert!(records.is_empty());
        assert_eq!(open_span_count(), 0);
    }

    #[test]
    fn spans_nest_via_thread_local_current() {
        let ((), records) = capture(|| {
            let root = root_span("root");
            let root_id = root.ctx().span;
            {
                let child = span("child");
                assert_eq!(child.ctx().trace, root.ctx().trace);
                let grand = span("grand");
                assert_eq!(grand.ctx().trace, root.ctx().trace);
                drop(grand);
                drop(child);
            }
            let sibling = span("sibling");
            assert_eq!(
                sibling.ctx().trace,
                root.ctx().trace,
                "current restored after child drop"
            );
            drop(sibling);
            drop(root);
            let _ = root_id;
        });
        assert_eq!(records.len(), 4);
        let roots = build_tree(records);
        assert_eq!(roots.len(), 1);
        let root = &roots[0];
        assert_eq!(root.record.name, "root");
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].record.name, "child");
        assert_eq!(root.children[0].children.len(), 1);
        assert_eq!(root.children[0].children[0].record.name, "grand");
        assert_eq!(root.children[1].record.name, "sibling");
    }

    #[test]
    fn child_span_crosses_threads_with_explicit_ctx() {
        let ((), records) = capture(|| {
            let parent = span("parent");
            let ctx = parent.ctx();
            let handles: Vec<_> = (0..3)
                .map(|i| {
                    std::thread::spawn(move || {
                        let mut m = child_span("morsel", ctx);
                        m.set_rows(i + 1);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            drop(parent);
        });
        let roots = build_tree(records);
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].children.len(), 3);
        let rows: u64 = roots[0].children.iter().map(|c| c.record.rows).sum();
        assert_eq!(rows, 6);
        for c in &roots[0].children {
            assert!(c.record.start_ns >= roots[0].record.start_ns);
            assert!(c.record.end_ns() <= roots[0].record.end_ns());
        }
    }

    #[test]
    fn drain_trace_isolates_concurrent_traces() {
        let ((a, b), leftover) = capture(|| {
            let ra = root_span("a");
            let ta = ra.ctx().trace;
            drop(ra);
            let rb = root_span("b");
            let tb = rb.ctx().trace;
            drop(rb);
            let got_a = drain_trace(ta);
            (got_a, tb)
        });
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].name, "a");
        assert_eq!(leftover.len(), 1);
        assert_eq!(leftover[0].name, "b");
        assert_eq!(leftover[0].trace, b);
    }

    #[test]
    fn render_collapses_large_sibling_groups() {
        let ((), records) = capture(|| {
            let parent = span("op:scan");
            let ctx = parent.ctx();
            for _ in 0..8 {
                let mut m = child_span("morsel:scan", ctx);
                m.set_rows(100);
            }
            drop(parent);
        });
        let roots = build_tree(records);
        let text = render_tree(&roots[0]);
        assert!(text.contains("morsel:scan ×8"), "got:\n{text}");
        assert!(text.contains("rows=800"), "got:\n{text}");
        // Collapsed: only one morsel line, not eight.
        assert_eq!(text.matches("morsel:scan").count(), 1, "got:\n{text}");
    }

    /// Overhead smoke-check for the no-collector fast path (satellite:
    /// guarded assert, not a flaky wall-clock gate). The production
    /// contract is <100ns per disabled span in release builds; this
    /// budget is ~15× that so an unoptimized debug test binary passes
    /// while still catching real regressions (taking a lock or reading
    /// the clock on the disabled path costs far more than the budget).
    #[test]
    fn noop_span_overhead_within_budget() {
        // Hold the capture lock so no parallel test flips tracing on
        // under us mid-measurement.
        let _guard = CAPTURE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_enabled(false);
        const ITERS: u32 = 200_000;
        // Warm up the thread-locals, then take the best of 3 batches to
        // shave scheduler noise.
        let mut best = f64::MAX;
        for _ in 0..3 {
            let t0 = Instant::now();
            for _ in 0..ITERS {
                std::hint::black_box(span("noop"));
            }
            let per = t0.elapsed().as_nanos() as f64 / ITERS as f64;
            best = best.min(per);
        }
        assert!(
            best < 1_500.0,
            "disabled span path costs {best:.0}ns per span (budget 1500ns debug / 100ns release)"
        );
    }
}
