//! Thread-safe metrics registry: counters, gauges, and fixed-bucket
//! histograms, with lock-free per-worker shards merged on read.
//!
//! Writes never take a lock: each metric holds 16 cache-line-padded
//! atomic shards and a thread maps onto a shard by its process-assigned
//! ordinal, so concurrent workers update disjoint cache lines. Reads
//! (exporters, tests) sum across shards. Registering or looking up a
//! metric takes a short registry lock, so hot loops should fetch their
//! handle once up front.
//!
//! Exporters: [`MetricsRegistry::to_prometheus_text`] emits the standard
//! text exposition format, [`MetricsRegistry::to_json`] a stable JSON
//! document; both iterate the registry's `BTreeMap`s, so output order is
//! deterministic.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::trace::thread_ord;

/// Shard count per metric; threads map on by ordinal modulo this.
const SHARDS: usize = 16;

/// Default bucket bounds (microseconds) for latency histograms.
pub const LATENCY_US_BOUNDS: &[f64] = &[
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1e3, 2e3, 5e3, 1e4, 1e5, 1e6,
];

/// Default bucket bounds for relative-error / CI-width histograms.
pub const REL_ERROR_BOUNDS: &[f64] =
    &[0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0];

/// One atomic counter cell padded to its own cache line, so shards
/// written by different workers never false-share.
#[derive(Default)]
#[repr(align(64))]
struct PadCell(AtomicU64);

fn shard_idx() -> usize {
    thread_ord() as usize % SHARDS
}

/// Monotonic counter with lock-free sharded increments.
#[derive(Default)]
pub struct Counter {
    shards: [PadCell; SHARDS],
}

impl Counter {
    /// Adds `n` to the calling thread's shard.
    pub fn inc(&self, n: u64) {
        self.shards[shard_idx()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Sums all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// Last-write-wins gauge holding an `f64` (stored as bits in an atomic).
#[derive(Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Reads the gauge value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

struct HistShard {
    /// One count per bound, plus a final +Inf bucket.
    buckets: Vec<AtomicU64>,
    /// Running sum of observed values, stored as `f64` bits and updated
    /// with a CAS loop (no float atomics in std).
    sum_bits: AtomicU64,
}

/// Fixed-bucket histogram with lock-free sharded observation.
pub struct Histogram {
    bounds: Vec<f64>,
    shards: Vec<HistShard>,
}

/// A read-side snapshot of a [`Histogram`], merged across shards.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bound of each finite bucket.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (non-cumulative), one per bound plus +Inf.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Total number of observations.
    pub count: u64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        let shards = (0..SHARDS)
            .map(|_| HistShard {
                buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            })
            .collect();
        Histogram {
            bounds: bounds.to_vec(),
            shards,
        }
    }

    /// Records one observation into the calling thread's shard.
    pub fn observe(&self, v: f64) {
        let shard = &self.shards[shard_idx()];
        let idx = self.bounds.partition_point(|b| *b < v);
        shard.buckets[idx].fetch_add(1, Ordering::Relaxed);
        let mut cur = shard.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match shard.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Merges all shards into a consistent-enough snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = vec![0u64; self.bounds.len() + 1];
        let mut sum = 0.0;
        for shard in &self.shards {
            for (i, b) in shard.buckets.iter().enumerate() {
                counts[i] += b.load(Ordering::Relaxed);
            }
            sum += f64::from_bits(shard.sum_bits.load(Ordering::Relaxed));
        }
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            count: counts.iter().sum(),
            counts,
            sum,
        }
    }
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// within the bucket holding the target rank, the standard
    /// fixed-bucket estimator Prometheus' `histogram_quantile` uses. The
    /// first bucket interpolates from a lower bound of 0; ranks landing
    /// in the +Inf bucket clamp to the last finite bound (there is no
    /// upper edge to interpolate toward). Returns `None` when the
    /// histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.count as f64;
        let mut cumulative = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cumulative += c;
            // Skip buckets with no mass so low quantiles land on the
            // lower edge of the first occupied bucket.
            if (cumulative as f64) < rank || *c == 0 {
                continue;
            }
            let Some(&upper) = self.bounds.get(i) else {
                // +Inf bucket: clamp to the last finite bound.
                return self.bounds.last().copied();
            };
            let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
            let below = (cumulative - c) as f64;
            let within = (rank - below) / *c as f64;
            return Some(lower + (upper - lower) * within.clamp(0.0, 1.0));
        }
        self.bounds.last().copied()
    }
}

/// Registry key: metric name plus at most one `key="value"` label pair
/// (enough for e.g. per-`DeclineReason` counters).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    label: Option<(String, String)>,
}

/// A named collection of counters, gauges, and histograms. Most callers
/// use the process-wide [`global`] registry; tests may build their own.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<MetricKey, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<MetricKey, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<MetricKey, Arc<Histogram>>>,
}

/// The process-wide registry all built-in instrumentation reports to.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::default)
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl MetricsRegistry {
    /// Creates an empty registry (tests; production uses [`global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or registers the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_entry(MetricKey {
            name: name.to_string(),
            label: None,
        })
    }

    /// Gets or registers the counter `name{label_key="label_value"}`.
    pub fn counter_labeled(&self, name: &str, label_key: &str, label_value: &str) -> Arc<Counter> {
        self.counter_entry(MetricKey {
            name: name.to_string(),
            label: Some((label_key.to_string(), label_value.to_string())),
        })
    }

    fn counter_entry(&self, key: MetricKey) -> Arc<Counter> {
        Arc::clone(lock(&self.counters).entry(key).or_default())
    }

    /// Gets or registers the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_entry(MetricKey {
            name: name.to_string(),
            label: None,
        })
    }

    /// Gets or registers the gauge `name{label_key="label_value"}`.
    pub fn gauge_labeled(&self, name: &str, label_key: &str, label_value: &str) -> Arc<Gauge> {
        self.gauge_entry(MetricKey {
            name: name.to_string(),
            label: Some((label_key.to_string(), label_value.to_string())),
        })
    }

    fn gauge_entry(&self, key: MetricKey) -> Arc<Gauge> {
        Arc::clone(lock(&self.gauges).entry(key).or_default())
    }

    /// Gets or registers the histogram `name` with the given finite
    /// bucket bounds (ignored if the histogram already exists).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.histogram_entry(
            MetricKey {
                name: name.to_string(),
                label: None,
            },
            bounds,
        )
    }

    /// Gets or registers the histogram `name{label_key="label_value"}`.
    pub fn histogram_labeled(
        &self,
        name: &str,
        label_key: &str,
        label_value: &str,
        bounds: &[f64],
    ) -> Arc<Histogram> {
        self.histogram_entry(
            MetricKey {
                name: name.to_string(),
                label: Some((label_key.to_string(), label_value.to_string())),
            },
            bounds,
        )
    }

    fn histogram_entry(&self, key: MetricKey, bounds: &[f64]) -> Arc<Histogram> {
        Arc::clone(
            lock(&self.histograms)
                .entry(key)
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Drops every registered metric (test isolation; live handles keep
    /// their values but detach from the registry).
    pub fn reset(&self) {
        lock(&self.counters).clear();
        lock(&self.gauges).clear();
        lock(&self.histograms).clear();
    }

    /// Renders the registry in the Prometheus text exposition format,
    /// deterministically ordered by metric name and label.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut last_type: Option<String> = None;
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            if last_type.as_deref() != Some(name) {
                let _ = writeln!(out, "# TYPE {name} {kind}");
                last_type = Some(name.to_string());
            }
        };
        for (key, c) in lock(&self.counters).iter() {
            type_line(&mut out, &key.name, "counter");
            let _ = writeln!(out, "{} {}", fmt_series(key), c.get());
        }
        for (key, g) in lock(&self.gauges).iter() {
            type_line(&mut out, &key.name, "gauge");
            let _ = writeln!(out, "{} {}", fmt_series(key), g.get());
        }
        for (key, h) in lock(&self.histograms).iter() {
            type_line(&mut out, &key.name, "histogram");
            let snap = h.snapshot();
            // A labeled histogram merges its label pair with `le` on every
            // bucket line; `_sum`/`_count` carry just the label.
            let label = key
                .label
                .as_ref()
                .map(|(k, v)| format!("{k}=\"{}\",", v.replace('"', "\\\"")))
                .unwrap_or_default();
            let mut cumulative = 0u64;
            for (i, count) in snap.counts.iter().enumerate() {
                cumulative += count;
                let le = snap
                    .bounds
                    .get(i)
                    .map(|b| trim_float(*b))
                    .unwrap_or_else(|| "+Inf".to_string());
                let _ = writeln!(
                    out,
                    "{}_bucket{{{label}le=\"{le}\"}} {cumulative}",
                    key.name
                );
            }
            let series = fmt_series(key);
            let suffix = series.strip_prefix(key.name.as_str()).unwrap_or("");
            let _ = writeln!(out, "{}_sum{suffix} {}", key.name, trim_float(snap.sum));
            let _ = writeln!(out, "{}_count{suffix} {}", key.name, snap.count);
        }
        out
    }

    /// Renders the registry as a JSON document with stable key order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": [");
        let counters = lock(&self.counters);
        for (i, (key, c)) in counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"name\": \"{}\"{}, \"value\": {}}}",
                key.name,
                json_label(key),
                c.get()
            );
        }
        drop(counters);
        out.push_str("\n  ],\n  \"gauges\": [");
        let gauges = lock(&self.gauges);
        for (i, (key, g)) in gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"name\": \"{}\"{}, \"value\": {}}}",
                key.name,
                json_label(key),
                trim_float(g.get())
            );
        }
        drop(gauges);
        out.push_str("\n  ],\n  \"histograms\": [");
        let histograms = lock(&self.histograms);
        for (i, (key, h)) in histograms.iter().enumerate() {
            let snap = h.snapshot();
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"name\": \"{}\"{}, \"count\": {}, \"sum\": {}, \"buckets\": [",
                key.name,
                json_label(key),
                snap.count,
                trim_float(snap.sum)
            );
            let mut cumulative = 0u64;
            for (j, count) in snap.counts.iter().enumerate() {
                cumulative += count;
                let le = snap
                    .bounds
                    .get(j)
                    .map(|b| trim_float(*b))
                    .unwrap_or_else(|| "\"+Inf\"".to_string());
                let sep = if j == 0 { "" } else { ", " };
                let _ = write!(out, "{sep}{{\"le\": {le}, \"count\": {cumulative}}}");
            }
            out.push_str("]}");
        }
        drop(histograms);
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Formats `12.5` as `12.5` but `12.0` as `12` (Prometheus style).
fn trim_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn fmt_series(key: &MetricKey) -> String {
    match &key.label {
        Some((k, v)) => format!("{}{{{k}=\"{}\"}}", key.name, v.replace('"', "\\\"")),
        None => key.name.clone(),
    }
}

fn json_label(key: &MetricKey) -> String {
    match &key.label {
        Some((k, v)) => format!(", \"{k}\": \"{}\"", v.replace('"', "\\\"")),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("hits");
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        c.inc(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 8_000);
        // Same name resolves to the same counter.
        assert_eq!(reg.counter("hits").get(), 8_000);
    }

    #[test]
    fn labeled_counters_are_distinct_series() {
        let reg = MetricsRegistry::new();
        reg.counter_labeled("declines", "reason", "stale").inc(2);
        reg.counter_labeled("declines", "reason", "empty-pilot")
            .inc(1);
        let text = reg.to_prometheus_text();
        assert!(text.contains("declines{reason=\"stale\"} 2"), "{text}");
        assert!(
            text.contains("declines{reason=\"empty-pilot\"} 1"),
            "{text}"
        );
        // One TYPE line for the family, not one per series.
        assert_eq!(text.matches("# TYPE declines counter").count(), 1);
    }

    #[test]
    fn gauge_holds_floats() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("utilization");
        g.set(0.75);
        assert!((g.get() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_us", &[10.0, 100.0]);
        for v in [1.0, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![2, 1, 1]);
        assert_eq!(snap.count, 4);
        assert!((snap.sum - 556.0).abs() < 1e-9);
        let text = reg.to_prometheus_text();
        assert!(text.contains("lat_us_bucket{le=\"10\"} 2"), "{text}");
        assert!(text.contains("lat_us_bucket{le=\"100\"} 3"), "{text}");
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 4"), "{text}");
        assert!(text.contains("lat_us_sum 556"), "{text}");
        assert!(text.contains("lat_us_count 4"), "{text}");
    }

    #[test]
    fn json_export_is_stable_and_parsable_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("b_total").inc(1);
        reg.counter("a_total").inc(2);
        reg.gauge("util").set(0.5);
        reg.histogram("h", &[1.0]).observe(0.5);
        let json = reg.to_json();
        // BTreeMap ordering: a_total before b_total.
        let a = json.find("a_total").unwrap();
        let b = json.find("b_total").unwrap();
        assert!(a < b, "{json}");
        assert!(json.contains("\"gauges\""), "{json}");
        assert!(json.contains("{\"le\": 1, \"count\": 1}"), "{json}");
        assert!(json.contains("{\"le\": \"+Inf\", \"count\": 1}"), "{json}");
    }

    #[test]
    fn labeled_histograms_merge_label_with_le() {
        let reg = MetricsRegistry::new();
        reg.histogram_labeled("err", "technique", "offline-synopsis", &[0.1, 1.0])
            .observe(0.05);
        reg.histogram_labeled("err", "technique", "rewrite-middleware", &[0.1, 1.0])
            .observe(0.5);
        let text = reg.to_prometheus_text();
        assert!(
            text.contains("err_bucket{technique=\"offline-synopsis\",le=\"0.1\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("err_bucket{technique=\"rewrite-middleware\",le=\"1\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("err_sum{technique=\"offline-synopsis\"} 0.05"),
            "{text}"
        );
        assert!(
            text.contains("err_count{technique=\"rewrite-middleware\"} 1"),
            "{text}"
        );
        assert_eq!(text.matches("# TYPE err histogram").count(), 1);
        let json = reg.to_json();
        assert!(
            json.contains("\"technique\": \"offline-synopsis\""),
            "{json}"
        );
    }

    #[test]
    fn labeled_gauges_are_distinct_series() {
        let reg = MetricsRegistry::new();
        reg.gauge_labeled("staleness", "table", "a").set(0.25);
        reg.gauge_labeled("staleness", "table", "b").set(0.75);
        assert!((reg.gauge_labeled("staleness", "table", "a").get() - 0.25).abs() < 1e-12);
        let text = reg.to_prometheus_text();
        assert!(text.contains("staleness{table=\"a\"} 0.25"), "{text}");
        assert!(text.contains("staleness{table=\"b\"} 0.75"), "{text}");
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("q", &[10.0, 20.0, 40.0]);
        assert_eq!(h.snapshot().quantile(0.5), None, "empty histogram");
        // 10 observations in (10, 20], none elsewhere: the median sits
        // halfway through the second bucket.
        for _ in 0..10 {
            h.observe(15.0);
        }
        let snap = h.snapshot();
        let p50 = snap.quantile(0.5).unwrap();
        assert!((p50 - 15.0).abs() < 1e-9, "{p50}");
        // q=1.0 reaches the bucket's upper bound.
        assert!((snap.quantile(1.0).unwrap() - 20.0).abs() < 1e-9);
        // q=0 clamps to the bucket's lower edge.
        assert!((snap.quantile(0.0).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_first_bucket_interpolates_from_zero() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("q0", &[8.0]);
        for _ in 0..4 {
            h.observe(1.0);
        }
        let p50 = h.snapshot().quantile(0.5).unwrap();
        assert!(
            (p50 - 4.0).abs() < 1e-9,
            "first bucket lower bound is 0: {p50}"
        );
    }

    #[test]
    fn quantile_inf_bucket_clamps_to_last_finite_bound() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("qi", &[10.0]);
        for _ in 0..10 {
            h.observe(999.0);
        }
        let snap = h.snapshot();
        assert!((snap.quantile(0.99).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_splits_mixed_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("qm", &[1.0, 2.0, 4.0]);
        // 2 in the first bucket, 6 in the second, 2 in the third.
        for v in [0.5, 0.5, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5, 3.0, 3.0] {
            h.observe(v);
        }
        let snap = h.snapshot();
        // rank(0.8) = 8 -> exactly the cumulative edge of bucket 2.
        assert!((snap.quantile(0.8).unwrap() - 2.0).abs() < 1e-9);
        // rank(0.5) = 5 -> halfway through bucket 2: 1 + (5-2)/6 * 1.
        assert!((snap.quantile(0.5).unwrap() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn observation_boundary_is_inclusive() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("edge", &[10.0]);
        h.observe(10.0);
        assert_eq!(h.snapshot().counts, vec![1, 0], "le=10 includes 10.0");
    }
}
