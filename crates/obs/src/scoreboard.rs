//! Per-technique accuracy scoreboard: sliding-window coverage counters
//! driving the session's quarantine feedback loop.
//!
//! The ground-truth auditor (in `aqp-core`) re-executes a sampled
//! fraction of approximate answers exactly and records one
//! [`AuditObservation`] per audit — did the truth fall inside the
//! reported interval, and how large was the observed relative error.
//! This module keeps those observations in a bounded sliding window per
//! technique (keyed by the technique's kebab name, so `aqp-obs` needs no
//! dependency on the routing vocabulary) and answers two questions:
//!
//! 1. **Scorekeeping** — observed coverage vs nominal, p50/p95/max
//!    relative error over the window ([`ScoreboardSnapshot`], rendered
//!    by `explain_analyze()`); quantiles come from the shared
//!    fixed-bucket [`HistogramSnapshot::quantile`] estimator.
//! 2. **Quarantine policy** — once a technique has at least
//!    `min_audits` windowed observations and its observed coverage
//!    drops below `coverage_floor`, [`Scoreboard::record`] reports a
//!    [`Transition::Entered`] and the technique is quarantined until
//!    coverage recovers or the window is [`reset`](Scoreboard::reset)
//!    (which synopsis maintenance does: audits of a synopsis that no
//!    longer exists say nothing about its replacement).
//!
//! Cumulative per-technique audit totals are *also* mirrored into the
//! global metrics registry by the auditor (`aqp_audit_total` et al. in
//! [`crate::names`]); the scoreboard is the session-local windowed view
//! the routing feedback pivots on.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::metrics::{HistogramSnapshot, REL_ERROR_BOUNDS};

/// Policy knobs for the sliding-window quarantine decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreboardConfig {
    /// Observations kept per technique; older audits slide out.
    pub window: usize,
    /// Observed-coverage floor: a technique whose windowed coverage
    /// drops below this is quarantined.
    pub coverage_floor: f64,
    /// Minimum windowed observations before the floor is enforced — a
    /// single unlucky audit must not quarantine a healthy technique.
    pub min_audits: usize,
}

impl Default for ScoreboardConfig {
    fn default() -> Self {
        ScoreboardConfig {
            window: 64,
            coverage_floor: 0.8,
            min_audits: 16,
        }
    }
}

/// One audited answer, as the ground-truth auditor saw it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditObservation {
    /// Whether the audit passed: for interval-carrying techniques the
    /// exact answer fell inside every reported CI, for point estimates
    /// the observed error met the requested contract.
    pub ok: bool,
    /// Worst observed relative error across the answer's groups.
    pub rel_err: f64,
    /// The nominal coverage the technique promised (e.g. 0.95), if it
    /// carried an interval at all.
    pub nominal: Option<f64>,
}

/// What [`Scoreboard::record`] did to the technique's quarantine state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// Quarantine state unchanged.
    None,
    /// Windowed coverage fell below the floor: technique quarantined.
    Entered,
    /// Windowed coverage recovered: technique released.
    Exited,
}

#[derive(Default)]
struct Window {
    ring: VecDeque<AuditObservation>,
    total: u64,
    misses: u64,
    max_rel_err: f64,
    quarantined: bool,
}

impl Window {
    fn coverage(&self) -> Option<f64> {
        if self.ring.is_empty() {
            return None;
        }
        let ok = self.ring.iter().filter(|o| o.ok).count();
        Some(ok as f64 / self.ring.len() as f64)
    }
}

/// Sliding-window audit scores per technique, with quarantine state.
/// Interior-mutable: the session records audits through `&self`.
pub struct Scoreboard {
    config: ScoreboardConfig,
    windows: Mutex<BTreeMap<String, Window>>,
}

impl Scoreboard {
    /// Creates an empty scoreboard with the given policy.
    pub fn new(config: ScoreboardConfig) -> Self {
        Scoreboard {
            config,
            windows: Mutex::new(BTreeMap::new()),
        }
    }

    /// The policy this scoreboard enforces.
    pub fn config(&self) -> ScoreboardConfig {
        self.config
    }

    /// Records one audit for `technique` and re-evaluates its
    /// quarantine state against the configured floor.
    pub fn record(&self, technique: &str, obs: AuditObservation) -> Transition {
        let mut windows = lock(&self.windows);
        let w = windows.entry(technique.to_string()).or_default();
        w.ring.push_back(obs);
        while w.ring.len() > self.config.window.max(1) {
            w.ring.pop_front();
        }
        w.total += 1;
        if !obs.ok {
            w.misses += 1;
        }
        if obs.rel_err > w.max_rel_err {
            w.max_rel_err = obs.rel_err;
        }
        if w.ring.len() < self.config.min_audits {
            return Transition::None;
        }
        let covered = w.coverage().unwrap_or(1.0);
        match (w.quarantined, covered < self.config.coverage_floor) {
            (false, true) => {
                w.quarantined = true;
                Transition::Entered
            }
            (true, false) => {
                w.quarantined = false;
                Transition::Exited
            }
            _ => Transition::None,
        }
    }

    /// Whether `technique` is currently quarantined.
    pub fn is_quarantined(&self, technique: &str) -> bool {
        lock(&self.windows)
            .get(technique)
            .is_some_and(|w| w.quarantined)
    }

    /// Currently quarantined techniques, sorted by name.
    pub fn quarantined(&self) -> Vec<String> {
        lock(&self.windows)
            .iter()
            .filter(|(_, w)| w.quarantined)
            .map(|(name, _)| name.clone())
            .collect()
    }

    /// Clears `technique`'s window and releases its quarantine — the
    /// maintenance hook: after a synopsis rebuild/maintain, audits of
    /// the old synopsis no longer describe what the router would serve.
    pub fn reset(&self, technique: &str) {
        lock(&self.windows).remove(technique);
    }

    /// Clears every window (test isolation).
    pub fn reset_all(&self) {
        lock(&self.windows).clear();
    }

    /// A consistent read of every technique's windowed scores.
    pub fn snapshot(&self) -> ScoreboardSnapshot {
        let windows = lock(&self.windows);
        let rows = windows
            .iter()
            .map(|(name, w)| {
                let hist = window_histogram(&w.ring);
                let nominals: Vec<f64> = w.ring.iter().filter_map(|o| o.nominal).collect();
                TechniqueScore {
                    technique: name.clone(),
                    window_len: w.ring.len(),
                    total_audits: w.total,
                    misses: w.misses,
                    coverage: w.coverage(),
                    nominal: if nominals.is_empty() {
                        None
                    } else {
                        Some(nominals.iter().sum::<f64>() / nominals.len() as f64)
                    },
                    p50_rel_err: hist.quantile(0.5),
                    p95_rel_err: hist.quantile(0.95),
                    max_rel_err: w.max_rel_err,
                    quarantined: w.quarantined,
                }
            })
            .collect();
        ScoreboardSnapshot { rows }
    }
}

impl Default for Scoreboard {
    fn default() -> Self {
        Scoreboard::new(ScoreboardConfig::default())
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Bins the window's observed errors into the shared relative-error
/// buckets so quantiles come from the one fixed-bucket estimator.
fn window_histogram(ring: &VecDeque<AuditObservation>) -> HistogramSnapshot {
    let bounds = REL_ERROR_BOUNDS.to_vec();
    let mut counts = vec![0u64; bounds.len() + 1];
    let mut sum = 0.0;
    for o in ring {
        counts[bounds.partition_point(|b| *b < o.rel_err)] += 1;
        sum += o.rel_err;
    }
    HistogramSnapshot {
        bounds,
        count: counts.iter().sum(),
        counts,
        sum,
    }
}

/// One technique's windowed scores.
#[derive(Debug, Clone, PartialEq)]
pub struct TechniqueScore {
    /// The technique's kebab name (`TechniqueKind::name()`).
    pub technique: String,
    /// Observations currently in the sliding window.
    pub window_len: usize,
    /// Lifetime audits recorded for this technique.
    pub total_audits: u64,
    /// Lifetime audits that missed (truth outside CI / contract blown).
    pub misses: u64,
    /// Observed coverage over the window (`None` when empty).
    pub coverage: Option<f64>,
    /// Mean nominal coverage promised over the window, when intervals
    /// were carried.
    pub nominal: Option<f64>,
    /// Median observed relative error over the window.
    pub p50_rel_err: Option<f64>,
    /// 95th-percentile observed relative error over the window.
    pub p95_rel_err: Option<f64>,
    /// Largest relative error ever observed (lifetime, not windowed).
    pub max_rel_err: f64,
    /// Whether the technique is quarantined right now.
    pub quarantined: bool,
}

/// A point-in-time view of every technique's scores.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreboardSnapshot {
    /// One row per technique that has received at least one audit,
    /// sorted by technique name.
    pub rows: Vec<TechniqueScore>,
}

impl ScoreboardSnapshot {
    /// The row for `technique`, if it has been audited.
    pub fn get(&self, technique: &str) -> Option<&TechniqueScore> {
        self.rows.iter().find(|r| r.technique == technique)
    }

    /// Techniques quarantined in this snapshot, in row (name) order.
    pub fn quarantined(&self) -> Vec<String> {
        self.rows
            .iter()
            .filter(|r| r.quarantined)
            .map(|r| r.technique.clone())
            .collect()
    }

    /// Renders the scoreboard as the fixed-width "accuracy" table
    /// `explain_analyze()` embeds. Empty string when nothing was audited.
    pub fn render_table(&self) -> String {
        if self.rows.is_empty() {
            return String::new();
        }
        let fmt_opt = |v: Option<f64>| match v {
            Some(v) => format!("{v:.3}"),
            None => "-".to_string(),
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<20} {:>6} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8}  status",
            "technique", "audits", "window", "coverage", "nominal", "p50err", "p95err", "maxerr",
        );
        for r in &self.rows {
            let max_err = fmt_opt(Some(r.max_rel_err));
            let _ = writeln!(
                out,
                "{:<20} {:>6} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8}  {}",
                r.technique,
                r.total_audits,
                r.window_len,
                fmt_opt(r.coverage),
                fmt_opt(r.nominal),
                fmt_opt(r.p50_rel_err),
                fmt_opt(r.p95_rel_err),
                max_err,
                if r.quarantined { "QUARANTINED" } else { "ok" },
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit() -> AuditObservation {
        AuditObservation {
            ok: true,
            rel_err: 0.01,
            nominal: Some(0.95),
        }
    }

    fn miss() -> AuditObservation {
        AuditObservation {
            ok: false,
            rel_err: 0.4,
            nominal: Some(0.95),
        }
    }

    fn policy(window: usize, floor: f64, min: usize) -> Scoreboard {
        Scoreboard::new(ScoreboardConfig {
            window,
            coverage_floor: floor,
            min_audits: min,
        })
    }

    #[test]
    fn no_quarantine_below_min_audits() {
        let sb = policy(16, 0.9, 8);
        for _ in 0..7 {
            assert_eq!(sb.record("online-sampling", miss()), Transition::None);
        }
        assert!(!sb.is_quarantined("online-sampling"));
    }

    #[test]
    fn coverage_floor_triggers_and_releases_quarantine() {
        let sb = policy(8, 0.75, 4);
        for _ in 0..6 {
            sb.record("offline-synopsis", hit());
        }
        // Misses slide in: coverage over the 8-slot window decays.
        assert_eq!(sb.record("offline-synopsis", miss()), Transition::None);
        assert_eq!(sb.record("offline-synopsis", miss()), Transition::None);
        // window now [h h h h h h m m] -> 0.75, not below floor.
        assert_eq!(sb.record("offline-synopsis", miss()), Transition::Entered);
        assert!(sb.is_quarantined("offline-synopsis"));
        assert_eq!(sb.quarantined(), vec!["offline-synopsis".to_string()]);
        // Fresh hits push the misses out again.
        let mut released = false;
        for _ in 0..8 {
            if sb.record("offline-synopsis", hit()) == Transition::Exited {
                released = true;
            }
        }
        assert!(released);
        assert!(!sb.is_quarantined("offline-synopsis"));
    }

    #[test]
    fn reset_releases_quarantine_and_clears_window() {
        let sb = policy(4, 0.9, 2);
        for _ in 0..4 {
            sb.record("offline-synopsis", miss());
        }
        assert!(sb.is_quarantined("offline-synopsis"));
        sb.reset("offline-synopsis");
        assert!(!sb.is_quarantined("offline-synopsis"));
        assert!(sb.snapshot().get("offline-synopsis").is_none());
    }

    #[test]
    fn snapshot_scores_and_renders() {
        let sb = policy(16, 0.5, 4);
        for _ in 0..9 {
            sb.record("online-sampling", hit());
        }
        sb.record("online-sampling", miss());
        let snap = sb.snapshot();
        let row = snap.get("online-sampling").unwrap();
        assert_eq!(row.total_audits, 10);
        assert_eq!(row.misses, 1);
        assert!((row.coverage.unwrap() - 0.9).abs() < 1e-12);
        assert!((row.nominal.unwrap() - 0.95).abs() < 1e-12);
        assert!((row.max_rel_err - 0.4).abs() < 1e-12);
        // p50 sits in the bucket containing 0.01, p95 in 0.4's bucket.
        assert!(row.p50_rel_err.unwrap() <= 0.025, "{row:?}");
        assert!(row.p95_rel_err.unwrap() > 0.25, "{row:?}");
        let table = snap.render_table();
        assert!(table.contains("online-sampling"), "{table}");
        assert!(table.contains("ok"), "{table}");
        assert!(!table.contains("QUARANTINED"), "{table}");
    }

    #[test]
    fn window_slides_out_old_observations() {
        let sb = policy(4, 0.1, 2);
        for _ in 0..4 {
            sb.record("exact", miss());
        }
        for _ in 0..4 {
            sb.record("exact", hit());
        }
        let snap = sb.snapshot();
        let row = snap.get("exact").unwrap();
        assert_eq!(row.window_len, 4);
        assert!((row.coverage.unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(row.total_audits, 8, "lifetime total keeps counting");
        assert_eq!(row.misses, 4);
    }
}
