//! Shared wall-clock timing helpers, so experiment binaries and benches
//! stop hand-rolling the run-N-times-take-the-median idiom.

use std::time::{Duration, Instant};

/// Times one call of `f`, returning its output and the elapsed wall
/// clock in microseconds.
pub fn time_us<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64() * 1e6)
}

/// Median of a sample set (sorts in place; `NaN` for an empty slice).
pub fn median(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timing samples"));
    samples[samples.len() / 2]
}

/// Runs `f` `reps` times (at least once) and returns the last output
/// together with the median wall clock in microseconds.
pub fn median_us<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let reps = reps.max(1);
    let mut samples = Vec::with_capacity(reps);
    let (mut out, us) = time_us(&mut f);
    samples.push(us);
    for _ in 1..reps {
        let (o, us) = time_us(&mut f);
        out = o;
        samples.push(us);
    }
    (out, median(&mut samples))
}

/// [`median_us`] with the median converted to a [`Duration`].
pub fn median_duration<T>(reps: usize, f: impl FnMut() -> T) -> (T, Duration) {
    let (out, us) = median_us(reps, f);
    (out, Duration::from_secs_f64(us / 1e6))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_order_insensitive() {
        let mut a = [3.0, 1.0, 2.0];
        assert_eq!(median(&mut a), 2.0);
        let mut b = [4.0, 1.0, 3.0, 2.0];
        // Even length: upper-median, matching the old ad-hoc benches.
        assert_eq!(median(&mut b), 3.0);
        assert!(median(&mut []).is_nan());
    }

    #[test]
    fn median_us_runs_reps_and_returns_last_output() {
        let mut calls = 0;
        let (out, us) = median_us(5, || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 5);
        assert_eq!(out, 5);
        assert!(us >= 0.0);
    }

    #[test]
    fn zero_reps_still_runs_once() {
        let mut calls = 0;
        let ((), d) = median_duration(0, || calls += 1);
        assert_eq!(calls, 1);
        assert!(d >= Duration::ZERO);
    }
}
