//! # aqp-obs — query-lifecycle observability substrate
//!
//! Zero-dependency (shim-style, like the other vendored crates)
//! observability layer for the AQP stack, providing:
//!
//! - a **span tracer** ([`trace`]): RAII spans with parent/child links
//!   cheap enough to wrap every morsel, operator, eligibility probe,
//!   technique attempt, and synopsis build — a single relaxed atomic
//!   load when no collector is enabled (the default), so benches run
//!   unperturbed;
//! - a **metrics registry** ([`metrics`]): counters, gauges, and
//!   fixed-bucket histograms with lock-free per-worker shards merged on
//!   read, exported as Prometheus text or JSON;
//! - **timing helpers** ([`timing`]): the shared median-of-N wall-clock
//!   idiom used by the `exp_*` binaries and benches.
//!
//! ```
//! let ((), spans) = aqp_obs::capture(|| {
//!     let mut op = aqp_obs::span("op:scan");
//!     op.set_rows(1024);
//! });
//! assert_eq!(spans.len(), 1);
//! assert_eq!(spans[0].rows, 1024);
//! aqp_obs::metrics::global().counter("queries_total").inc(1);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod metrics;
pub mod names;
pub mod scoreboard;
pub mod timing;
pub mod trace;

pub use trace::{
    build_tree, capture, child_span, current_ctx, drain, drain_trace, fmt_ns, is_enabled,
    open_span_count, render_tree, root_span, set_enabled, span, Span, SpanCtx, SpanNode,
    SpanRecord,
};
