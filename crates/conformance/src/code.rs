//! The stable conformance-code registry.
//!
//! Where aqp-lint's A-codes check *query plans* against NSB's frontier,
//! the C-codes check the *workspace source* against the invariants the
//! rest of the codebase assumes: metric names come from one table, spans
//! are closed, locks are taken in one order, panics are budgeted. Codes
//! are append-only — `C001` will mean "metric name is a string literal"
//! forever, so check.sh, CI, and the golden fixtures can key on them.

use std::fmt;

/// A stable conformance code (`C001`–`C007`). The discriminant order is
/// the registry order; new codes append.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Code {
    /// A metric-registry call (`counter`, `gauge`, `histogram`, or a
    /// `*_labeled` variant) passes a string literal as the series name or
    /// label key instead of a constant from `aqp_obs::names`.
    C001MetricNameLiteral,
    /// `.unwrap()` / `.expect(...)` outside `#[cfg(test)]` in a file the
    /// workspace declares panic-budgeted (hot-path and service files).
    C002UnwrapBudget,
    /// A crate's `src/lib.rs` is missing `#![deny(unsafe_code)]`.
    C003MissingDenyUnsafe,
    /// An `unsafe` token without a `// SAFETY:` comment on the line
    /// directly above it.
    C004UnsafeWithoutSafety,
    /// A tracer span is opened but provably never closed: the span value
    /// is discarded as a statement (zero-duration span) or a root span
    /// binding is neither `.finish()`ed nor handed to `attach_trace`.
    C005SpanPairing,
    /// The mergeable codec tag table has an orphan: a `tag::` constant no
    /// codec or `Partial` impl references, or a `Partial` impl file that
    /// never touches the tag table.
    C006PartialTagRegistry,
    /// A lock acquisition violates the file's declared lock order
    /// (`// lock-order: a < b < …`): a lower-ranked lock is taken while a
    /// higher-ranked guard is still live.
    C007LockOrder,
}

impl Code {
    /// The stable wire code, e.g. `"C001"`.
    pub fn code(&self) -> &'static str {
        match self {
            Self::C001MetricNameLiteral => "C001",
            Self::C002UnwrapBudget => "C002",
            Self::C003MissingDenyUnsafe => "C003",
            Self::C004UnsafeWithoutSafety => "C004",
            Self::C005SpanPairing => "C005",
            Self::C006PartialTagRegistry => "C006",
            Self::C007LockOrder => "C007",
        }
    }

    /// One-line title for the registry table.
    pub fn title(&self) -> &'static str {
        match self {
            Self::C001MetricNameLiteral => "metric or label-key name is a string literal",
            Self::C002UnwrapBudget => "unwrap/expect outside tests in a panic-budgeted file",
            Self::C003MissingDenyUnsafe => "crate root missing #![deny(unsafe_code)]",
            Self::C004UnsafeWithoutSafety => "unsafe without a SAFETY comment directly above",
            Self::C005SpanPairing => "tracer span opened but never finished",
            Self::C006PartialTagRegistry => "codec tag table and Partial impls disagree",
            Self::C007LockOrder => "lock acquired against the declared lock order",
        }
    }

    /// The workspace invariant this code guards (documented in
    /// `docs/OPERATIONS.md`'s C-code table).
    pub fn invariant(&self) -> &'static str {
        match self {
            Self::C001MetricNameLiteral => {
                "emitters and dashboards reference one name table (aqp_obs::names); \
                 a literal can typo a series into existence that no dashboard reads"
            }
            Self::C002UnwrapBudget => {
                "service and hot-path files answer queries for many callers; a panic \
                 there is a denial of service, so fallible paths must be handled"
            }
            Self::C003MissingDenyUnsafe => {
                "the workspace is forbid-unsafe by policy; every crate root must \
                 opt in to the compiler enforcing it"
            }
            Self::C004UnsafeWithoutSafety => {
                "if unsafe ever appears (e.g. in a vendored shim), the proof \
                 obligation must be written down where the reviewer will see it"
            }
            Self::C005SpanPairing => {
                "a span dropped at the call statement records a zero-duration \
                 interval, silently corrupting every trace that contains it"
            }
            Self::C006PartialTagRegistry => {
                "Partial merge round-trips rely on one codec tag per state; an \
                 unregistered state cannot cross a shard boundary"
            }
            Self::C007LockOrder => {
                "service.rs and pool.rs hold multiple Mutexes; a consistent \
                 acquisition order is the only static deadlock-freedom argument"
            }
        }
    }

    /// Every code, in registry order.
    pub fn all() -> [Code; 7] {
        [
            Self::C001MetricNameLiteral,
            Self::C002UnwrapBudget,
            Self::C003MissingDenyUnsafe,
            Self::C004UnsafeWithoutSafety,
            Self::C005SpanPairing,
            Self::C006PartialTagRegistry,
            Self::C007LockOrder,
        ]
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// How bad a finding is. Same ladder as aqp-lint: `Error` fails the
/// check.sh gate and CI; `Warn`/`Note` are reported but do not gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: nothing is gated, but the reader should know.
    Note,
    /// Suspicious but not provably wrong; does not fail the gate.
    Warn,
    /// A workspace invariant is violated; the gate fails.
    Error,
}

impl Severity {
    /// Lowercase label for rendering (`error`/`warn`/`note`).
    pub fn label(&self) -> &'static str {
        match self {
            Self::Error => "error",
            Self::Warn => "warn",
            Self::Note => "note",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One conformance finding: a stable code, a severity, the offending
/// `file:line`, prose, and — when one exists — a concrete fix. Mirrors
/// aqp-lint's `Diagnostic` so tooling can treat A- and C-streams alike.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The stable conformance code.
    pub code: Code,
    /// How bad it is.
    pub severity: Severity,
    /// `path/to/file.rs:line` of the offending token (line 0 = whole
    /// file, e.g. a missing crate attribute).
    pub path: String,
    /// Human-readable finding.
    pub message: String,
    /// Concrete suggested fix, when one exists.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// One-line rendering: `C001 error crates/x/src/y.rs:12: counter("…")
    /// passes a literal — suggest: use aqp_obs::names`.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} {:<5} {}: {}",
            self.code,
            self.severity.label(),
            self.path,
            self.message
        );
        if let Some(s) = &self.suggestion {
            out.push_str(&format!(" — suggest: {s}"));
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let all = Code::all();
        for (i, c) in all.iter().enumerate() {
            assert_eq!(c.code(), format!("C{:03}", i + 1));
            assert!(!c.title().is_empty());
            assert!(!c.invariant().is_empty());
        }
    }

    #[test]
    fn severity_orders_note_warn_error() {
        assert!(Severity::Note < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
        assert_eq!(Severity::Error.label(), "error");
    }

    #[test]
    fn renders_all_parts() {
        let d = Diagnostic {
            code: Code::C001MetricNameLiteral,
            severity: Severity::Error,
            path: "crates/x/src/y.rs:12".into(),
            message: "metric name is a string literal".into(),
            suggestion: Some("use a constant from aqp_obs::names".into()),
        };
        let r = d.render();
        assert!(r.starts_with("C001 error"));
        assert!(r.contains("crates/x/src/y.rs:12"));
        assert!(r.contains("suggest: use a constant"));
    }
}
