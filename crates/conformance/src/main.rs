//! The conformance gate binary.
//!
//! ```text
//! cargo run -q --release -p aqp-conformance -- --workspace [--race] [--root DIR]
//! ```
//!
//! `--workspace` scans `crates/*/src` and prints one line per C-code
//! gate; `--race` exhaustively explores the scheduler and plan-cache
//! models and prints one line per model. Exit status is non-zero when
//! any Error-severity diagnostic or any model violation exists, so
//! check.sh and CI gate on it directly.

#![deny(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use aqp_conformance::{explore, CacheModel, Code, ScanConfig, SchedModel, Severity};

const STATE_CAP: usize = 1_000_000;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut do_scan = false;
    let mut do_race = false;
    let mut root = PathBuf::from(".");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => do_scan = true,
            "--race" => do_race = true,
            "--root" => match it.next() {
                Some(r) => root = PathBuf::from(r),
                None => {
                    eprintln!("conformance: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("conformance: unknown flag `{other}`");
                eprintln!("usage: aqp-conformance [--workspace] [--race] [--root DIR]");
                return ExitCode::from(2);
            }
        }
    }
    if !do_scan && !do_race {
        do_scan = true;
        do_race = true;
    }

    let mut failed = false;

    if do_scan {
        let cfg = ScanConfig::workspace(&root);
        let report = match aqp_conformance::scan_workspace(&cfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("conformance: scan failed: {e}");
                return ExitCode::from(2);
            }
        };
        for code in Code::all() {
            let findings = report.with_code(code);
            let errors = findings
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .count();
            let verdict = if errors == 0 { "ok" } else { "FAIL" };
            println!(
                "conformance {} {:<52} {verdict} ({} finding{})",
                code.code(),
                code.title(),
                findings.len(),
                if findings.len() == 1 { "" } else { "s" },
            );
            for d in &findings {
                println!("  {}", d.render());
            }
            if errors > 0 {
                failed = true;
            }
        }
        println!(
            "conformance scanned {} files: {} diagnostics, {} errors",
            report.files,
            report.diagnostics.len(),
            report.errors()
        );
    }

    if do_race {
        let sched = explore(SchedModel::faithful(), STATE_CAP);
        print_model("admission-scheduler", &sched, &mut failed);
        let cache = explore(CacheModel::faithful(), STATE_CAP);
        print_model("plan-cache-epoch", &cache, &mut failed);
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn print_model(name: &str, r: &aqp_conformance::Explored, failed: &mut bool) {
    let verdict = if r.ok() && !r.truncated { "ok" } else { "FAIL" };
    println!(
        "conformance race {:<24} {verdict} ({} states, {} terminal, {} violations{})",
        name,
        r.states,
        r.terminal_states,
        r.violations.len(),
        if r.truncated { ", TRUNCATED" } else { "" },
    );
    for v in &r.violations {
        println!("  {v}");
    }
    if !r.ok() || r.truncated {
        *failed = true;
    }
}
