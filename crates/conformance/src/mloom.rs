//! A miniature loom: exhaustive enumeration of every interleaving of a
//! bounded concurrent model.
//!
//! A [`Model`] is a full system state (all thread phases + all shared
//! state) whose `successors` are the states reachable by letting any one
//! runnable thread take its next atomic step. The explorer walks the
//! whole reachable graph with memoization, checking the model's
//! invariant at every distinct state and flagging deadlocks (a
//! non-terminal state with no runnable thread — the shape of a lost
//! wakeup) structurally.
//!
//! This is state enumeration, not schedule enumeration: two schedules
//! that reach the same state share their futures, which is what makes
//! exhaustive checking of 3-thread × multi-round models cheap (tens of
//! thousands of states, milliseconds).

use std::collections::HashSet;
use std::hash::Hash;

/// A bounded concurrent system, encoded as one value per global state.
pub trait Model: Clone + Eq + Hash {
    /// Every state reachable by one atomic step of one runnable thread.
    /// Empty ⇔ no thread is runnable.
    fn successors(&self) -> Vec<Self>;
    /// True when the system has legitimately finished (every thread done).
    fn is_terminal(&self) -> bool;
    /// The safety invariant; `Err` describes the violation.
    fn invariant(&self) -> Result<(), String>;
}

/// What the explorer saw.
#[derive(Debug, Clone, Default)]
pub struct Explored {
    /// Distinct states visited (the size of the bounded space).
    pub states: usize,
    /// States where every thread had finished.
    pub terminal_states: usize,
    /// Deduplicated invariant violations and deadlocks (capped).
    pub violations: Vec<String>,
    /// True if `max_states` stopped the walk early.
    pub truncated: bool,
}

impl Explored {
    /// No invariant violations and no deadlocks anywhere in the space.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

const MAX_VIOLATIONS: usize = 32;

/// Exhaustively explore every state reachable from `init`, up to
/// `max_states` distinct states.
pub fn explore<M: Model>(init: M, max_states: usize) -> Explored {
    let mut out = Explored::default();
    let mut seen: HashSet<M> = HashSet::new();
    let mut stack: Vec<M> = Vec::new();
    seen.insert(init.clone());
    stack.push(init);
    while let Some(s) = stack.pop() {
        if let Err(v) = s.invariant() {
            push_violation(&mut out, v);
            continue; // a violating state's futures add no information
        }
        let succ = s.successors();
        if succ.is_empty() {
            if s.is_terminal() {
                out.terminal_states += 1;
            } else {
                push_violation(
                    &mut out,
                    "deadlock: no runnable thread in a non-terminal state (lost wakeup)".into(),
                );
            }
            continue;
        }
        for n in succ {
            if seen.len() >= max_states {
                out.truncated = true;
                break;
            }
            if seen.insert(n.clone()) {
                stack.push(n);
            }
        }
    }
    out.states = seen.len();
    out
}

fn push_violation(out: &mut Explored, v: String) {
    if out.violations.len() < MAX_VIOLATIONS && !out.violations.contains(&v) {
        out.violations.push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two counters that must stay within 1 of each other; `bad` makes
    /// one thread skip its increment.
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct Pair {
        a: u8,
        b: u8,
        max: u8,
        bad: bool,
    }

    impl Model for Pair {
        fn successors(&self) -> Vec<Self> {
            let mut out = Vec::new();
            if self.a < self.max && self.a <= self.b {
                out.push(Pair {
                    a: self.a + 1,
                    ..self.clone()
                });
            }
            if self.b < self.max && (self.b <= self.a || self.bad) {
                out.push(Pair {
                    b: self.b + 1,
                    ..self.clone()
                });
            }
            out
        }
        fn is_terminal(&self) -> bool {
            self.a == self.max && self.b == self.max
        }
        fn invariant(&self) -> Result<(), String> {
            if self.a.abs_diff(self.b) > 1 {
                return Err(format!("counters diverged: a={} b={}", self.a, self.b));
            }
            Ok(())
        }
    }

    #[test]
    fn clean_model_explores_fully() {
        let r = explore(
            Pair {
                a: 0,
                b: 0,
                max: 4,
                bad: false,
            },
            10_000,
        );
        assert!(r.ok(), "{:?}", r.violations);
        assert!(!r.truncated);
        assert!(r.states > 10);
        assert_eq!(r.terminal_states, 1);
    }

    #[test]
    fn violating_model_is_caught() {
        let r = explore(
            Pair {
                a: 0,
                b: 0,
                max: 4,
                bad: true,
            },
            10_000,
        );
        assert!(!r.ok());
        assert!(r.violations[0].contains("diverged"));
    }

    #[test]
    fn stuck_model_reports_deadlock() {
        // max 0 for b only: a reaches max, b can never move past a=0 rule.
        #[derive(Clone, PartialEq, Eq, Hash)]
        struct Stuck(u8);
        impl Model for Stuck {
            fn successors(&self) -> Vec<Self> {
                if self.0 < 2 {
                    vec![Stuck(self.0 + 1)]
                } else {
                    Vec::new()
                }
            }
            fn is_terminal(&self) -> bool {
                false
            }
            fn invariant(&self) -> Result<(), String> {
                Ok(())
            }
        }
        let r = explore(Stuck(0), 100);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].contains("deadlock"));
    }

    #[test]
    fn state_cap_truncates() {
        #[derive(Clone, PartialEq, Eq, Hash)]
        struct Wide(u32);
        impl Model for Wide {
            fn successors(&self) -> Vec<Self> {
                vec![Wide(self.0 * 2 + 1), Wide(self.0 * 2 + 2)]
            }
            fn is_terminal(&self) -> bool {
                false
            }
            fn invariant(&self) -> Result<(), String> {
                Ok(())
            }
        }
        let r = explore(Wide(0), 50);
        assert!(r.truncated);
        assert!(r.states <= 51);
    }
}
