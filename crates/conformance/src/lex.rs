//! A small, never-panicking Rust tokenizer.
//!
//! This is not a full lexer — it is exactly the subset the conformance
//! rules need: identifiers, string/char literals (so rule matching never
//! fires inside them), comments (captured, because SAFETY pairing and
//! lock-order declarations live in comments), numbers, and single-byte
//! punctuation. It scans raw bytes with a UTF-8-boundary-safe policy
//! (bytes ≥ 0x80 are identifier material, so multi-byte characters never
//! split a token) and is fuzzed by proptest to never panic on arbitrary
//! input.

/// What a token is. Coarse on purpose: rules match on identifiers,
/// literals and punctuation shape, never on full grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw `r#ident`).
    Ident,
    /// Any string literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// Character literal `'x'`.
    Char,
    /// Lifetime `'a`.
    Lifetime,
    /// Numeric literal (scanned loosely: `0xff_u32`, `1.5e-3`).
    Num,
    /// One byte of punctuation/operator.
    Punct(u8),
}

/// One token: kind plus its byte range and 1-based line in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Coarse kind.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
}

impl Token {
    /// The token's text, or `""` if the range is somehow not sliceable
    /// (defensive: the lexer only produces boundary-safe ranges).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }

    /// True if this token is the identifier `word`.
    pub fn is_ident(&self, src: &str, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text(src) == word
    }

    /// True if this token is the punctuation byte `b`.
    pub fn is_punct(&self, b: u8) -> bool {
        self.kind == TokKind::Punct(b)
    }
}

/// One comment's content (without the `//` / `/*` fences) and location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Comment {
    /// Byte range of the comment *content*.
    pub start: usize,
    /// One past the content's last byte.
    pub end: usize,
    /// 1-based line the comment starts on.
    pub line: u32,
}

impl Comment {
    /// The comment text, `""` on a non-sliceable range.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

/// Tokenizer output: code tokens and comments, both in source order.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// Code tokens (comments and whitespace stripped).
    pub tokens: Vec<Token>,
    /// Comments, for SAFETY pairing and lock-order declarations.
    pub comments: Vec<Comment>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    is_ident_start(b) || b.is_ascii_digit()
}

/// Tokenize `src`. Total: consumes every byte, never panics.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let n = b.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < n {
        let c = b[i];
        // Whitespace.
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < n {
            if b[i + 1] == b'/' {
                let start_line = line;
                let mut j = i + 2;
                // `///` and `//!` doc markers are part of the fence.
                while j < n && (b[j] == b'/' || b[j] == b'!') {
                    j += 1;
                }
                let content = j;
                while j < n && b[j] != b'\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    start: content,
                    end: j,
                    line: start_line,
                });
                i = j;
                continue;
            }
            if b[i + 1] == b'*' {
                let start_line = line;
                let content = i + 2;
                let mut j = i + 2;
                let mut depth = 1u32;
                while j < n && depth > 0 {
                    if b[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == b'/' && j + 1 < n && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < n && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(content);
                out.comments.push(Comment {
                    start: content,
                    end,
                    line: start_line,
                });
                i = j;
                continue;
            }
        }
        // Plain string literal.
        if c == b'"' {
            let (end, nl) = scan_string(b, i + 1);
            out.tokens.push(Token {
                kind: TokKind::Str,
                start: i,
                end,
                line,
            });
            line += nl;
            i = end;
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            if i + 1 < n && b[i + 1] == b'\\' {
                // Escaped char: scan to the closing quote.
                let mut j = i + 2;
                while j < n && b[j] != b'\'' && b[j] != b'\n' {
                    if b[j] == b'\\' {
                        j += 1;
                    }
                    j += 1;
                }
                let end = (j + 1).min(n);
                out.tokens.push(Token {
                    kind: TokKind::Char,
                    start: i,
                    end,
                    line,
                });
                i = end;
                continue;
            }
            // 'x' is a char only if a closing quote follows one "char"
            // (which may be multi-byte); otherwise it is a lifetime.
            let mut j = i + 1;
            if j < n && b[j] >= 0x80 {
                while j < n && b[j] >= 0x80 {
                    j += 1;
                }
            } else if j < n {
                j += 1;
            }
            if j < n && b[j] == b'\'' {
                out.tokens.push(Token {
                    kind: TokKind::Char,
                    start: i,
                    end: j + 1,
                    line,
                });
                i = j + 1;
            } else {
                let mut k = i + 1;
                while k < n && is_ident_continue(b[k]) {
                    k += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Lifetime,
                    start: i,
                    end: k.max(i + 1),
                    line,
                });
                i = k.max(i + 1);
            }
            continue;
        }
        // Identifier — including string-prefix forms r"", b"", br#""#,
        // c"", and raw identifiers r#ident.
        if is_ident_start(c) {
            let start = i;
            let mut j = i;
            while j < n && is_ident_continue(b[j]) {
                j += 1;
            }
            let word = src.get(start..j).unwrap_or("");
            let prefix = matches!(word, "r" | "b" | "br" | "rb" | "c" | "cr");
            if prefix && j < n && b[j] == b'"' {
                let (end, nl) = scan_string(b, j + 1);
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    start,
                    end,
                    line,
                });
                line += nl;
                i = end;
                continue;
            }
            if prefix && j < n && b[j] == b'#' {
                let mut h = j;
                while h < n && b[h] == b'#' {
                    h += 1;
                }
                if h < n && b[h] == b'"' {
                    let hashes = h - j;
                    let (end, nl) = scan_raw_string(b, h + 1, hashes);
                    out.tokens.push(Token {
                        kind: TokKind::Str,
                        start,
                        end,
                        line,
                    });
                    line += nl;
                    i = end;
                    continue;
                }
                if word == "r" && h == j + 1 && h < n && is_ident_start(b[h]) {
                    // Raw identifier r#ident.
                    let mut k = h;
                    while k < n && is_ident_continue(b[k]) {
                        k += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Ident,
                        start,
                        end: k,
                        line,
                    });
                    i = k;
                    continue;
                }
            }
            out.tokens.push(Token {
                kind: TokKind::Ident,
                start,
                end: j,
                line,
            });
            i = j;
            continue;
        }
        // Number (loose: hex, underscores, suffixes, exponents, and a
        // fraction dot only when a digit follows, so `1..2` and
        // `1.max(2)` keep their dots as punctuation).
        if c.is_ascii_digit() {
            let start = i;
            let mut j = i;
            while j < n {
                let d = b[j];
                if d.is_ascii_alphanumeric() || d == b'_' {
                    if (d == b'e' || d == b'E')
                        && j + 1 < n
                        && (b[j + 1] == b'+' || b[j + 1] == b'-')
                        && j + 2 < n
                        && b[j + 2].is_ascii_digit()
                    {
                        j += 2;
                    }
                    j += 1;
                } else if d == b'.' && j + 1 < n && b[j + 1].is_ascii_digit() {
                    j += 1;
                } else {
                    break;
                }
            }
            out.tokens.push(Token {
                kind: TokKind::Num,
                start,
                end: j,
                line,
            });
            i = j;
            continue;
        }
        // Anything else: one byte of punctuation.
        out.tokens.push(Token {
            kind: TokKind::Punct(c),
            start: i,
            end: i + 1,
            line,
        });
        i += 1;
    }
    out
}

/// Scan a plain (escapable) string body starting just after the opening
/// quote; returns (one past closing quote, newlines crossed).
fn scan_string(b: &[u8], mut j: usize) -> (usize, u32) {
    let n = b.len();
    let mut nl = 0u32;
    while j < n {
        match b[j] {
            b'\\' => j = (j + 2).min(n),
            b'"' => return (j + 1, nl),
            b'\n' => {
                nl += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (n, nl)
}

/// Scan a raw string body (no escapes) until `"` followed by `hashes`
/// `#` bytes; returns (one past the closing fence, newlines crossed).
fn scan_raw_string(b: &[u8], mut j: usize, hashes: usize) -> (usize, u32) {
    let n = b.len();
    let mut nl = 0u32;
    while j < n {
        if b[j] == b'\n' {
            nl += 1;
            j += 1;
            continue;
        }
        if b[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < n && b[k] == b'#' && seen < hashes {
                k += 1;
                seen += 1;
            }
            if seen == hashes {
                return (k, nl);
            }
        }
        j += 1;
    }
    (n, nl)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text(src).to_string())
            .collect()
    }

    #[test]
    fn basic_tokens() {
        let src = r#"fn main() { let x = foo("bar"); }"#;
        let l = lex(src);
        assert_eq!(idents(src), ["fn", "main", "let", "x", "foo"]);
        let strs: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(strs, ["\"bar\""]);
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let src = "// SAFETY: fine\nlet x = 1; /* block\nspan */ y";
        let l = lex(src);
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].text(src), " SAFETY: fine");
        assert_eq!(l.comments[0].line, 1);
        assert!(l.comments[1].text(src).contains("block"));
        assert!(idents(src).contains(&"y".to_string()));
        // `y` after the block comment's newline is on line 3.
        let y = l
            .tokens
            .iter()
            .find(|t| t.is_ident(src, "y"))
            .expect("y token");
        assert_eq!(y.line, 3);
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = r#"x("let unsafe // not a comment")"#;
        assert_eq!(idents(src), ["x"]);
        assert!(lex(src).comments.is_empty());
    }

    #[test]
    fn raw_and_prefixed_strings() {
        let src = "a r\"q\" b r#\"w \" w\"# c b\"y\" d r#type e";
        assert_eq!(idents(src), ["a", "b", "c", "d", "r#type", "e"]);
        let n_strs = lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .count();
        assert_eq!(n_strs, 3);
    }

    #[test]
    fn char_vs_lifetime() {
        let src = "let c = 'x'; fn f<'a>(v: &'a str) { g('\\n') }";
        let l = lex(src);
        let chars = l.tokens.iter().filter(|t| t.kind == TokKind::Char).count();
        let lifetimes = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(chars, 2);
        assert_eq!(lifetimes, 2);
    }

    #[test]
    fn numbers_scan_loosely_but_keep_range_dots() {
        let src = "0xff_u32 1.5e-3 1..2 x.0";
        let l = lex(src);
        let nums: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(nums, ["0xff_u32", "1.5e-3", "1", "2", "0"]);
        assert!(l.tokens.iter().any(|t| t.is_punct(b'.')));
    }

    #[test]
    fn multibyte_idents_do_not_split() {
        let src = "let héllo = 1; // é in comment";
        let l = lex(src);
        assert!(l.tokens.iter().any(|t| t.is_ident(src, "héllo")));
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn unterminated_everything_is_total() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'a", "b\"", "'\\"] {
            let _ = lex(src);
        }
    }
}
